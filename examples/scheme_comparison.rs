//! Comparing replicated declustering schemes by optimal response time.
//!
//! The retrieval algorithms find the *optimal schedule for a given
//! layout*; how good that optimum is depends on the allocation scheme.
//! This example evaluates RDA, dependent periodic and orthogonal
//! allocations (paper §VI-A) under range and arbitrary query loads on a
//! heterogeneous two-site system, reporting the mean optimal response
//! time per scheme — the layout half of the paper's design space.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use replicated_retrieval::prelude::*;

fn mean_response(
    system: &SystemConfig,
    alloc: &ReplicaMap,
    kind: QueryKind,
    load: Load,
    n: usize,
    queries: usize,
    seed: u64,
) -> f64 {
    let solver = PushRelabelBinary;
    let mut gen = QueryGenerator::new(n, kind, load, seed);
    let mut total = Micros::ZERO;
    for _ in 0..queries {
        let q = gen.next_query();
        let inst = RetrievalInstance::build(system, alloc, &q.buckets(n));
        total += solver
            .solve(&inst)
            .expect("feasible instance")
            .response_time;
    }
    total.as_millis_f64() / queries as f64
}

fn main() {
    let n = 16;
    let queries = 30;
    let seed = 7;
    let system = experiment(ExperimentId::Exp4, n, seed);

    let schemes: Vec<(&str, ReplicaMap)> = vec![
        (
            "RDA",
            ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        ),
        (
            "Dependent",
            ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        ),
        (
            "Orthogonal",
            ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
        ),
    ];

    println!(
        "Experiment 4 system ({} mixed SSD+HDD disks), {}x{} grid, {} queries per cell\n",
        system.num_disks(),
        n,
        n,
        queries
    );
    println!(
        "{:<12} {:>22} {:>22} {:>22}",
        "scheme", "range load1 (ms)", "arbitrary load1 (ms)", "arbitrary load3 (ms)"
    );
    for (name, alloc) in &schemes {
        let r1 = mean_response(
            &system,
            alloc,
            QueryKind::Range,
            Load::Load1,
            n,
            queries,
            seed,
        );
        let a1 = mean_response(
            &system,
            alloc,
            QueryKind::Arbitrary,
            Load::Load1,
            n,
            queries,
            seed,
        );
        let a3 = mean_response(
            &system,
            alloc,
            QueryKind::Arbitrary,
            Load::Load3,
            n,
            queries,
            seed,
        );
        println!("{name:<12} {r1:>22.2} {a1:>22.2} {a3:>22.2}");
    }

    println!(
        "\nLower is better: mean optimal response time of the scheduled\n\
         retrieval. Structured allocations (dependent/orthogonal) spread\n\
         range queries more evenly; RDA is competitive on arbitrary queries."
    );
}
