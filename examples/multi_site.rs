//! Multi-site heterogeneous retrieval — the scenario that motivates the
//! generalized problem (paper §II-A).
//!
//! A dataset is replicated across two geographically distant storage
//! arrays: a mixed SSD+HDD array nearby (low delay) and another mixed
//! array far away (high delay), both with initial loads from earlier
//! queries — the paper's Experiment 5 conditions. The example shows how
//! the optimal schedule shifts buckets between sites as the remote site's
//! network delay grows.
//!
//! ```text
//! cargo run --example multi_site
//! ```

use replicated_retrieval::prelude::*;
use replicated_retrieval::storage::model::{Disk, Site};
use replicated_retrieval::storage::specs;

fn build_system(remote_delay_ms: u64) -> SystemConfig {
    let near = Site {
        name: "on-prem array".to_string(),
        disks: vec![
            Disk {
                spec: specs::VERTEX,
                network_delay: Micros::from_millis(1),
                initial_load: Micros::from_millis(4),
            },
            Disk {
                spec: specs::CHEETAH,
                network_delay: Micros::from_millis(1),
                initial_load: Micros::ZERO,
            },
            Disk {
                spec: specs::BARRACUDA,
                network_delay: Micros::from_millis(1),
                initial_load: Micros::ZERO,
            },
            Disk {
                spec: specs::RAPTOR,
                network_delay: Micros::from_millis(1),
                initial_load: Micros::from_millis(2),
            },
        ],
    };
    let far = Site {
        name: "remote array".to_string(),
        disks: vec![
            Disk {
                spec: specs::X25_E,
                network_delay: Micros::from_millis(remote_delay_ms),
                initial_load: Micros::ZERO,
            },
            Disk {
                spec: specs::VERTEX,
                network_delay: Micros::from_millis(remote_delay_ms),
                initial_load: Micros::ZERO,
            },
            Disk {
                spec: specs::CHEETAH,
                network_delay: Micros::from_millis(remote_delay_ms),
                initial_load: Micros::from_millis(6),
            },
            Disk {
                spec: specs::RAPTOR,
                network_delay: Micros::from_millis(remote_delay_ms),
                initial_load: Micros::ZERO,
            },
        ],
    };
    SystemConfig::new(vec![near, far])
}

fn main() {
    let n = 4; // 4x4 grid, one copy per 4-disk site
    let alloc = DependentPeriodicAllocation::new(n, Placement::PerSite);
    let query = RangeQuery::new(0, 0, 4, 3); // 12 of the 16 buckets
    let buckets = query.buckets(n);
    let solver = PushRelabelBinary;

    println!("4x4 grid, 12-bucket query, dependent periodic allocation");
    println!("remote-site delay sweep (XO-style dedicated-network guarantees):\n");
    println!(
        "{:>12}  {:>16}  {:>12}  {:>12}",
        "remote delay", "response time", "near buckets", "far buckets"
    );

    for remote_delay_ms in [1u64, 5, 15, 40, 100] {
        let system = build_system(remote_delay_ms);
        let inst = RetrievalInstance::build(&system, &alloc, &buckets);
        let outcome = solver.solve(&inst).expect("feasible instance");
        let counts = outcome.schedule.per_disk_counts(system.num_disks());
        let near: u64 = counts[..4].iter().sum();
        let far: u64 = counts[4..].iter().sum();
        println!(
            "{:>10}ms  {:>16}  {:>12}  {:>12}",
            remote_delay_ms, outcome.response_time, near, far
        );
    }

    println!(
        "\nAs the remote delay grows the optimal schedule migrates buckets to\n\
         the local array until the slow local HDDs become the bottleneck."
    );
}
