//! Quickstart: solve the paper's worked example end to end.
//!
//! Builds the Table II storage system (14 disks on two sites), declusters
//! a 7x7 grid with the orthogonal scheme (one copy per site), and computes
//! the optimal response time retrieval schedule of the paper's query q1
//! with the integrated push-relabel algorithm (Algorithm 6).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use replicated_retrieval::prelude::*;

fn main() {
    // 1. The storage system of the paper's Table II.
    let system = paper_example();
    println!(
        "system: {} disks across {} sites",
        system.num_disks(),
        system.num_sites()
    );

    // 2. A replicated declustering: copy 1 on site 1, copy 2 on site 2.
    let alloc = OrthogonalAllocation::paper_7x7();

    // 3. The paper's query q1: a 3x2 range query (6 buckets).
    let q1 = RangeQuery::new(0, 0, 3, 2);
    let buckets = q1.buckets(7);
    println!("query q1: {} buckets {:?}", buckets.len(), buckets);

    // 4. Build the retrieval flow network and solve.
    let instance = RetrievalInstance::build(&system, &alloc, &buckets);
    let outcome = PushRelabelBinary
        .solve(&instance)
        .expect("feasible instance");

    println!("\noptimal response time: {}", outcome.response_time);
    println!("retrieval schedule:");
    for &(bucket, disk) in outcome.schedule.assignments() {
        let d = &instance.disks[disk];
        println!(
            "  bucket {bucket} <- disk {disk:2} (site {}, C={}, D={}, X={})",
            system.site_of(disk) + 1,
            d.cost(),
            d.network_delay,
            d.initial_load,
        );
    }

    // 5. Per-disk load summary.
    let counts = outcome.schedule.per_disk_counts(system.num_disks());
    println!("\nper-disk bucket counts:");
    for (disk, &k) in counts.iter().enumerate() {
        if k > 0 {
            println!(
                "  disk {disk:2}: {k} bucket(s), completes at {}",
                instance.disks[disk].completion_time(k)
            );
        }
    }

    // All solvers find the same optimum; show two more for comparison.
    let ff = FordFulkersonIncremental
        .solve(&instance)
        .expect("feasible instance");
    let bb = BlackBoxPushRelabel
        .solve(&instance)
        .expect("feasible instance");
    assert_eq!(ff.response_time, outcome.response_time);
    assert_eq!(bb.response_time, outcome.response_time);
    println!(
        "\ncross-check: FF-incremental and black-box PR agree on {}",
        outcome.response_time
    );
}
