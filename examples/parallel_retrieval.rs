//! Parallel integrated retrieval (paper Section V).
//!
//! Runs the same Experiment-5-style workload through the sequential
//! integrated solver (Algorithm 6), the lock-free parallel variant with 1,
//! 2 and 4 threads, and the black-box baseline, reporting wall-clock time
//! and verifying that every solver returns the same optimal response time.
//!
//! Note: the paper measured an 8-core Xeon; on fewer cores the parallel
//! variant shows its coordination overhead instead of a speed-up, while
//! remaining exactly as optimal.
//!
//! ```text
//! cargo run --release --example parallel_retrieval
//! ```

use replicated_retrieval::prelude::*;
use std::time::Instant;

fn main() {
    let n = 30; // 30 disks per site, 60 total; 900-bucket grid
    let seed = 42;
    let queries = 10;

    let system = experiment(ExperimentId::Exp5, n, seed);
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
    let mut gen = QueryGenerator::new(n, QueryKind::Arbitrary, Load::Load1, seed);

    let instances: Vec<RetrievalInstance> = (0..queries)
        .map(|_| {
            let q = gen.next_query();
            RetrievalInstance::build(&system, &alloc, &q.buckets(n))
        })
        .collect();
    let mean_q: usize = instances.iter().map(|i| i.query_size()).sum::<usize>() / instances.len();
    println!(
        "{queries} arbitrary Load-1 queries on {} disks (mean |Q| = {mean_q})\n",
        system.num_disks()
    );

    let solvers: Vec<(String, Box<dyn RetrievalSolver>)> = vec![
        ("black-box PR [12]".into(), Box::new(BlackBoxPushRelabel)),
        ("integrated PR (Alg 6)".into(), Box::new(PushRelabelBinary)),
        (
            "parallel PR, 1 thread".into(),
            Box::new(ParallelPushRelabelBinary::new(1)),
        ),
        (
            "parallel PR, 2 threads".into(),
            Box::new(ParallelPushRelabelBinary::new(2)),
        ),
        (
            "parallel PR, 4 threads".into(),
            Box::new(ParallelPushRelabelBinary::new(4)),
        ),
    ];

    let mut reference: Option<Micros> = None;
    println!(
        "{:<24} {:>14} {:>20}",
        "solver", "total (ms)", "sum response time"
    );
    for (label, solver) in &solvers {
        let start = Instant::now();
        let total_response: Micros = instances
            .iter()
            .map(|inst| solver.solve(inst).expect("feasible instance").response_time)
            .sum();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{label:<24} {elapsed:>14.2} {:>20}",
            total_response.to_string()
        );
        match reference {
            None => reference = Some(total_response),
            Some(r) => assert_eq!(
                r, total_response,
                "{label} disagrees with the reference optimum"
            ),
        }
    }
    println!("\nall solvers agree on the optimal response times ✓");
    println!(
        "(cores available: {})",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
}
