//! Multi-query session with initial-load feedback.
//!
//! The paper's `X_j` term models the load left on a disk by earlier
//! queries ("it is based on how the previous queries are scheduled",
//! §II-A). This example replays a bursty query stream through a
//! `RetrievalSession`, which derives every query's initial loads from the
//! schedules of the queries before it — and contrasts the resulting
//! completion times with a naive baseline that ignores the feedback and
//! always schedules against idle disks.
//!
//! ```text
//! cargo run --release --example query_session
//! ```

use replicated_retrieval::core::session::RetrievalSession;
use replicated_retrieval::prelude::*;

fn main() {
    let n = 10;
    let seed = 9;
    let system = experiment(ExperimentId::Exp4, n, seed);
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
    let mut gen = QueryGenerator::new(n, QueryKind::Range, Load::Load2, seed);

    // A burst: 8 queries arriving 2 ms apart — far faster than they drain.
    let queries: Vec<Vec<Bucket>> = (0..8).map(|_| gen.next_query().buckets(n)).collect();

    let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
    let naive = PushRelabelBinary;

    println!(
        "burst of {} Load-2 range queries, 2ms apart, {} disks\n",
        queries.len(),
        system.num_disks()
    );
    println!(
        "{:>5} {:>8} {:>6} {:>22} {:>26}",
        "query", "arrival", "|Q|", "response (load-aware)", "response (ignores loads)"
    );

    let mut aware_total = Micros::ZERO;
    let mut naive_total = Micros::ZERO;
    for (i, buckets) in queries.iter().enumerate() {
        let arrival = Micros::from_millis(2 * i as u64);
        let out = session.submit(arrival, buckets).expect("monotone arrivals");

        // Naive baseline: same solver, but pretending all disks are idle.
        // Its reported "response" underestimates reality whenever disks
        // still carry earlier work.
        let inst = RetrievalInstance::build(&system, &alloc, buckets);
        let pretend = naive.solve(&inst).expect("feasible instance");

        aware_total += out.outcome.response_time;
        naive_total += pretend.response_time;
        println!(
            "{:>5} {:>8} {:>6} {:>22} {:>26}",
            i,
            arrival.to_string(),
            buckets.len(),
            out.outcome.response_time.to_string(),
            pretend.response_time.to_string(),
        );
    }

    println!(
        "\nsum of true (load-aware) responses: {aware_total}\n\
         sum the naive model would promise:  {naive_total}\n\
         the gap is the queueing the generalized problem's X_j term captures."
    );
}
