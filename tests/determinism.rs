//! Reproducibility: every randomized component is seed-deterministic, so
//! experiment runs can be replicated exactly.

use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::prelude::*;

#[test]
fn experiments_reproduce_from_seed() {
    for id in ExperimentId::ALL {
        let a = experiment(id, 9, 1234);
        let b = experiment(id, 9, 1234);
        assert_eq!(a, b, "{id:?}");
    }
}

#[test]
fn rda_reproduces_from_seed() {
    let a = ReplicaMap::build(&RandomDuplicateAllocation::two_site(11, 77));
    let b = ReplicaMap::build(&RandomDuplicateAllocation::two_site(11, 77));
    for row in 0..11u32 {
        for col in 0..11u32 {
            let bk = Bucket::new(row, col);
            assert_eq!(a.replicas(bk), b.replicas(bk));
        }
    }
}

#[test]
fn query_streams_reproduce_from_seed() {
    for kind in [QueryKind::Range, QueryKind::Arbitrary] {
        for load in [Load::Load1, Load::Load2, Load::Load3] {
            let mut a = QueryGenerator::new(13, kind, load, 5);
            let mut b = QueryGenerator::new(13, kind, load, 5);
            for _ in 0..10 {
                assert_eq!(a.next_query(), b.next_query(), "{kind:?} {load:?}");
            }
        }
    }
}

#[test]
fn sequential_solves_are_fully_deterministic() {
    let system = experiment(ExperimentId::Exp5, 8, 3);
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(8, Placement::PerSite));
    let q = RangeQuery::new(1, 2, 6, 5);
    let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(8));
    let a = PushRelabelBinary.solve(&inst).unwrap();
    let b = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(a.response_time, b.response_time);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn different_seeds_give_different_workloads() {
    let a = experiment(ExperimentId::Exp5, 9, 1);
    let b = experiment(ExperimentId::Exp5, 9, 2);
    assert_ne!(a, b);
}
