//! Observability: trace events must reconcile exactly with the solver's
//! own `SolveStats`, event counts must be invariant to the engine's shard
//! count, and metrics snapshots must round-trip through both export
//! formats.

use std::sync::{Arc, Mutex};

use replicated_retrieval::core::blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel};
use replicated_retrieval::core::ff::{FordFulkersonBasic, FordFulkersonIncremental};
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::{PushRelabelBinary, PushRelabelIncremental};
use replicated_retrieval::prelude::*;
use replicated_retrieval::storage::specs;

fn traced_solve(
    solver: &(dyn RetrievalSolver + Sync),
    inst: &RetrievalInstance,
) -> (RetrievalOutcome, Workspace) {
    let mut ws = Workspace::new();
    ws.install_recorder(1 << 14);
    let outcome = solver.solve_in(inst, &mut ws).unwrap();
    (outcome, ws)
}

fn table_ii_instance(r: usize, c: usize) -> RetrievalInstance {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let q = RangeQuery::new(1, 0, r, c);
    RetrievalInstance::build(&system, &alloc, &q.buckets(7))
}

/// Every solver: one `SolveStart` per solve, `ProbeStart` == `ProbeEnd`
/// == `stats.probes`, `CapacityIncrement` == `stats.increments`.
#[test]
fn events_reconcile_with_solve_stats_for_every_solver() {
    let solvers: Vec<Box<dyn RetrievalSolver + Sync>> = vec![
        Box::new(PushRelabelBinary),
        Box::new(PushRelabelIncremental),
        Box::new(FordFulkersonIncremental),
        Box::new(BlackBoxPushRelabel),
        Box::new(BlackBoxFordFulkerson),
        Box::new(ParallelPushRelabelBinary::new(2)),
    ];
    let inst = table_ii_instance(5, 4);
    for solver in &solvers {
        let (outcome, ws) = traced_solve(solver.as_ref(), &inst);
        let rec = ws.recorder().expect("recorder installed");
        assert_eq!(rec.dropped(), 0, "{}: ring too small", solver.name());
        assert_eq!(rec.count(EventKind::SolveStart), 1, "{}", solver.name());
        assert_eq!(
            rec.count(EventKind::ProbeStart),
            outcome.stats.probes,
            "{}: ProbeStart vs probes",
            solver.name()
        );
        assert_eq!(
            rec.count(EventKind::ProbeEnd),
            rec.count(EventKind::ProbeStart),
            "{}: unbalanced probe spans",
            solver.name()
        );
        assert_eq!(
            rec.count(EventKind::CapacityIncrement),
            outcome.stats.increments,
            "{}: CapacityIncrement vs increments",
            solver.name()
        );
    }
}

/// Push-relabel solvers: one `RelabelPass` per engine run, and the event
/// payloads sum to exactly the pushes/relabels reported in `SolveStats`.
#[test]
fn relabel_pass_events_sum_to_stats_pushes_and_relabels() {
    let inst = table_ii_instance(7, 7);
    for solver in [
        &PushRelabelBinary as &(dyn RetrievalSolver + Sync),
        &PushRelabelIncremental,
    ] {
        let (outcome, ws) = traced_solve(solver, &inst);
        let rec = ws.recorder().unwrap();
        assert_eq!(
            rec.count(EventKind::RelabelPass),
            outcome.stats.resume_calls,
            "{}: one RelabelPass per resume",
            solver.name()
        );
        let (mut pushes, mut relabels) = (0u64, 0u64);
        for e in rec.events() {
            if let TraceEvent::RelabelPass {
                pushes: p,
                relabels: r,
            } = e
            {
                pushes += p;
                relabels += r;
            }
        }
        assert_eq!(pushes, outcome.stats.pushes, "{}", solver.name());
        assert_eq!(relabels, outcome.stats.relabels, "{}", solver.name());
        assert!(pushes > 0, "{}: no push work recorded", solver.name());
    }

    // The black-box PR baseline attributes work per from-scratch max-flow
    // call instead.
    let (outcome, ws) = traced_solve(&BlackBoxPushRelabel, &inst);
    let rec = ws.recorder().unwrap();
    assert_eq!(
        rec.count(EventKind::RelabelPass),
        outcome.stats.maxflow_calls
    );
    assert!(outcome.stats.pushes > 0);
}

/// Ford-Fulkerson solvers: exactly one `Augment` per requested bucket —
/// each bucket's unit of flow is routed by one successful DFS.
#[test]
fn ff_emits_one_augment_per_bucket() {
    let inst = table_ii_instance(4, 6);
    for solver in [
        &FordFulkersonIncremental as &(dyn RetrievalSolver + Sync),
        &BlackBoxFordFulkerson,
    ] {
        let (outcome, ws) = traced_solve(solver, &inst);
        let augments = ws.recorder().unwrap().count(EventKind::Augment);
        match solver.name() {
            "FF-incremental" => {
                assert_eq!(augments, inst.query_size() as u64);
                assert!(outcome.stats.dfs_calls >= augments);
            }
            // The black box re-runs a self-contained max-flow that does
            // not emit per-bucket events.
            _ => assert_eq!(augments, 0),
        }
    }

    let system = SystemConfig::homogeneous(specs::CHEETAH, 7);
    let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
    let q = RangeQuery::new(0, 0, 3, 2);
    let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
    let (_, ws) = traced_solve(&FordFulkersonBasic, &inst);
    assert_eq!(
        ws.recorder().unwrap().count(EventKind::Augment),
        inst.query_size() as u64
    );
}

/// A closure can serve as the sink: every emitted event reaches it, in
/// order, with `SolveStart` first.
#[test]
fn closure_sink_receives_the_event_stream() {
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut ws = Workspace::new();
    ws.set_trace_sink(Box::new(move |e: TraceEvent| {
        sink.lock().unwrap().push(e);
    }));
    let inst = table_ii_instance(3, 2);
    let outcome = PushRelabelBinary.solve_in(&inst, &mut ws).unwrap();
    let events = events.lock().unwrap();
    assert!(matches!(
        events[0],
        TraceEvent::SolveStart { query_size: 6 }
    ));
    let probe_starts = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ProbeStart { .. }))
        .count() as u64;
    assert_eq!(probe_starts, outcome.stats.probes);
    // Disabling returns emits to no-ops.
    drop(events);
    ws.disable_tracing();
    let _ = PushRelabelBinary.solve_in(&inst, &mut ws).unwrap();
}

fn chaos_batch() -> (SystemConfig, OrthogonalAllocation, Vec<BatchQuery>) {
    let system = SystemConfig::homogeneous(specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    let mut queries = Vec::new();
    for k in 0..6usize {
        for s in 0..7usize {
            let q = RangeQuery::new(s % 5, k % 5, 1 + (s + k) % 3, 1 + s % 3);
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros::from_millis((k * 2) as u64),
                buckets: q.buckets(5),
            });
        }
    }
    (system, alloc, queries)
}

/// Trace-event totals are a pure function of the batch, not of how the
/// engine shards it — `ShardBatch` (one per shard per batch) is the only
/// kind allowed to differ, and it differs exactly by the shard count.
#[test]
fn event_counts_are_identical_across_shard_counts() {
    let (system, alloc, queries) = chaos_batch();
    let injector = FaultInjector::random_outages(
        42,
        5,
        0.4,
        Micros::from_millis(3),
        Some(Micros::from_millis(4)),
    );
    let run = |shards: usize| {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards)
            .with_fault_injector(injector.clone())
            .with_retry_policy(RetryPolicy {
                max_retries: 3,
                backoff: Micros::from_millis(1),
            })
            .with_degraded_mode(true)
            .with_tracing(1 << 12);
        let _ = engine.submit_batch(&queries);
        engine.trace_counts()
    };
    let baseline = run(1);
    assert_eq!(baseline[EventKind::SolveStart as usize], {
        let s = baseline[EventKind::SolveStart as usize];
        assert!(
            s >= queries.len() as u64,
            "every query solves at least once"
        );
        s
    });
    assert_eq!(baseline[EventKind::ShardBatch as usize], 1);
    for shards in [2usize, 3, 5] {
        let got = run(shards);
        for kind in EventKind::ALL {
            if kind == EventKind::ShardBatch {
                assert_eq!(got[kind as usize], shards as u64, "{shards} shards");
            } else {
                assert_eq!(
                    got[kind as usize], baseline[kind as usize],
                    "{:?} with {shards} shards",
                    kind
                );
            }
        }
    }
}

/// Retry and degraded events reconcile with the engine's counters, and a
/// health flip is observed exactly once per affected stream.
#[test]
fn engine_fault_events_reconcile_with_stats() {
    let (system, alloc, queries) = chaos_batch();
    let injector = FaultInjector::random_outages(
        7,
        5,
        0.4,
        Micros::from_millis(3),
        Some(Micros::from_millis(4)),
    );
    let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2)
        .with_fault_injector(injector)
        .with_retry_policy(RetryPolicy {
            max_retries: 3,
            backoff: Micros::from_millis(1),
        })
        .with_degraded_mode(true)
        .with_tracing(1 << 12);
    let _ = engine.submit_batch(&queries);
    let counts = engine.trace_counts();
    assert_eq!(
        counts[EventKind::RetryScheduled as usize],
        engine.stats().retries
    );
    assert_eq!(
        counts[EventKind::DegradedServe as usize],
        engine.stats().degraded_solves
    );
    // The outage and the recovery are both health transitions; every
    // stream that submits across them sees each at most once.
    assert!(counts[EventKind::HealthTransition as usize] > 0);
    assert!(counts[EventKind::HealthTransition as usize] <= 2 * 7);
}

/// `metrics_snapshot()` exposes p50/p95/p99 and round-trips through both
/// export formats.
#[test]
fn metrics_snapshot_quantiles_and_round_trip() {
    let (system, alloc, queries) = chaos_batch();
    let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2).with_tracing(1 << 12);
    let results = engine.submit_batch(&queries);
    assert!(results.iter().all(Result::is_ok));

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.stats.queries, queries.len() as u64);
    assert_eq!(snap.shards, 2);
    assert_eq!(snap.solve_latency_us.count, queries.len() as u64);
    assert!(snap.solve_latency_us.p50 > 0);
    assert!(snap.solve_latency_us.p95 >= snap.solve_latency_us.p50);
    assert!(snap.solve_latency_us.p99 >= snap.solve_latency_us.p95);
    assert!(snap.probes_per_solve.p50 > 0);
    assert!(snap.turnaround_us.p99 >= snap.turnaround_us.p50);
    // Quantile summaries derive from the histograms in the same snapshot.
    assert_eq!(
        snap.solve_latency_us,
        snap.histograms.solve_latency_us.summary()
    );

    let reg = snap.to_registry();
    assert_eq!(reg.counter("rds_queries_total"), Some(42));
    assert_eq!(reg.gauge("rds_shards"), Some(2));
    assert_eq!(
        reg.histogram("rds_solve_latency_us").unwrap().count(),
        queries.len() as u64
    );
    assert_eq!(
        reg.counter("rds_trace_solve_start_total"),
        Some(snap.trace_counts[EventKind::SolveStart as usize])
    );

    // Acceptance criterion: Prometheus and JSON exports parse back into
    // the identical registry.
    let prom = MetricsRegistry::parse_prometheus(&snap.to_prometheus()).unwrap();
    assert_eq!(prom, reg);
    let json = MetricsRegistry::parse_json(&snap.to_json()).unwrap();
    assert_eq!(json, reg);
}

/// Regression: quantile estimates are clamped to the observed sample
/// range, so a lone sample reports itself — not its bucket's upper
/// bound — at every quantile, including through the engine's latency
/// summaries.
#[test]
fn quantiles_clamp_to_observed_samples() {
    let mut h = Histogram::new();
    h.record(100); // bucket [64,128): the bound 127 must not leak out
    let s = h.summary();
    assert_eq!((s.p50, s.p95, s.p99), (100, 100, 100));
    assert_eq!(s.mean, 100);

    // Engine path: a single-query batch leaves one sample in the solve
    // latency histogram, so all its quantiles coincide with that sample.
    let system = SystemConfig::homogeneous(specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
    let results = engine.submit_batch(&[BatchQuery {
        stream: 0,
        arrival: Micros::ZERO,
        buckets: RangeQuery::new(0, 0, 2, 2).buckets(5),
    }]);
    assert!(results[0].is_ok());
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.solve_latency_us.count, 1);
    assert_eq!(snap.solve_latency_us.p50, snap.solve_latency_us.p99);
    assert_eq!(
        snap.histograms.solve_latency_us.min_sample(),
        Some(snap.solve_latency_us.p50)
    );
}

fn reuse_batch() -> (SystemConfig, OrthogonalAllocation, Vec<BatchQuery>) {
    let system = SystemConfig::homogeneous(specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    let mut queries = Vec::new();
    for (k, &col) in [0usize, 1, 0, 2, 1, 0].iter().enumerate() {
        for s in 0..4usize {
            // Per stream: a fixed-size window sliding over a repeating
            // column cycle, with arrivals spaced far enough apart that
            // loads drain — revisited positions hit the schedule cache,
            // new positions delta-patch the previous flow.
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros::from_millis(k as u64 * 60_000),
                buckets: RangeQuery::new(s % 4, col, 2, 2).buckets(5),
            });
        }
    }
    (system, alloc, queries)
}

/// A warm engine (delta solving + schedule cache) returns the same
/// outcomes as a cold one, and its results, reuse counters and
/// `CacheHit`/`DeltaPatch` event counts are invariant to the shard count.
#[test]
fn warm_engine_reuse_is_shard_invariant() {
    let (system, alloc, queries) = reuse_batch();
    let run = |shards: usize| {
        let mut engine = Engine::builder(&system, &alloc)
            .solver_spec(
                SolverSpec::new(SolverKind::PushRelabelBinary)
                    .warm_start(true)
                    .cache_capacity(4),
            )
            .shards(shards)
            .tracing(1 << 12)
            .build();
        let outcomes: Vec<(Micros, Micros)> = engine
            .submit_batch(&queries)
            .into_iter()
            .map(|r| {
                let o = r.unwrap();
                (o.outcome.response_time, o.completion)
            })
            .collect();
        (outcomes, engine.trace_counts(), engine.stats().reuse)
    };
    let (outcomes, counts, reuse) = run(1);
    // Column cycle 0,1,0,2,1,0 per stream: three first-visits (miss),
    // three revisits (hit), and the two first-visits after a solve are
    // delta patches — times four streams.
    assert_eq!(reuse.cache_hits, 12);
    assert_eq!(reuse.cache_misses, 12);
    assert_eq!(reuse.delta_patches, 8);
    assert_eq!(reuse.delta_fallbacks, 0);
    assert_eq!(counts[EventKind::CacheHit as usize], reuse.cache_hits);
    assert_eq!(counts[EventKind::DeltaPatch as usize], reuse.delta_patches);
    for shards in [2usize, 3, 4] {
        let (o, c, r) = run(shards);
        assert_eq!(o, outcomes, "{shards} shards");
        assert_eq!(r, reuse, "{shards} shards");
        for kind in [
            EventKind::CacheHit,
            EventKind::DeltaPatch,
            EventKind::SolveStart,
        ] {
            assert_eq!(
                c[kind as usize], counts[kind as usize],
                "{kind:?}, {shards} shards"
            );
        }
    }
    // A cold engine over the same batch agrees on every outcome and
    // reports zero reuse.
    let mut cold = Engine::new(&system, &alloc, PushRelabelBinary, 2);
    let cold_outcomes: Vec<(Micros, Micros)> = cold
        .submit_batch(&queries)
        .into_iter()
        .map(|r| {
            let o = r.unwrap();
            (o.outcome.response_time, o.completion)
        })
        .collect();
    assert_eq!(cold_outcomes, outcomes);
    assert_eq!(cold.stats().reuse, ReuseCounters::default());
}

/// Without `with_tracing`, the engine still measures histograms but
/// reports zero trace events — the tracer stays a no-op.
#[test]
fn untraced_engine_has_histograms_but_no_events() {
    let (system, alloc, queries) = chaos_batch();
    let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
    let _ = engine.submit_batch(&queries);
    assert_eq!(engine.trace_counts(), [0u64; EventKind::COUNT]);
    assert!(engine.shard_recorder(0).is_none());
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.solve_latency_us.count, queries.len() as u64);
    assert!(snap.probes_per_solve.p99 > 0);
}
