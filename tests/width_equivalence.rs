//! Width-equivalence property suite for the monomorphized CSR arena.
//!
//! The residual arena stores capacities and flows as either `i32`
//! ([`ArenaLayout::Compact`]) or `i64` ([`ArenaLayout::Wide`]); the
//! adjacency layout, traversal order, and every solver decision must be
//! independent of that storage width. These tests force both widths over
//! the same randomized workloads — cold solves under random
//! [`HealthMap`]s, warm-start/delta session streams, and the serving
//! loop's span timelines — and require bit-identical schedules, solve
//! statistics, and span digests.

use rds_util::SplitMix64;
use replicated_retrieval::core::spec::{ArenaLayout, SolverKind, SolverSpec};
use replicated_retrieval::prelude::*;

fn arb_system(n: usize, seed: u64) -> SystemConfig {
    experiment(ExperimentId::ALL[(seed % 5) as usize], n, seed)
}

fn arb_alloc(n: usize, seed: u64) -> ReplicaMap {
    match seed % 3 {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

/// A random per-disk health map: mostly healthy, with occasional degraded
/// and offline disks. When `offline_only` is set (FF-basic requires the
/// surviving system to stay uniform) degraded states are not generated.
fn arb_health(n: usize, rng: &mut SplitMix64, offline_only: bool) -> HealthMap {
    let mut map = HealthMap::all_healthy();
    // At most one offline disk keeps the replicated instances feasible
    // in the common case; infeasible cases are still compared.
    let offline_budget = 1usize;
    let mut offline = 0usize;
    for j in 0..n {
        match rng.gen_range(0..8u64) {
            0 if offline < offline_budget => {
                map.set(j, DiskHealth::Offline);
                offline += 1;
            }
            1 if !offline_only => {
                let load_factor = 100 + rng.gen_range(1..200u64) as u32;
                map.set(j, DiskHealth::Degraded { load_factor });
            }
            _ => {}
        }
    }
    map
}

/// Asserts the two outcomes are bit-identical apart from the stamped
/// arena layout, which differs by construction.
fn assert_stats_match(kind: SolverKind, compact: &SolveStats, wide: &SolveStats) {
    assert_eq!(
        compact.arena_layout,
        ArenaLayout::Compact,
        "{}: compact run stamped the wrong layout",
        kind.name()
    );
    assert_eq!(
        wide.arena_layout,
        ArenaLayout::Wide,
        "{}: wide run stamped the wrong layout",
        kind.name()
    );
    let mut normalized = *compact;
    normalized.arena_layout = wide.arena_layout;
    assert_eq!(
        normalized,
        *wide,
        "{}: op counts diverge between arena widths",
        kind.name()
    );
}

/// Compact and wide arenas produce bit-identical schedules and solve
/// statistics for every solver kind across 200 random instances, each
/// solved under a random health map.
#[test]
fn compact_and_wide_agree_on_random_instances_under_random_health() {
    let mut rng = SplitMix64::seed_from_u64(0x31D7);
    let mut compared = 0usize;
    for _ in 0..200 {
        let n = rng.gen_range(3..7usize);
        let seed = rng.gen_range(0..1000u64);
        let r = rng.gen_range(1..5usize).min(n);
        let c = rng.gen_range(1..5usize).min(n);
        let row = rng.gen_range(0..n);
        let col = rng.gen_range(0..n);
        let q = RangeQuery::new(row.min(n - r), col.min(n - c), r, c);
        let buckets = q.buckets(n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed.wrapping_add(3));
        // FF-basic supports only the pristine uniform problem: give it an
        // Exp1 system and an offline-only health map (pruning offline
        // disks keeps the survivors uniform; degradation would not).
        let basic_system = experiment(ExperimentId::Exp1, n, seed);
        let health = arb_health(n, &mut rng, false);
        let basic_health = arb_health(n, &mut rng, true);

        for kind in SolverKind::ALL {
            let (system, health) = if kind == SolverKind::FordFulkersonBasic {
                (&basic_system, &basic_health)
            } else {
                (&system, &health)
            };
            // One worker thread keeps the parallel solver's work-stealing
            // discharge order (hence its op counts) deterministic.
            let solver = SolverSpec::new(kind).parallelism(1);
            let mut compact = RetrievalSession::new(system, &alloc, solver.build())
                .arena_layout(ArenaLayout::Compact);
            let mut wide = RetrievalSession::new(system, &alloc, solver.build())
                .arena_layout(ArenaLayout::Wide);
            let a = compact.submit_with_health(Micros::ZERO, &buckets, health);
            let b = wide.submit_with_health(Micros::ZERO, &buckets, health);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.outcome.schedule,
                        b.outcome.schedule,
                        "{}: schedules diverge between arena widths",
                        kind.name()
                    );
                    assert_eq!(a.outcome.response_time, b.outcome.response_time);
                    assert_eq!(a.outcome.flow_value, b.outcome.flow_value);
                    assert_eq!(a.completion, b.completion);
                    assert_stats_match(kind, &a.outcome.stats, &b.outcome.stats);
                    compared += 1;
                }
                (a, b) => assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{}: widths disagree on failure",
                    kind.name()
                ),
            }
        }
    }
    // The one-offline-disk budget keeps the vast majority of cases
    // feasible; make sure the property actually ran on solved outcomes.
    assert!(compared >= 1000, "only {compared} feasible comparisons");
}

/// Warm-start/delta session streams are width-invariant: overlapping
/// sliding-window queries (with a health change mid-stream) produce the
/// same schedules, completions, statistics, and reuse decisions on both
/// arena widths.
#[test]
fn warm_sessions_agree_across_widths() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let windows = [
        RangeQuery::new(0, 0, 4, 3),
        RangeQuery::new(1, 0, 4, 3),
        RangeQuery::new(2, 1, 4, 3),
        RangeQuery::new(3, 1, 4, 3),
        RangeQuery::new(3, 2, 4, 3),
    ];
    let degraded = {
        let mut h = HealthMap::all_healthy();
        h.set(2, DiskHealth::Degraded { load_factor: 150 });
        h
    };
    for kind in [
        SolverKind::PushRelabelIncremental,
        SolverKind::PushRelabelBinary,
        SolverKind::ParallelPushRelabelBinary,
        SolverKind::FordFulkersonIncremental,
    ] {
        let solver = SolverSpec::new(kind).parallelism(1).warm_start(true);
        let mut compact =
            RetrievalSession::with_reuse(&system, &alloc, solver.build(), solver.reuse_policy())
                .arena_layout(ArenaLayout::Compact);
        let mut wide =
            RetrievalSession::with_reuse(&system, &alloc, solver.build(), solver.reuse_policy())
                .arena_layout(ArenaLayout::Wide);
        for (i, q) in windows.iter().enumerate() {
            // A health change mid-stream forces the rebuild path once,
            // exercising both the delta and the rebuild transitions.
            let health = if i == 3 {
                degraded.clone()
            } else {
                HealthMap::all_healthy()
            };
            let arrival = Micros::from_millis(10 * i as u64);
            let a = compact
                .submit_with_health(arrival, &q.buckets(7), &health)
                .unwrap();
            let b = wide
                .submit_with_health(arrival, &q.buckets(7), &health)
                .unwrap();
            assert_eq!(
                a.outcome.schedule,
                b.outcome.schedule,
                "{} window {i}",
                kind.name()
            );
            assert_eq!(a.completion, b.completion, "{} window {i}", kind.name());
            assert_stats_match(kind, &a.outcome.stats, &b.outcome.stats);
        }
        assert_eq!(
            compact.reuse_counters(),
            wide.reuse_counters(),
            "{}: reuse decisions diverge between arena widths",
            kind.name()
        );
    }
}

/// The serving loop's span timelines — phase kinds and their
/// deterministic attributes, folded into [`QuerySpan::phase_digest`] —
/// are identical on both arena widths under the virtual clock.
#[test]
fn serve_span_digests_agree_across_widths() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries: Vec<BatchQuery> = (0..24)
        .map(|k| BatchQuery {
            stream: k % 6,
            arrival: Micros::from_millis((k / 6) as u64 * 3),
            buckets: RangeQuery::new(k % 5, (k + 1) % 5, 1 + k % 2, 2).buckets(7),
        })
        .collect();
    for kind in [
        SolverKind::PushRelabelBinary,
        SolverKind::ParallelPushRelabelBinary,
    ] {
        let mut digests: Option<std::collections::BTreeMap<u64, u64>> = None;
        for layout in [ArenaLayout::Compact, ArenaLayout::Wide] {
            let mut engine = Engine::builder(&system, &alloc)
                .solver_spec(SolverSpec::new(kind).parallelism(1).arena_layout(layout))
                .shards(2)
                .build();
            engine.serve(ServeConfig::default().virtual_time(), |h| {
                for q in &queries {
                    h.submit(QueryRequest::new(q.stream, q.buckets.clone()).arriving_at(q.arrival))
                        .unwrap();
                }
            });
            let pm = engine.postmortem();
            assert_eq!(pm.spans.len(), 24, "{}: {layout:?}", kind.name());
            let got: std::collections::BTreeMap<u64, u64> = pm
                .spans
                .iter()
                .map(|s| (s.id.0, s.phase_digest()))
                .collect();
            match &digests {
                None => digests = Some(got),
                Some(want) => assert_eq!(
                    &got,
                    want,
                    "{}: span digests diverge between arena widths",
                    kind.name()
                ),
            }
        }
    }
}

/// Two disks: a glacial one that drives the solve's upper response-time
/// bound `t_max` sky-high, and a fast one (X25-E-like 200µs — keeping
/// `min_speed` at the paper's scale so the binary search always makes
/// progress) that converts that budget into more than `i32::MAX / 2`
/// retrievable blocks as the stream's loads grow.
fn morph_system() -> SystemConfig {
    use replicated_retrieval::storage::specs::{DiskKind, DiskSpec};
    const SLOW: DiskSpec = DiskSpec {
        producer: "test",
        model: "glacial",
        kind: DiskKind::Hdd,
        rpm: Some(1),
        access_time: Micros::from_micros(100_000_000_000),
    };
    const FAST: DiskSpec = DiskSpec {
        producer: "test",
        model: "instant",
        kind: DiskKind::Ssd,
        rpm: None,
        access_time: Micros::from_micros(200),
    };
    SystemConfig::builder()
        .site("a")
        .disk(SLOW)
        .disk(FAST)
        .build()
}

/// Bucket (0,0) lives only on the glacial disk 0 (so serving it charges
/// that disk with ~4·10⁸ µs of load); every other bucket is replicated
/// on both disks.
struct MorphAlloc;

impl ReplicaSource for MorphAlloc {
    fn grid_size(&self) -> usize {
        2
    }
    fn num_disks(&self) -> usize {
        2
    }
    fn replicas(&self, b: Bucket) -> Replicas {
        if b.row == 0 && b.col == 0 {
            Replicas::from_slice(&[0])
        } else {
            Replicas::from_slice(&[0, 1])
        }
    }
}

/// Regression: a stream that grows past the `i32` capacity bound
/// mid-session. Query 1 fits the compact arena but charges the glacial
/// disk with enough load that query 2's capacity bound overflows `i32`.
/// Under a forced `Compact` layout the submit fails with the typed
/// [`SolveError::ArenaOverflow`] — no panic, no wrapped capacities — and
/// the session stays fully usable; under `Auto` the selector
/// transparently widens for exactly that query and re-narrows after.
#[test]
fn stream_morphing_across_the_i32_bound() {
    let system = morph_system();
    let alloc = MorphAlloc;
    let q1 = RangeQuery::new(0, 0, 2, 1).buckets(2); // (0,0) pins disk 0
    let q2 = RangeQuery::new(0, 1, 2, 1).buckets(2); // both dual-homed
    let q3 = RangeQuery::new(1, 1, 1, 1).buckets(2); // small again
    let solver = SolverSpec::new(SolverKind::PushRelabelBinary).warm_start(true);

    // Forced compact: the overflowing query fails typed, mid-stream.
    let mut compact =
        RetrievalSession::with_reuse(&system, &alloc, solver.build(), solver.reuse_policy())
            .arena_layout(ArenaLayout::Compact);
    let a = compact.submit(Micros::ZERO, &q1).unwrap();
    assert_eq!(a.outcome.stats.arena_layout, ArenaLayout::Compact);
    let err = compact.submit(Micros::from_millis(10), &q2).unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::Solve(SolveError::ArenaOverflow { width: "i32", .. })
        ),
        "expected a typed arena overflow, got {err:?}"
    );
    // The failure is clean: the same session keeps serving queries that
    // fit the forced width.
    let c = compact.submit(Micros::from_millis(20), &q3).unwrap();
    assert_eq!(c.outcome.stats.arena_layout, ArenaLayout::Compact);
    assert_eq!(c.outcome.schedule.len(), 1);

    // Auto: the same stream transparently widens for the oversized query
    // and re-narrows once the next instance fits again.
    let mut auto =
        RetrievalSession::with_reuse(&system, &alloc, solver.build(), solver.reuse_policy());
    let a = auto.submit(Micros::ZERO, &q1).unwrap();
    assert_eq!(a.outcome.stats.arena_layout, ArenaLayout::Compact);
    let b = auto.submit(Micros::from_millis(10), &q2).unwrap();
    assert_eq!(b.outcome.stats.arena_layout, ArenaLayout::Wide);
    assert_eq!(b.outcome.schedule.len(), 2);
    let c = auto.submit(Micros::from_millis(20), &q3).unwrap();
    assert_eq!(c.outcome.stats.arena_layout, ArenaLayout::Compact);
}

/// The automatic width selector sits exactly on the documented boundary:
/// instances whose peak edge capacity fits in the compact guard band get
/// the `i32` arena, anything larger transparently widens — and a forced
/// compact layout on an oversized instance fails with a typed error
/// rather than overflowing.
#[test]
fn auto_width_selection_is_observable_in_stats() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let inst = RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 4, 4).buckets(7));
    // Paper-sized capacities are far below the i32 guard band.
    let auto = SolverSpec::new(SolverKind::PushRelabelBinary)
        .solve(&inst)
        .unwrap();
    assert_eq!(auto.stats.arena_layout, ArenaLayout::Compact);
    let wide = SolverSpec::new(SolverKind::PushRelabelBinary)
        .arena_layout(ArenaLayout::Wide)
        .solve(&inst)
        .unwrap();
    assert_eq!(wide.stats.arena_layout, ArenaLayout::Wide);
    assert_eq!(auto.response_time, wide.response_time);
    assert_eq!(auto.schedule, wide.schedule);
}
