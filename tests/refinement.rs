//! Min-cost schedule refinement properties.
//!
//! Refinement (a [`ScheduleObjective`] other than `FirstFeasible`) must
//! never trade away what the binary search proved: the refined schedule
//! keeps the optimal response time and the full flow value for every
//! solver kind, every health map and every reuse path — it only
//! redistributes which replicas carry the load.

use rds_util::SplitMix64;
use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::core::verify::assert_outcome_valid;
use replicated_retrieval::prelude::*;

fn build_alloc(scheme: usize, n: usize, seed: u64) -> ReplicaMap {
    match scheme {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

fn random_health(rng: &mut SplitMix64, n: usize) -> HealthMap {
    let mut health = HealthMap::all_healthy();
    for j in 0..n {
        match rng.gen_range(0..8u64) {
            0 => health.set(j, DiskHealth::Offline),
            1 => health.set(
                j,
                DiskHealth::Degraded {
                    load_factor: 110 + rng.gen_range(0..200u64) as u32,
                },
            ),
            _ => {}
        }
    }
    health
}

/// 200 random (system, allocation, query, health) cases: for every
/// solver kind and both refining objectives, the refined schedule is
/// valid, keeps the unrefined optimal response time and flow value, and
/// `MinTotalLoad` never increases the total weighted load.
#[test]
fn refinement_preserves_the_optimum_across_kinds_and_health() {
    let mut rng = SplitMix64::seed_from_u64(0x12EF);
    let mut cases = 0usize;
    while cases < 200 {
        let n = rng.gen_range(3..8usize);
        let exp = ExperimentId::ALL[rng.gen_range(0..5usize)];
        let system = experiment(exp, n, rng.gen_u64());
        let alloc = build_alloc(rng.gen_range(0..3usize), n, rng.gen_u64());
        let q = RangeQuery::new(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(1..=n),
            rng.gen_range(1..=n),
        );
        let buckets = q.buckets(n);
        let health = random_health(&mut rng, n);
        let Ok(inst) = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health)
        else {
            // Some bucket lost every replica — not a refinement case.
            continue;
        };
        // Algorithm 1 solves the basic problem only: give it a
        // homogeneous all-healthy instance, like the equivalence suite.
        let basic_system = experiment(ExperimentId::Exp1, n, rng.gen_u64());
        let basic_inst = RetrievalInstance::build(&basic_system, &alloc, &buckets);
        cases += 1;

        for kind in SolverKind::ALL {
            let inst = if kind == SolverKind::FordFulkersonBasic {
                &basic_inst
            } else {
                &inst
            };
            let plain = SolverSpec::new(kind).build().solve(inst).unwrap();
            for objective in [
                ScheduleObjective::MinTotalLoad,
                ScheduleObjective::MinMaxLoad,
            ] {
                let refined = SolverSpec::new(kind)
                    .objective(objective)
                    .solve(inst)
                    .unwrap();
                assert_outcome_valid(inst, &refined);
                assert_eq!(
                    refined.response_time,
                    plain.response_time,
                    "{} with {objective:?} changed the optimal response time (case {cases})",
                    kind.name()
                );
                assert_eq!(refined.flow_value, plain.flow_value);
                assert_eq!(refined.stats.refine_passes, 1);
                if objective == ScheduleObjective::MinTotalLoad {
                    assert!(
                        refined.schedule.total_weighted_load(&inst.disks)
                            <= plain.schedule.total_weighted_load(&inst.disks),
                        "{} MinTotalLoad increased total load (case {cases})",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// Sliding 2×5 windows over the 7×7 grid: a warm session (delta-patched
/// via `patch_buckets`, schedule cache on) with refinement enabled must
/// return the same response times and total weighted loads as a cold
/// session running the identical refined workload — and must actually
/// exercise the delta path while doing so.
#[test]
fn warm_refined_sessions_agree_with_cold_refined_solves() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let disks: Vec<_> = system.disks().to_vec();
    for objective in [
        ScheduleObjective::MinTotalLoad,
        ScheduleObjective::MinMaxLoad,
    ] {
        let mut warm =
            RetrievalSession::with_reuse(&system, &alloc, PushRelabelBinary, ReusePolicy::warm())
                .objective(objective);
        let mut cold =
            RetrievalSession::new(&system, &alloc, PushRelabelBinary).objective(objective);
        for step in 0..24usize {
            // Snake the window one column at a time, wrapping rows: 80%
            // bucket overlap between consecutive queries, equal sizes —
            // exactly the shape the delta patcher accepts.
            let q = RangeQuery::new(step % 6, (step / 6) % 6, 2, 5);
            let buckets = q.buckets(7);
            let arrival = Micros::from_millis(40 * step as u64);
            let w = warm.submit(arrival, &buckets).unwrap();
            let c = cold.submit(arrival, &buckets).unwrap();
            assert_eq!(
                w.outcome.response_time, c.outcome.response_time,
                "step {step} ({objective:?})"
            );
            assert_eq!(w.outcome.flow_value, c.outcome.flow_value);
            assert_eq!(
                w.outcome.schedule.total_weighted_load(&disks),
                c.outcome.schedule.total_weighted_load(&disks),
                "step {step} ({objective:?})"
            );
            assert_eq!(w.completion, c.completion);
        }
        let reuse = warm.reuse_counters();
        assert!(
            reuse.delta_patches > 0,
            "warm stream never delta-patched ({objective:?})"
        );
    }
}

/// The engine threads the objective through its builder spec: refined
/// batches keep the exact response times of the unrefined engine,
/// refinement work shows up in the solver stats, and the metrics
/// registry exports the `rds_refine_*` counters.
#[test]
fn engine_objective_refines_without_changing_response_times() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut queries = Vec::new();
    for k in 0..8usize {
        for s in 0..3usize {
            let q = RangeQuery::new((s + k) % 6, k % 6, 2, 4);
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros::from_millis((30 * k) as u64),
                buckets: q.buckets(7),
            });
        }
    }
    let run = |objective: ScheduleObjective| {
        let mut engine = Engine::builder(&system, &alloc)
            .solver_spec(
                SolverSpec::new(SolverKind::PushRelabelBinary)
                    .objective(objective)
                    .reuse(ReusePolicy::warm()),
            )
            .shards(2)
            .build();
        let times: Vec<Micros> = engine
            .submit_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap().outcome.response_time)
            .collect();
        (times, engine.metrics_snapshot())
    };
    let (plain_times, plain_snap) = run(ScheduleObjective::FirstFeasible);
    let (refined_times, snap) = run(ScheduleObjective::MinMaxLoad);
    assert_eq!(refined_times, plain_times);
    assert_eq!(plain_snap.stats.solve_stats.refine_passes, 0);
    assert_eq!(
        snap.stats.solve_stats.refine_passes,
        queries.len() as u64 - snap.stats.reuse.cache_hits
    );
    let prom = snap.to_prometheus();
    assert!(prom.contains("rds_refine_passes_total"));
    assert!(prom.contains("rds_refine_cycles_total"));
    assert!(prom.contains("rds_refine_moved_units_total"));
}
