//! Cross-crate coverage of the model extensions beyond the paper's
//! headline experiments: c > 2 replication, the threshold-based orthogonal
//! scheme, and multi-query sessions.

use replicated_retrieval::core::ff::FordFulkersonIncremental;
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::core::session::RetrievalSession;
use replicated_retrieval::core::verify::{assert_outcome_valid, oracle_optimal_response};
use replicated_retrieval::decluster::threshold::ThresholdOrthogonalAllocation;
use replicated_retrieval::prelude::*;

/// Three copies on three sites: solvers stay optimal and agree.
#[test]
fn three_copies_across_three_sites() {
    let n = 5;
    // Build a 3-site system by stacking three experiment sites.
    let base = experiment(ExperimentId::Exp4, n, 7);
    let third = experiment(ExperimentId::Exp2, n, 8);
    let system = SystemConfig::new(
        base.sites()
            .iter()
            .cloned()
            .chain(third.sites().iter().take(1).cloned())
            .collect(),
    );
    assert_eq!(system.num_disks(), 3 * n);

    let alloc = DependentPeriodicAllocation::with_copies(n, 3, Placement::PerSite);
    let q = RangeQuery::new(1, 1, 4, 4);
    let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
    assert_eq!(inst.max_copies, 3);

    let pr = PushRelabelBinary.solve(&inst).unwrap();
    let ff = FordFulkersonIncremental.solve(&inst).unwrap();
    let par = ParallelPushRelabelBinary::new(2).solve(&inst).unwrap();
    assert_eq!(pr.response_time, ff.response_time);
    assert_eq!(pr.response_time, par.response_time);
    assert_eq!(pr.response_time, oracle_optimal_response(&inst));
    assert_outcome_valid(&inst, &pr);
}

/// More copies can only help: the 3-copy optimum is never worse than the
/// 2-copy optimum whose replicas it contains.
#[test]
fn extra_copies_never_hurt() {
    let n = 6;
    let system3 = {
        let two = experiment(ExperimentId::Exp4, n, 3);
        let extra = experiment(ExperimentId::Exp4, n, 4);
        SystemConfig::new(
            two.sites()
                .iter()
                .cloned()
                .chain(extra.sites().iter().take(1).cloned())
                .collect(),
        )
    };
    let alloc2 = DependentPeriodicAllocation::with_copies(n, 2, Placement::PerSite);
    let alloc3 = DependentPeriodicAllocation::with_copies(n, 3, Placement::PerSite);
    // `with_copies` uses shift k·⌊N/c⌋, so copies 1 and 2 differ between
    // the variants; compare against the same first two sites by giving
    // the 2-copy solver the same system (extra site simply unused).
    let mut gen = QueryGenerator::new(n, QueryKind::Arbitrary, Load::Load2, 5);
    for _ in 0..5 {
        let q = gen.next_query().buckets(n);
        let inst2 = RetrievalInstance::build(&system3, &alloc2, &q);
        let inst3 = RetrievalInstance::build(&system3, &alloc3, &q);
        let r2 = PushRelabelBinary.solve(&inst2).unwrap().response_time;
        let r3 = PushRelabelBinary.solve(&inst3).unwrap().response_time;
        // Not a strict dominance (different shift patterns), but with a
        // whole extra site of replicas the 3-copy optimum should never be
        // dramatically worse; assert it at least never loses by more than
        // the slowest single access.
        let slack = system3
            .disks()
            .iter()
            .map(|d| d.completion_time(1))
            .max()
            .unwrap();
        assert!(r3 <= r2 + slack, "3-copy {r3} much worse than 2-copy {r2}");
    }
}

/// The threshold-based orthogonal scheme plugs into the full pipeline.
#[test]
fn threshold_orthogonal_end_to_end() {
    let n = 7;
    let system = experiment(ExperimentId::Exp5, n, 11);
    let alloc = ThresholdOrthogonalAllocation::new(n, Placement::PerSite);
    assert!(alloc.threshold >= 2);
    let mut gen = QueryGenerator::new(n, QueryKind::Range, Load::Load1, 13);
    for _ in 0..5 {
        let q = gen.next_query().buckets(n);
        let inst = RetrievalInstance::build(&system, &alloc, &q);
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    }
}

/// Sessions with heterogeneous systems: a saturated fast site pushes work
/// to the slower site, and response times stay optimal per submission.
#[test]
fn session_over_heterogeneous_system() {
    let n = 6;
    let system = experiment(ExperimentId::Exp3, n, 2); // HDD site + SSD site
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
    let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);

    let q = RangeQuery::new(0, 0, n, n); // the whole grid
    let first = session.submit(Micros::ZERO, &q.buckets(n)).unwrap();
    let second = session.submit(Micros::ZERO, &q.buckets(n)).unwrap();
    // The second must queue behind the first somewhere.
    assert!(second.outcome.response_time > first.outcome.response_time);
    // But each submission is optimal for its own loaded system: verify by
    // rebuilding that system and consulting the oracle.
    let loaded: Vec<_> = (0..system.num_disks())
        .map(|j| replicated_retrieval::storage::model::Disk {
            initial_load: system.disk(j).initial_load + session.current_load(j),
            ..*system.disk(j)
        })
        .collect();
    assert_eq!(loaded.len(), 2 * n);
    assert_eq!(session.queries_served(), 2);
}

/// A long session stays consistent: served totals, monotone virtual time,
/// loads eventually drain.
#[test]
fn long_session_drains() {
    let n = 5;
    let system = experiment(ExperimentId::Exp1, n, 1);
    let alloc = ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite));
    let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
    let mut gen = QueryGenerator::new(n, QueryKind::Arbitrary, Load::Load3, 3);
    let mut t = Micros::ZERO;
    for _ in 0..20 {
        let q = gen.next_query().buckets(n);
        t += Micros::from_millis(1);
        let _ = session.submit(t, &q).unwrap();
    }
    assert_eq!(session.queries_served(), 20);
    // Jump far into the future: everything drained.
    let q = RangeQuery::new(0, 0, 1, 1);
    let far = t + Micros::from_millis(10_000);
    let out = session.submit(far, &q.buckets(n)).unwrap();
    assert_eq!(out.outcome.response_time, Micros::from_tenths_ms(61));
}
