//! The paper's worked example (Sections II-D/II-E, Figures 2-4, Tables
//! I-II) as an executable specification.

use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::core::verify::oracle_optimal_response;
use replicated_retrieval::prelude::*;

/// §II-D: query q1 is 3×2 with optimal cost ⌈6/7⌉ = 1 on the basic
/// problem; replication achieves it even though a single copy cannot.
#[test]
fn q1_basic_problem_needs_replication_for_one_access() {
    let n = 7;
    let system = experiment(ExperimentId::Exp1, n, 0); // homogeneous, 2 sites
    let alloc = OrthogonalAllocation::paper_7x7();
    let q1 = RangeQuery::new(0, 0, 3, 2);
    let buckets = q1.buckets(n);
    assert_eq!(buckets.len(), 6);

    // Single copy (copy 1 only): some disk must serve ≥ 2 buckets because
    // a 3x2 rectangle cannot be spread 1-per-disk by the lattice.
    let mut per_disk = [0usize; 14];
    for &b in &buckets {
        per_disk[alloc.replicas(b).disk(0)] += 1;
    }
    let single_copy_cost = *per_disk.iter().max().unwrap();
    assert!(single_copy_cost >= 1);

    // With both copies the max-flow schedule retrieves one bucket per
    // disk: response = 1 access of a cheetah (6.1 ms).
    let inst = RetrievalInstance::build(&system, &alloc, &buckets);
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(61));
    let counts = outcome.schedule.per_disk_counts(inst.num_disks());
    assert!(counts.iter().all(|&k| k <= 1), "one access per disk");
}

/// §II-E / Figure 4: the generalized problem on the Table II system.
#[test]
fn q1_generalized_matches_figure_4_budget() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let q1 = RangeQuery::new(0, 0, 3, 2);
    let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));

    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    // Figure 4 shows capacities 1 for site-1 disks (completion 11.3ms) and
    // the fast site-2 disks (7.1ms), 0 for the slow ones: the optimal
    // budget is 11.3ms.
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(113));
    assert_eq!(outcome.response_time, oracle_optimal_response(&inst));

    // Figure 4 capacity vector at the optimal budget.
    let mut g = inst.graph.clone();
    inst.set_caps_for_budget(&mut g, outcome.response_time);
    let caps: Vec<i64> = inst.disk_edges.iter().map(|&e| g.cap(e)).collect();
    let expected = [1i64, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 0, 1];
    assert_eq!(caps, expected, "Figure 4 edge capacities");
}

/// Table II parameters drive the completion-time formula used everywhere.
#[test]
fn table_ii_completion_times() {
    let system = paper_example();
    // Site-1 raptor: D=2, X=1, C=8.3 → 1 bucket at 11.3ms, 2 at 19.6ms.
    assert_eq!(
        system.disk(0).completion_time(1),
        Micros::from_tenths_ms(113)
    );
    assert_eq!(
        system.disk(0).completion_time(2),
        Micros::from_tenths_ms(196)
    );
    // Fast site-2 cheetah: D=1, X=0, C=6.1 → 1 bucket at 7.1ms.
    assert_eq!(
        system.disk(7).completion_time(1),
        Micros::from_tenths_ms(71)
    );
    // Slow site-2 barracuda: 1 bucket at 14.2ms.
    assert_eq!(
        system.disk(9).completion_time(1),
        Micros::from_tenths_ms(142)
    );
}

/// Figure 3 structure: the single-site basic network for q1 has unit
/// capacities everywhere because ⌈|Q|/N⌉ = 1.
#[test]
fn figure_3_network_shape() {
    let system = SystemConfig::homogeneous(replicated_retrieval::storage::specs::CHEETAH, 7);
    let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
    let q1 = RangeQuery::new(0, 0, 3, 2);
    let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
    // 6 buckets + 7 disks + s + t.
    assert_eq!(inst.graph.num_vertices(), 15);
    // Every bucket has at most 2 replica edges.
    for i in 0..6 {
        let v = inst.bucket_vertex(i);
        let fwd = inst.graph.forward_out_degree(v);
        assert!((1..=2).contains(&fwd), "bucket {i} has {fwd} replica edges");
    }
    // ⌈6/7⌉ = 1: the FF-basic starting capacity is 1 (validated through
    // the solve producing one access per disk).
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(61));
}

/// The orthogonality property the paper's Figure 2 illustrates.
#[test]
fn figure_2_orthogonality() {
    let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
    let mut pairs = std::collections::HashSet::new();
    for row in 0..7u32 {
        for col in 0..7u32 {
            let b = Bucket::new(row, col);
            assert!(pairs.insert((alloc.f(b), alloc.g(b))));
        }
    }
    assert_eq!(pairs.len(), 49, "each disk pair appears exactly once");
}
