//! Randomized property tests on the core invariants, driven by a seeded
//! SplitMix64 so every run checks the same deterministic case list.

use rds_util::SplitMix64;
use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::core::verify::{assert_outcome_valid, oracle_optimal_response};
use replicated_retrieval::flow::validate::assert_valid_flow;
use replicated_retrieval::flow::FlowGraph;
use replicated_retrieval::prelude::*;

fn arb_system(n: usize, seed: u64) -> SystemConfig {
    let id = ExperimentId::ALL[(seed % 5) as usize];
    experiment(id, n, seed)
}

fn arb_alloc(n: usize, seed: u64) -> ReplicaMap {
    match seed % 3 {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

/// The solver's schedule is complete, uses only replica disks, and is
/// optimal per the independent oracle.
#[test]
fn solved_schedules_are_valid_and_optimal() {
    let mut rng = SplitMix64::seed_from_u64(0x9A1);
    for _ in 0..24 {
        let n = rng.gen_range(3..7usize);
        let seed = rng.gen_range(0..1000u64);
        let r = rng.gen_range(1..6usize).min(n);
        let c = rng.gen_range(1..6usize).min(n);
        let (i, j) = (rng.gen_range(0..6usize) % n, rng.gen_range(0..6usize) % n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed);
        let q = RangeQuery::new(i, j, r, c);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    }
}

/// Disk capacities are monotone non-decreasing in the budget — the
/// property that makes flow conservation across probes sound.
#[test]
fn capacities_monotone_in_budget() {
    let mut rng = SplitMix64::seed_from_u64(0x9A2);
    for _ in 0..24 {
        let n = rng.gen_range(2..10usize);
        let seed = rng.gen_range(0..1000u64);
        let t1 = rng.gen_range(0..1_000_000u64);
        let t2 = rng.gen_range(0..1_000_000u64);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let system = arb_system(n, seed);
        for d in system.disks() {
            assert!(d.capacity_within(Micros(lo)) <= d.capacity_within(Micros(hi)));
        }
    }
}

/// Completion time and capacity are inverse: a disk can always finish
/// `capacity_within(t)` buckets within `t`, and one more would exceed it.
#[test]
fn capacity_is_tight() {
    let mut rng = SplitMix64::seed_from_u64(0x9A3);
    for _ in 0..24 {
        let n = rng.gen_range(2..8usize);
        let seed = rng.gen_range(0..1000u64);
        let t = rng.gen_range(1..10_000_000u64);
        let system = arb_system(n, seed);
        for d in system.disks() {
            let k = d.capacity_within(Micros(t));
            if k > 0 {
                assert!(d.completion_time(k) <= Micros(t));
            }
            assert!(d.completion_time(k + 1) > Micros(t));
        }
    }
}

/// Orthogonal allocations cover every disk pair exactly once for any
/// grid size.
#[test]
fn orthogonality_for_any_n() {
    for n in 2usize..40 {
        let alloc = OrthogonalAllocation::new(n, Placement::SingleSite);
        let mut pairs = std::collections::HashSet::new();
        for row in 0..n as u32 {
            for col in 0..n as u32 {
                let b = Bucket::new(row, col);
                assert!(pairs.insert((alloc.f(b), alloc.g(b))));
            }
        }
        assert_eq!(pairs.len(), n * n);
    }
}

/// Periodic allocations are balanced: each disk holds exactly N buckets
/// per copy.
#[test]
fn periodic_allocations_balanced() {
    for n in 2usize..30 {
        let alloc = DependentPeriodicAllocation::new(n, Placement::PerSite);
        let map = ReplicaMap::build(&alloc);
        for d in 0..2 * n {
            assert_eq!(map.buckets_on_disk(d), n);
        }
    }
}

/// Query generators respect the size bounds of their load definition:
/// Load 2/3 arbitrary queries have exactly |Q| ∈ [(k−1)N+1, kN] for
/// some k ≤ N.
#[test]
fn load_sizes_in_bounds() {
    let mut rng = SplitMix64::seed_from_u64(0x9A4);
    for _ in 0..24 {
        let n = rng.gen_range(2..20usize);
        let seed = rng.gen_range(0..1000u64);
        for load in [Load::Load1, Load::Load2, Load::Load3] {
            let mut gen = QueryGenerator::new(n, QueryKind::Arbitrary, load, seed);
            for _ in 0..5 {
                let q = gen.next_query();
                let size = q.len(n);
                assert!(size >= 1 && size <= n * n, "size {size} out of range");
            }
        }
    }
}

/// The flow left in the graph after a solve is a valid flow whose value
/// equals the query size (checked through a fresh solve on the
/// instance's own graph copy).
#[test]
fn solver_flow_is_conserved() {
    let mut rng = SplitMix64::seed_from_u64(0x9A5);
    for _ in 0..24 {
        let n = rng.gen_range(3..7usize);
        let seed = rng.gen_range(0..500u64);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed.wrapping_add(7));
        let q = RangeQuery::new(0, 0, n, n.div_ceil(2));
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        // Reconstruct the flow from the schedule and validate.
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        let mut g: FlowGraph = inst.graph.clone();
        inst.set_caps_for_budget(&mut g, outcome.response_time);
        for (i, &(_, disk)) in outcome.schedule.assignments().iter().enumerate() {
            g.push(inst.bucket_edges[i], 1);
            let bv = inst.bucket_vertex(i);
            let dv = inst.disk_vertex(disk);
            let e = g
                .out_edges(bv)
                .iter()
                .map(|&e| e as usize)
                .find(|&e| e % 2 == 0 && g.target(e) == dv)
                .expect("replica edge exists");
            g.push(e, 1);
            g.push(inst.disk_edges[disk], 1);
        }
        assert_valid_flow(&g, inst.source(), inst.sink());
        assert_eq!(g.net_inflow(inst.sink()) as usize, inst.query_size());
    }
}

/// Optimality lower bound: no budget strictly below the returned one
/// admits a complete flow (checked at the immediate predecessor
/// candidate).
#[test]
fn no_cheaper_budget_is_feasible() {
    let mut rng = SplitMix64::seed_from_u64(0x9A6);
    for _ in 0..24 {
        let n = rng.gen_range(3..6usize);
        let seed = rng.gen_range(0..500u64);
        let r = rng.gen_range(1..5usize).min(n);
        let c = rng.gen_range(1..5usize).min(n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed);
        let q = RangeQuery::new(0, 0, r, c);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        let epsilon = Micros(1);
        let below = outcome.response_time.saturating_sub(epsilon);
        let mut g = inst.graph.clone();
        inst.set_caps_for_budget(&mut g, below);
        let flow = replicated_retrieval::flow::dinic::Dinic::new().max_flow(
            &mut g,
            inst.source(),
            inst.sink(),
        );
        assert!(
            (flow as usize) < inst.query_size(),
            "budget {} below optimum {} admits a full flow",
            below,
            outcome.response_time
        );
    }
}

/// Taking a disk offline can never *decrease* the optimal response time:
/// any schedule feasible without the disk is feasible with it.
#[test]
fn offline_disk_never_improves_the_optimum() {
    let mut rng = SplitMix64::seed_from_u64(0x9A7);
    let mut checked = 0;
    for _ in 0..24 {
        let n = rng.gen_range(3..6usize);
        let seed = rng.gen_range(0..500u64);
        let r = rng.gen_range(1..5usize).min(n);
        let c = rng.gen_range(1..5usize).min(n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed);
        let buckets = RangeQuery::new(0, 0, r, c).buckets(n);
        let full = RetrievalInstance::build(&system, &alloc, &buckets);
        let base = oracle_optimal_response(&full);

        let dead = rng.gen_range(0..system.num_disks());
        let health = HealthMap::with_offline(&[dead]);
        // If the outage makes some bucket unservable the comparison is
        // moot (infinite optimum — trivially not an improvement).
        let Ok(pruned) = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health)
        else {
            continue;
        };
        let worse = oracle_optimal_response(&pruned);
        assert!(
            worse >= base,
            "losing disk {dead} improved {base} to {worse}"
        );
        // The integrated solver agrees with the oracle on the pruned
        // instance too.
        assert_eq!(
            PushRelabelBinary.solve(&pruned).unwrap().response_time,
            worse
        );
        checked += 1;
    }
    assert!(checked >= 12, "too few effective cases ({checked})");
}

/// Taking a disk that serves no bucket in *some* optimal schedule offline
/// leaves the optimum unchanged: that schedule is still feasible without
/// the disk (upper bound), and fewer disks can't do better (lower bound,
/// previous property).
#[test]
fn offline_unused_disk_leaves_optimum_unchanged() {
    let mut rng = SplitMix64::seed_from_u64(0x9A8);
    let mut checked = 0;
    for _ in 0..24 {
        let n = rng.gen_range(3..6usize);
        let seed = rng.gen_range(0..500u64);
        let r = rng.gen_range(1..5usize).min(n);
        let c = rng.gen_range(1..5usize).min(n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed);
        let buckets = RangeQuery::new(0, 0, r, c).buckets(n);
        let full = RetrievalInstance::build(&system, &alloc, &buckets);
        let outcome = PushRelabelBinary.solve(&full).unwrap();
        assert_eq!(outcome.response_time, oracle_optimal_response(&full));

        let counts = outcome.schedule.per_disk_counts(system.num_disks());
        let Some(unused) = counts.iter().position(|&k| k == 0) else {
            continue;
        };
        let health = HealthMap::with_offline(&[unused]);
        let Ok(pruned) = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health)
        else {
            continue;
        };
        assert_eq!(
            oracle_optimal_response(&pruned),
            outcome.response_time,
            "losing unused disk {unused} changed the optimum"
        );
        checked += 1;
    }
    assert!(checked >= 12, "too few effective cases ({checked})");
}

/// Tentpole acceptance: `patch(build(Q_i)) → Q_{i+1}` agrees with
/// `build(Q_{i+1})` on the optimal response time for 500 random
/// overlapping query pairs, cycling through every solver kind, over
/// random systems, allocations and health maps.
#[test]
fn patched_warm_solves_match_fresh_builds_on_random_pairs() {
    let mut rng = SplitMix64::seed_from_u64(0xDE57A);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 500 {
        attempts += 1;
        assert!(attempts < 5_000, "too many infeasible cases generated");
        let kind = SolverKind::ALL[checked % SolverKind::ALL.len()];
        let basic = kind == SolverKind::FordFulkersonBasic;
        let n = rng.gen_range(4..8usize);
        let seed = rng.gen_u64();
        // FF-basic supports only the pristine uniform problem; every other
        // kind gets a random experiment and a random health map.
        let system = if basic {
            experiment(ExperimentId::Exp1, n, seed)
        } else {
            arb_system(n, seed)
        };
        let alloc = arb_alloc(n, rng.gen_u64());
        let mut health = HealthMap::all_healthy();
        if !basic {
            if rng.gen_range(0..2u64) == 0 {
                health.set(rng.gen_range(0..system.num_disks()), DiskHealth::Offline);
            }
            if rng.gen_range(0..2u64) == 0 {
                health.set(
                    rng.gen_range(0..system.num_disks()),
                    DiskHealth::Degraded {
                        load_factor: 100 + rng.gen_range(0..300) as u32,
                    },
                );
            }
        }
        // Q_i is a random window; Q_{i+1} is the same-size window shifted
        // by less than its extent, so the pair always overlaps.
        let r = rng.gen_range(1..=n.min(4));
        let c = rng.gen_range(1..=n.min(4));
        let row1 = rng.gen_range(0..=n - r);
        let col1 = rng.gen_range(0..=n - c);
        let row2 = (row1 + rng.gen_range(0..r)).min(n - r);
        let col2 = (col1 + rng.gen_range(0..c)).min(n - c);
        let q1 = RangeQuery::new(row1, col1, r, c).buckets(n);
        let q2 = RangeQuery::new(row2, col2, r, c).buckets(n);

        let solver = SolverSpec::new(kind).build();
        let policy = ReusePolicy {
            warm_start: true,
            cache_capacity: 0,
        };
        let mut warm = SessionState::with_reuse(system.num_disks(), policy);
        let mut cold = SessionState::new(system.num_disks());
        let (mut ws_w, mut ws_c) = (Workspace::new(), Workspace::new());
        let gap = if basic {
            Micros::from_millis(60_000)
        } else {
            Micros::from_millis(rng.gen_range(0..20))
        };

        let w1 = warm.submit_with_health(
            &system,
            &alloc,
            &solver,
            &mut ws_w,
            Micros::ZERO,
            &q1,
            &health,
        );
        let c1 = cold.submit_with_health(
            &system,
            &alloc,
            &solver,
            &mut ws_c,
            Micros::ZERO,
            &q1,
            &health,
        );
        match (w1, c1) {
            (Ok(w), Ok(c)) => assert_eq!(w.outcome.response_time, c.outcome.response_time),
            (Err(_), Err(_)) => continue, // infeasible under this health map
            (w, c) => panic!("warm/cold disagree on Q_i feasibility: {w:?} vs {c:?}"),
        }
        let w2 = warm.submit_with_health(&system, &alloc, &solver, &mut ws_w, gap, &q2, &health);
        let c2 = cold.submit_with_health(&system, &alloc, &solver, &mut ws_c, gap, &q2, &health);
        match (w2, c2) {
            (Ok(wo), Ok(co)) => {
                assert_eq!(
                    wo.outcome.response_time,
                    co.outcome.response_time,
                    "{} on n={n} {r}x{c} ({row1},{col1})→({row2},{col2})",
                    kind.name()
                );
                assert_eq!(wo.completion, co.completion);
                // Both queries solved, equal sizes, same health: the warm
                // session must have attempted exactly one delta.
                let counters = warm.reuse_counters();
                assert_eq!(
                    counters.delta_patches + counters.delta_fallbacks,
                    1,
                    "{}: delta not attempted",
                    kind.name()
                );
                checked += 1;
            }
            (Err(_), Err(_)) => continue,
            (w, c) => panic!("warm/cold disagree on Q_{{i+1}} feasibility: {w:?} vs {c:?}"),
        }
    }
}

/// Statistical check: RDA distributes buckets roughly evenly over many
/// seeds.
#[test]
fn rda_is_statistically_balanced() {
    let n = 12;
    let mut rng = SplitMix64::seed_from_u64(1);
    let mut worst = 0usize;
    for _ in 0..10 {
        let map = ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, rng.gen_u64()));
        for d in 0..2 * n {
            worst = worst.max(map.buckets_on_disk(d));
        }
    }
    // Expectation is n = 12 buckets per disk; a disk holding 4x that
    // would indicate a broken generator.
    assert!(worst < 4 * n, "worst disk holds {worst} buckets");
}
