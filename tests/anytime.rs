//! Anytime-solve acceptance tests: a generous [`SolveBudget`] is
//! bit-identical to an unlimited one across every solver kind, and an
//! exhausted budget still returns a feasible schedule with a reported
//! optimality gap — it never errors, never panics, never blocks.

use std::time::Duration;

use rds_util::SplitMix64;
use replicated_retrieval::core::verify::{assert_outcome_valid, oracle_optimal_response};
use replicated_retrieval::prelude::*;

fn arb_system(n: usize, seed: u64) -> SystemConfig {
    let id = ExperimentId::ALL[(seed % 5) as usize];
    experiment(id, n, seed)
}

fn arb_alloc(n: usize, seed: u64) -> ReplicaMap {
    match seed % 3 {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

/// FF-basic only supports the pristine uniform problem; every other kind
/// gets a random experiment configuration.
fn system_for(kind: SolverKind, n: usize, seed: u64) -> SystemConfig {
    if kind == SolverKind::FordFulkersonBasic {
        experiment(ExperimentId::Exp1, n, seed)
    } else {
        arb_system(n, seed)
    }
}

/// A budget far beyond what any test-sized solve needs must not change a
/// single bit of the outcome: same schedule, same response time, same
/// work counters, zero expirations.
#[test]
fn generous_budget_is_bit_identical_to_unbudgeted() {
    let mut rng = SplitMix64::seed_from_u64(0xA11F);
    let generous = SolveBudget::default()
        .with_wall_clock(Duration::from_secs(3600))
        .with_max_probes(u64::MAX / 2);
    for case in 0..56 {
        let kind = SolverKind::ALL[case % SolverKind::ALL.len()];
        let n = rng.gen_range(3..8usize);
        let seed = rng.gen_u64();
        let system = system_for(kind, n, seed);
        let alloc = arb_alloc(n, rng.gen_u64());
        let r = rng.gen_range(1..=n.min(5));
        let c = rng.gen_range(1..=n.min(5));
        let inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, r, c).buckets(n));

        // One worker thread keeps the parallel solver's work-stealing
        // discharge order (hence its push/relabel counts) deterministic,
        // so the bit-identity assertion below stays meaningful.
        let plain = SolverSpec::new(kind).parallelism(1).solve(&inst).unwrap();
        let budgeted = SolverSpec::new(kind)
            .parallelism(1)
            .budget(generous)
            .solve(&inst)
            .unwrap();

        assert_eq!(
            plain.schedule,
            budgeted.schedule,
            "{} schedule",
            kind.name()
        );
        assert_eq!(plain.response_time, budgeted.response_time);
        assert_eq!(plain.flow_value, budgeted.flow_value);
        assert_eq!(plain.stats, budgeted.stats, "{} work counters", kind.name());
        assert_eq!(budgeted.stats.budget_expirations, 0);
        assert_eq!(budgeted.stats.anytime_gap, Micros::ZERO);
    }
}

/// A zero-probe budget expires on the first check, yet every solver kind
/// still returns a complete, valid schedule whose response time bounds
/// the optimum from above, with the gap reported against a true lower
/// bound.
#[test]
fn exhausted_budget_stays_feasible_and_reports_the_gap() {
    let mut rng = SplitMix64::seed_from_u64(0xA11E);
    let exhausted = SolveBudget::default().with_max_probes(0);
    for case in 0..56 {
        let kind = SolverKind::ALL[case % SolverKind::ALL.len()];
        let n = rng.gen_range(3..8usize);
        let seed = rng.gen_u64();
        let system = system_for(kind, n, seed);
        let alloc = arb_alloc(n, rng.gen_u64());
        let r = rng.gen_range(1..=n.min(5));
        let c = rng.gen_range(1..=n.min(5));
        let inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, r, c).buckets(n));
        let optimum = oracle_optimal_response(&inst);

        let outcome = SolverSpec::new(kind)
            .budget(exhausted)
            .solve(&inst)
            .unwrap();
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.stats.budget_expirations, 1, "{}", kind.name());
        assert!(
            outcome.response_time >= optimum,
            "{}: achieved {} below the optimum {}",
            kind.name(),
            outcome.response_time,
            optimum
        );
        // The reported gap is measured against a certified lower bound,
        // so achieved − gap can never overshoot the true optimum.
        assert!(
            outcome
                .response_time
                .saturating_sub(outcome.stats.anytime_gap)
                <= optimum,
            "{}: gap {} understates achieved {} vs optimum {}",
            kind.name(),
            outcome.stats.anytime_gap,
            outcome.response_time,
            optimum
        );
    }
}

/// An expired wall-clock budget behaves like an expired probe budget:
/// feasible schedule, gap reported, no error. (Zero wall clock expires
/// deterministically at the first boundary check.)
#[test]
fn zero_wall_clock_budget_bails_to_a_feasible_schedule() {
    let budget = SolveBudget::default().with_wall_clock(Duration::ZERO);
    let alloc = OrthogonalAllocation::paper_7x7();
    let buckets = RangeQuery::new(0, 0, 5, 5).buckets(7);
    for kind in SolverKind::ALL {
        let system = system_for(kind, 7, 1);
        let inst = RetrievalInstance::build(&system, &alloc, &buckets);
        let optimum = oracle_optimal_response(&inst);
        let outcome = SolverSpec::new(kind).budget(budget).solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.stats.budget_expirations, 1, "{}", kind.name());
        assert!(outcome.response_time >= optimum, "{}", kind.name());
    }
}

/// The budget threads through the session delta path: warm-started
/// follow-up queries under a generous budget match the unbudgeted
/// session exactly, and an exhausted budget on the delta path still
/// serves every query.
#[test]
fn sessions_respect_the_armed_budget_on_the_delta_path() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let windows = [
        RangeQuery::new(0, 0, 4, 3),
        RangeQuery::new(1, 0, 4, 3),
        RangeQuery::new(2, 1, 4, 3),
        RangeQuery::new(3, 1, 4, 3),
    ];
    for kind in [
        SolverKind::PushRelabelIncremental,
        SolverKind::PushRelabelBinary,
        SolverKind::ParallelPushRelabelBinary,
    ] {
        // As above: one worker pins the work-stealing discharge order so
        // the two sessions' schedules can be compared bit-for-bit.
        let solver = SolverSpec::new(kind).warm_start(true).parallelism(1);
        let generous = SolveBudget::default().with_max_probes(u64::MAX / 2);

        let mut plain = RetrievalSession::new(&system, &alloc, solver.build());
        let mut budgeted = RetrievalSession::new(&system, &alloc, solver.build()).budget(generous);
        for q in &windows {
            let a = plain.submit(Micros::ZERO, &q.buckets(7)).unwrap();
            let b = budgeted.submit(Micros::ZERO, &q.buckets(7)).unwrap();
            assert_eq!(a.outcome.schedule, b.outcome.schedule, "{}", kind.name());
            assert_eq!(a.completion, b.completion);
            assert_eq!(b.outcome.stats.budget_expirations, 0);
        }
        assert_eq!(
            plain.reuse_counters().delta_patches,
            budgeted.reuse_counters().delta_patches,
            "{}: budget changed delta-path usage",
            kind.name()
        );

        let mut starved = RetrievalSession::new(&system, &alloc, solver.build())
            .budget(SolveBudget::default().with_max_probes(0));
        for q in &windows {
            let out = starved.submit(Micros::ZERO, &q.buckets(7)).unwrap();
            assert_eq!(out.outcome.schedule.len(), q.buckets(7).len());
            assert_eq!(out.outcome.stats.budget_expirations, 1, "{}", kind.name());
        }
    }
}

/// `BudgetExpired` reaches the trace stream with a lower bound no larger
/// than the achieved response time.
#[test]
fn budget_expiry_is_traced() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let inst = RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 5, 4).buckets(7));
    let mut ws = Workspace::new();
    ws.arm_budget(SolveBudget::default().with_max_probes(0));
    ws.install_recorder(256);
    let outcome = PushRelabelBinary.solve_in(&inst, &mut ws).unwrap();
    let recorder = ws.recorder().expect("trace feature is on by default");
    assert_eq!(recorder.count(EventKind::BudgetExpired), 1);
    let expiries: Vec<_> = recorder
        .events()
        .into_iter()
        .filter_map(|ev| match ev {
            TraceEvent::BudgetExpired {
                achieved,
                lower_bound,
            } => Some((achieved, lower_bound)),
            _ => None,
        })
        .collect();
    assert_eq!(expiries.len(), 1);
    let (achieved, lower) = expiries[0];
    assert_eq!(achieved, outcome.response_time);
    assert!(lower <= achieved);
}

/// Engines built with a budget propagate it to every shard; an exhausted
/// budget shows up in the aggregated batch stats without a single
/// failure.
#[test]
fn engine_batches_surface_budget_expirations_in_stats() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut engine = Engine::builder(&system, &alloc)
        .solver_spec(
            SolverSpec::new(SolverKind::PushRelabelBinary)
                .budget(SolveBudget::default().with_max_probes(0)),
        )
        .shards(2)
        .build();
    let queries: Vec<BatchQuery> = (0..6)
        .map(|s| BatchQuery {
            stream: s,
            arrival: Micros::ZERO,
            buckets: RangeQuery::new(0, 0, 4, 4).buckets(7),
        })
        .collect();
    let results = engine.submit_batch(&queries);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(engine.stats().solve_stats.budget_expirations, 6);
    assert!(engine.stats().solve_stats.anytime_gap >= Micros::ZERO);
}
