//! Concurrency stress tests for the serving loop's shutdown/drain
//! ordering — a hand-rolled loom equivalent: many iterations of producer
//! threads racing `ServeHandle::shutdown`, checking the exactly-once
//! resolution invariant every time. The test *finishing* is itself the
//! liveness assertion (no drain deadlock, no lost wakeup).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use replicated_retrieval::prelude::*;

fn tiny_query(k: usize) -> Vec<Bucket> {
    RangeQuery::new(k % 5, (k / 5) % 5, 1, 2).buckets(5)
}

/// Invariant checked on every race iteration: every ticket admitted
/// before the racing shutdown won resolves in exactly one response
/// (claimed or unclaimed), rejected submissions resolve in none, and the
/// counters agree.
#[test]
fn shutdown_races_never_lose_or_duplicate_a_ticket() {
    let system = SystemConfig::homogeneous(replicated_retrieval::storage::specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 12;

    for iteration in 0..60u64 {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        // Vary when the shutdown fires relative to the producers: from
        // "immediately" to "after most submissions".
        let shutdown_after = (iteration % 13) * 4;
        let counter = AtomicU64::new(0);
        let submitted_ok = &counter;

        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    s.spawn(move || {
                        let mut tickets = Vec::new();
                        for k in 0..PER_PRODUCER {
                            let req = QueryRequest::new(p, tiny_query(p * PER_PRODUCER + k));
                            match h.submit(req) {
                                Ok(t) => {
                                    submitted_ok.fetch_add(1, Ordering::Relaxed);
                                    tickets.push(t);
                                }
                                Err(Rejected::ShuttingDown) => {}
                                Err(other) => panic!("unexpected rejection: {other}"),
                            }
                        }
                        tickets
                    });
                }
                let closer = s.spawn(move || {
                    while submitted_ok.load(Ordering::Relaxed) < shutdown_after {
                        std::hint::spin_loop();
                    }
                    h.shutdown();
                });
                closer.join().unwrap();
            });
            // Claim a few responses on the caller side so both the
            // claimed and unclaimed paths are exercised.
            let mut claimed = Vec::new();
            for _ in 0..3 {
                if let Some(r) = h.try_recv() {
                    claimed.push(r.ticket);
                }
            }
            claimed
        });

        let admitted = report.stats.admitted;
        assert_eq!(
            admitted + report.stats.rejected_shutdown,
            (PRODUCERS * PER_PRODUCER) as u64,
            "iteration {iteration}: submissions must split between admitted and ShuttingDown"
        );
        assert_eq!(
            report.stats.completed, admitted,
            "iteration {iteration}: every admitted request resolves"
        );
        let mut seen: HashSet<Ticket> = HashSet::new();
        for t in report
            .output
            .iter()
            .copied()
            .chain(report.unclaimed.iter().map(|r| r.ticket))
        {
            assert!(
                seen.insert(t),
                "iteration {iteration}: duplicate ticket {t:?}"
            );
        }
        assert_eq!(
            seen.len() as u64,
            admitted,
            "iteration {iteration}: responses must cover exactly the admitted tickets"
        );
        assert_eq!(report.stats.errors, 0, "iteration {iteration}");
    }
}

/// Submissions racing the drain itself: shutdown fires while workers are
/// mid-solve with items still queued; everything already admitted must
/// still be served, and post-shutdown submissions must all bounce.
#[test]
fn drain_serves_the_backlog_admitted_before_shutdown() {
    let system = SystemConfig::homogeneous(replicated_retrieval::storage::specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    for shards in [1usize, 2, 4] {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            let mut admitted = 0u64;
            for k in 0..40usize {
                if h.submit(QueryRequest::new(k % 6, tiny_query(k))).is_ok() {
                    admitted += 1;
                }
            }
            h.shutdown();
            for k in 0..10usize {
                assert_eq!(
                    h.submit(QueryRequest::new(k, tiny_query(k))).unwrap_err(),
                    Rejected::ShuttingDown
                );
            }
            admitted
        });
        assert_eq!(
            report.output, 40,
            "{shards} shards: all pre-shutdown admitted"
        );
        assert_eq!(
            report.stats.completed, 40,
            "{shards} shards: backlog drained"
        );
        assert_eq!(report.stats.rejected_shutdown, 10);
        assert!(report.unclaimed.iter().all(|r| r.result.is_ok()));
    }
}
