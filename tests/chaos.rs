//! Chaos testing: a fifth of the disks fail mid-batch under a seeded
//! fault schedule while a buggy solver panics on selected queries — the
//! engine must contain every fault, keep serving the healthy streams, and
//! produce bit-identical results for any shard count.

use rds_util::SplitMix64;
use replicated_retrieval::core::error::EngineError;
use replicated_retrieval::core::network::RetrievalInstance;
use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::prelude::*;

const GRID: usize = 7;

fn chaos_batch(seed: u64, queries: usize, streams: usize) -> Vec<BatchQuery> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(queries);
    let mut t = 0u64;
    for _ in 0..queries {
        t += rng.gen_range(0..2_000u64);
        let r = rng.gen_range(1..4usize);
        let c = rng.gen_range(1..4usize);
        let q = RangeQuery::new(
            rng.gen_range(0..GRID),
            rng.gen_range(0..GRID),
            r.min(GRID),
            c.min(GRID),
        );
        out.push(BatchQuery {
            stream: rng.gen_range(0..streams),
            arrival: Micros::from_micros(t),
            buckets: q.buckets(GRID),
        });
    }
    out
}

/// A comparable, shard-count-independent digest of one query result.
/// `ShardFailed` carries the shard index (which legitimately depends on
/// the shard count), so it is normalized to a marker.
#[derive(Debug, PartialEq, Eq)]
enum Digest {
    Served {
        response: Micros,
        completion: Micros,
        assignments: Vec<(Bucket, usize)>,
        unservable: Vec<Bucket>,
    },
    Failed(EngineError),
    Panicked,
}

fn digest(r: &Result<SessionOutcome, EngineError>) -> Digest {
    match r {
        Ok(o) => Digest::Served {
            response: o.outcome.response_time,
            completion: o.completion,
            assignments: o.outcome.schedule.assignments().to_vec(),
            unservable: o.unservable.clone(),
        },
        Err(EngineError::ShardFailed { .. }) => Digest::Panicked,
        Err(e) => Digest::Failed(*e),
    }
}

/// A solver with an injected bug: it panics whenever the query contains
/// the poison bucket.
#[derive(Clone, Copy)]
struct Buggy {
    poison: Bucket,
}

impl RetrievalSolver for Buggy {
    fn name(&self) -> &'static str {
        "buggy"
    }
    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        assert!(!inst.buckets.contains(&self.poison), "injected solver bug");
        PushRelabelBinary.solve_in(inst, ws)
    }
}

#[test]
fn twenty_percent_outage_mid_batch_is_deterministic_and_contained() {
    let system = paper_example(); // 14 disks, two sites
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries = chaos_batch(0xC4A05, 120, 9);
    let horizon = queries.last().unwrap().arrival;

    // 20% of the disks drop dead at a third of the batch and recover at
    // two thirds; the schedule is a pure function of the seed.
    let injector = || {
        FaultInjector::random_outages(
            0xFA21,
            system.num_disks(),
            0.2,
            horizon / 3,
            Some(horizon / 3),
        )
    };
    assert_eq!(
        injector()
            .events()
            .iter()
            .filter(|e| e.health.is_offline())
            .count(),
        (system.num_disks() as f64 * 0.2).round() as usize
    );

    let run = |shards: usize| -> (Vec<Digest>, u64, u64, u64) {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards)
            .with_fault_injector(injector())
            // Probes land inside the outage for most victims (degraded
            // fallback) and past the recovery for late arrivals (retry).
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                backoff: horizon / 10,
            })
            .with_degraded_mode(true);
        let results = engine.submit_batch(&queries);
        let digests = results.iter().map(digest).collect();
        let stats = engine.stats();
        (
            digests,
            stats.degraded_solves + stats.dropped_buckets,
            stats.retries,
            stats.errors,
        )
    };

    let baseline = run(1);
    assert!(
        baseline.0.iter().all(|d| !matches!(d, Digest::Panicked)),
        "no panics expected in this scenario"
    );
    // The outage must actually bite for the test to mean anything: some
    // queries arriving mid-outage lose every replica of a bucket and are
    // answered degraded, and at least one late arrival replans across the
    // recovery.
    assert!(baseline.1 > 0, "no degraded solves — outage never bit");
    assert!(baseline.2 > 0, "no retries — recovery never replanned");
    for shards in [2usize, 3, 5, 8, 16] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }
}

/// Shard-count-independent digest of one *serving-loop* submission:
/// either a typed admission rejection or the resolved response.
#[derive(Debug, PartialEq, Eq)]
enum ServeDigest {
    Served {
        response: Micros,
        completion: Micros,
        assignments: Vec<(Bucket, usize)>,
        unservable: Vec<Bucket>,
        deadline_missed: bool,
    },
    Failed(EngineError),
    Panicked,
    Rejected(Rejected),
}

/// Satellite acceptance: the serving loop under 2x overload with a 20%
/// mid-batch disk outage resolves every submitted request to exactly one
/// of schedule / degraded partial schedule / typed rejection — no hangs,
/// no panics — and under the virtual clock the full per-submission digest
/// is identical for every shard count.
#[test]
fn serve_chaos_overload_and_outage_resolves_every_submission_deterministically() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    // Double the batch-mode chaos volume: 240 queries on 9 streams.
    let queries = chaos_batch(0x5E2E, 240, 9);
    let horizon = queries.last().unwrap().arrival;
    let injector = || {
        FaultInjector::random_outages(
            0xFA21,
            system.num_disks(),
            0.2,
            horizon / 3,
            Some(horizon / 3),
        )
    };

    let run = |shards: usize| -> (Vec<ServeDigest>, u64, u64) {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards)
            .with_fault_injector(injector())
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                backoff: horizon / 10,
            })
            .with_degraded_mode(true);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let mut req =
                        QueryRequest::new(q.stream, q.buckets.clone()).arriving_at(q.arrival);
                    if i % 5 == 0 && q.arrival > Micros::ZERO {
                        // Already-expired SLA: typed rejection at admission.
                        req = req.deadline(Micros::ZERO).class(PriorityClass::Batch);
                    } else if i % 7 == 0 {
                        // Tight-but-meetable SLA: admitted, may be missed.
                        req = req
                            .deadline(q.arrival + Micros::from_millis(40))
                            .class(PriorityClass::Interactive);
                    }
                    h.submit(req)
                })
                .collect::<Vec<Result<Ticket, Rejected>>>()
        });

        // Exactly-once: every admitted ticket appears in exactly one
        // response, and nothing else does.
        assert_eq!(
            report.stats.admitted + report.stats.rejected(),
            report.stats.submitted
        );
        assert_eq!(
            report.stats.completed, report.stats.admitted,
            "{shards} shards"
        );
        assert_eq!(report.unclaimed.len() as u64, report.stats.admitted);
        let mut by_ticket = std::collections::HashMap::new();
        for r in &report.unclaimed {
            let d = match &r.result {
                Ok(o) => ServeDigest::Served {
                    response: o.outcome.response_time,
                    completion: o.completion,
                    assignments: o.outcome.schedule.assignments().to_vec(),
                    unservable: o.unservable.clone(),
                    deadline_missed: r.deadline_missed,
                },
                Err(ServeError::Engine(EngineError::ShardFailed { .. })) => ServeDigest::Panicked,
                Err(ServeError::Engine(e)) => ServeDigest::Failed(*e),
                Err(_) => unreachable!("non-exhaustive ServeError"),
            };
            assert!(by_ticket.insert(r.ticket, d).is_none(), "duplicate ticket");
        }

        let digests = report
            .output
            .into_iter()
            .map(|sub| match sub {
                Ok(t) => by_ticket.remove(&t).expect("admitted ticket must resolve"),
                Err(rej) => ServeDigest::Rejected(rej),
            })
            .collect::<Vec<_>>();
        assert!(by_ticket.is_empty(), "responses for unknown tickets");
        (
            digests,
            report.stats.rejected_deadline,
            engine.stats().degraded_solves + engine.stats().dropped_buckets,
        )
    };

    let baseline = run(1);
    assert!(
        baseline
            .0
            .iter()
            .all(|d| !matches!(d, ServeDigest::Panicked)),
        "no panics expected in this scenario"
    );
    // The scenario must actually exercise all three resolution kinds.
    assert!(
        baseline.1 > 0,
        "no deadline rejections — admission never bit"
    );
    assert!(baseline.2 > 0, "no degraded solves — outage never bit");
    assert!(
        baseline
            .0
            .iter()
            .any(|d| matches!(d, ServeDigest::Served { .. })),
        "nothing served"
    );
    for shards in [2usize, 4] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }
}

/// Backpressure under sustained overload: with the lone worker wedged in
/// a solve, the bounded queue sheds the batch class at the watermark and
/// rejects everyone at capacity, while every admitted request still
/// resolves once the worker frees up.
#[test]
fn serve_overload_applies_queue_full_and_shed_backpressure() {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RELEASE: AtomicBool = AtomicBool::new(false);
    #[derive(Clone, Copy)]
    struct Gate;
    impl RetrievalSolver for Gate {
        fn name(&self) -> &'static str {
            "gate"
        }
        fn solve_in(
            &self,
            inst: &RetrievalInstance,
            ws: &mut Workspace,
        ) -> Result<RetrievalOutcome, SolveError> {
            while !RELEASE.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            PushRelabelBinary.solve_in(inst, ws)
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut engine = Engine::new(&system, &alloc, Gate, 1);
    let buckets = RangeQuery::new(0, 0, 2, 2).buckets(GRID);
    let report = engine.serve(
        ServeConfig::default()
            .virtual_time()
            .queue_capacity(2)
            .shed_watermark(1),
        |h| {
            h.submit(QueryRequest::new(0, buckets.clone())).unwrap();
            // Wait for the worker to take the request and wedge in Gate,
            // so subsequent depths are deterministic.
            while h.queue_depth(0) > 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            h.submit(QueryRequest::new(0, buckets.clone())).unwrap(); // depth 1
            let shed = h
                .submit(QueryRequest::new(0, buckets.clone()).class(PriorityClass::Batch))
                .unwrap_err();
            assert!(matches!(shed, Rejected::ShedLowPriority { depth: 1, .. }));
            // Interactive sails past the watermark up to capacity.
            h.submit(QueryRequest::new(0, buckets.clone()).class(PriorityClass::Interactive))
                .unwrap(); // depth 2
            let full = h.submit(QueryRequest::new(0, buckets.clone())).unwrap_err();
            assert_eq!(full, Rejected::QueueFull { shard: 0, depth: 2 });
            RELEASE.store(true, Ordering::Release);
        },
    );
    assert_eq!(report.stats.admitted, 3);
    assert_eq!(report.stats.completed, 3);
    assert_eq!(report.stats.rejected_shed, 1);
    assert_eq!(report.stats.rejected_queue_full, 1);
    assert!(report.stats.shed_rate() > 0.0);
    assert!(report.unclaimed.iter().all(|r| r.result.is_ok()));
}

#[test]
fn chaos_with_panicking_solver_keeps_healthy_streams_and_determinism() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut queries = chaos_batch(0xBEEF, 80, 7);
    let poison = Bucket::new(6, 6);
    // Make sure several queries actually contain the poison bucket.
    for q in queries.iter_mut().step_by(17) {
        if !q.buckets.contains(&poison) {
            q.buckets.push(poison);
        }
    }
    let horizon = queries.last().unwrap().arrival;
    let injector =
        || FaultInjector::random_outages(0x0DD5, system.num_disks(), 0.2, horizon / 4, None);

    let run = |shards: usize| -> Vec<Digest> {
        let mut engine = Engine::new(&system, &alloc, Buggy { poison }, shards)
            .with_fault_injector(injector())
            .with_degraded_mode(true);
        engine.submit_batch(&queries).iter().map(digest).collect()
    };

    let baseline = run(1);
    let panicked = baseline
        .iter()
        .filter(|d| matches!(d, Digest::Panicked))
        .count();
    let served = baseline
        .iter()
        .filter(|d| matches!(d, Digest::Served { .. }))
        .count();
    assert!(panicked >= 3, "poison queries must hit ({panicked})");
    assert!(served >= 40, "healthy streams must keep serving ({served})");
    for shards in [2usize, 4, 7] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }
}
