//! Chaos testing: a fifth of the disks fail mid-batch under a seeded
//! fault schedule while a buggy solver panics on selected queries — the
//! engine must contain every fault, keep serving the healthy streams, and
//! produce bit-identical results for any shard count.

use rds_util::SplitMix64;
use replicated_retrieval::core::error::EngineError;
use replicated_retrieval::core::network::RetrievalInstance;
use replicated_retrieval::core::pr::PushRelabelBinary;
use replicated_retrieval::prelude::*;

const GRID: usize = 7;

fn chaos_batch(seed: u64, queries: usize, streams: usize) -> Vec<BatchQuery> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(queries);
    let mut t = 0u64;
    for _ in 0..queries {
        t += rng.gen_range(0..2_000u64);
        let r = rng.gen_range(1..4usize);
        let c = rng.gen_range(1..4usize);
        let q = RangeQuery::new(
            rng.gen_range(0..GRID),
            rng.gen_range(0..GRID),
            r.min(GRID),
            c.min(GRID),
        );
        out.push(BatchQuery {
            stream: rng.gen_range(0..streams),
            arrival: Micros::from_micros(t),
            buckets: q.buckets(GRID),
        });
    }
    out
}

/// A comparable, shard-count-independent digest of one query result.
/// `ShardFailed` carries the shard index (which legitimately depends on
/// the shard count), so it is normalized to a marker.
#[derive(Debug, PartialEq, Eq)]
enum Digest {
    Served {
        response: Micros,
        completion: Micros,
        assignments: Vec<(Bucket, usize)>,
        unservable: Vec<Bucket>,
    },
    Failed(EngineError),
    Panicked,
}

fn digest(r: &Result<SessionOutcome, EngineError>) -> Digest {
    match r {
        Ok(o) => Digest::Served {
            response: o.outcome.response_time,
            completion: o.completion,
            assignments: o.outcome.schedule.assignments().to_vec(),
            unservable: o.unservable.clone(),
        },
        Err(EngineError::ShardFailed { .. }) => Digest::Panicked,
        Err(e) => Digest::Failed(*e),
    }
}

/// A solver with an injected bug: it panics whenever the query contains
/// the poison bucket.
#[derive(Clone, Copy)]
struct Buggy {
    poison: Bucket,
}

impl RetrievalSolver for Buggy {
    fn name(&self) -> &'static str {
        "buggy"
    }
    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        assert!(!inst.buckets.contains(&self.poison), "injected solver bug");
        PushRelabelBinary.solve_in(inst, ws)
    }
}

#[test]
fn twenty_percent_outage_mid_batch_is_deterministic_and_contained() {
    let system = paper_example(); // 14 disks, two sites
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries = chaos_batch(0xC4A05, 120, 9);
    let horizon = queries.last().unwrap().arrival;

    // 20% of the disks drop dead at a third of the batch and recover at
    // two thirds; the schedule is a pure function of the seed.
    let injector = || {
        FaultInjector::random_outages(
            0xFA21,
            system.num_disks(),
            0.2,
            horizon / 3,
            Some(horizon / 3),
        )
    };
    assert_eq!(
        injector()
            .events()
            .iter()
            .filter(|e| e.health.is_offline())
            .count(),
        (system.num_disks() as f64 * 0.2).round() as usize
    );

    let run = |shards: usize| -> (Vec<Digest>, u64, u64, u64) {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards)
            .with_fault_injector(injector())
            // Probes land inside the outage for most victims (degraded
            // fallback) and past the recovery for late arrivals (retry).
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                backoff: horizon / 10,
            })
            .with_degraded_mode(true);
        let results = engine.submit_batch(&queries);
        let digests = results.iter().map(digest).collect();
        let stats = engine.stats();
        (
            digests,
            stats.degraded_solves + stats.dropped_buckets,
            stats.retries,
            stats.errors,
        )
    };

    let baseline = run(1);
    assert!(
        baseline.0.iter().all(|d| !matches!(d, Digest::Panicked)),
        "no panics expected in this scenario"
    );
    // The outage must actually bite for the test to mean anything: some
    // queries arriving mid-outage lose every replica of a bucket and are
    // answered degraded, and at least one late arrival replans across the
    // recovery.
    assert!(baseline.1 > 0, "no degraded solves — outage never bit");
    assert!(baseline.2 > 0, "no retries — recovery never replanned");
    for shards in [2usize, 3, 5, 8, 16] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }
}

#[test]
fn chaos_with_panicking_solver_keeps_healthy_streams_and_determinism() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut queries = chaos_batch(0xBEEF, 80, 7);
    let poison = Bucket::new(6, 6);
    // Make sure several queries actually contain the poison bucket.
    for q in queries.iter_mut().step_by(17) {
        if !q.buckets.contains(&poison) {
            q.buckets.push(poison);
        }
    }
    let horizon = queries.last().unwrap().arrival;
    let injector =
        || FaultInjector::random_outages(0x0DD5, system.num_disks(), 0.2, horizon / 4, None);

    let run = |shards: usize| -> Vec<Digest> {
        let mut engine = Engine::new(&system, &alloc, Buggy { poison }, shards)
            .with_fault_injector(injector())
            .with_degraded_mode(true);
        engine.submit_batch(&queries).iter().map(digest).collect()
    };

    let baseline = run(1);
    let panicked = baseline
        .iter()
        .filter(|d| matches!(d, Digest::Panicked))
        .count();
    let served = baseline
        .iter()
        .filter(|d| matches!(d, Digest::Served { .. }))
        .count();
    assert!(panicked >= 3, "poison queries must hit ({panicked})");
    assert!(served >= 40, "healthy streams must keep serving ({served})");
    for shards in [2usize, 4, 7] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }
}
