//! Cross-algorithm agreement: the paper's own validation methodology.
//!
//! §VI-F: "For every experiment we performed, we compared the total
//! optimal response time values of these 1000 queries for each algorithm
//! we tested and found out that the results are matching." This suite
//! performs the same check across every solver pairing, experiment,
//! allocation scheme, query type and load — plus an independent optimum
//! oracle on the smaller instances.

use rds_util::SplitMix64;
use replicated_retrieval::core::blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel};
use replicated_retrieval::core::ff::FordFulkersonIncremental;
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::{PushRelabelBinary, PushRelabelIncremental};
use replicated_retrieval::core::verify::{assert_outcome_valid, oracle_optimal_response};
use replicated_retrieval::prelude::*;

fn solvers() -> Vec<Box<dyn RetrievalSolver>> {
    vec![
        Box::new(FordFulkersonIncremental),
        Box::new(PushRelabelIncremental),
        Box::new(PushRelabelBinary),
        Box::new(BlackBoxPushRelabel),
        Box::new(BlackBoxFordFulkerson),
        Box::new(ParallelPushRelabelBinary::new(2)),
    ]
}

fn build_alloc(scheme: usize, n: usize, seed: u64) -> ReplicaMap {
    match scheme {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

/// Every solver returns the same optimal response time, which matches the
/// independent oracle.
#[test]
fn all_solvers_agree_and_match_oracle_on_small_instances() {
    let mut rng = SplitMix64::seed_from_u64(11);
    let solvers = solvers();
    for case in 0..12 {
        let exp = ExperimentId::ALL[case % 5];
        let n = rng.gen_range(3..7);
        let system = experiment(exp, n, rng.gen_u64());
        let alloc = build_alloc(case % 3, n, rng.gen_u64());
        let q = RangeQuery::new(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(1..=n),
            rng.gen_range(1..=n),
        );
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let want = oracle_optimal_response(&inst);
        for solver in &solvers {
            let outcome = solver.solve(&inst).unwrap();
            assert_outcome_valid(&inst, &outcome);
            assert_eq!(
                outcome.response_time,
                want,
                "solver {} on case {case} ({exp:?}, n={n}, q={:?})",
                solver.name(),
                q
            );
        }
    }
}

/// Larger instances: solvers agree with each other (oracle too slow).
#[test]
fn solvers_agree_on_medium_instances_across_loads() {
    let mut rng = SplitMix64::seed_from_u64(99);
    let solvers = solvers();
    for (kind, load) in [
        (QueryKind::Range, Load::Load1),
        (QueryKind::Arbitrary, Load::Load2),
        (QueryKind::Arbitrary, Load::Load3),
    ] {
        let n = 12;
        let system = experiment(ExperimentId::Exp5, n, rng.gen_u64());
        let alloc = build_alloc(rng.gen_range(0..3), n, rng.gen_u64());
        let mut gen = QueryGenerator::new(n, kind, load, rng.gen_u64());
        for _ in 0..4 {
            let q = gen.next_query();
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let reference = solvers[0].solve(&inst).unwrap().response_time;
            for solver in &solvers[1..] {
                assert_eq!(
                    solver.solve(&inst).unwrap().response_time,
                    reference,
                    "{} vs {} ({kind:?}, {load:?})",
                    solver.name(),
                    solvers[0].name()
                );
            }
        }
    }
}

/// The basic problem (Experiment 1) through the generalized solvers and
/// the basic Ford-Fulkerson all coincide.
#[test]
fn basic_problem_agreement_includes_algorithm_1() {
    use replicated_retrieval::core::ff::FordFulkersonBasic;
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..6 {
        let n = rng.gen_range(3..8);
        let system = experiment(ExperimentId::Exp1, n, rng.gen_u64());
        let alloc = build_alloc(rng.gen_range(0..3), n, rng.gen_u64());
        let q = RangeQuery::new(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(1..=n),
            rng.gen_range(1..=n),
        );
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let basic = FordFulkersonBasic.solve(&inst).unwrap();
        let binary = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(basic.response_time, binary.response_time);
        assert_outcome_valid(&inst, &basic);
    }
}

/// Cross-query delta-solving never costs optimality: for every
/// [`SolverKind`], a warm-start session that patches Q_i → Q_{i+1}
/// stays optimal at every step, per the independent oracle evaluated on
/// the loaded system the session presented the solver with. (Optimal
/// schedules are not unique, so a patched and a fresh network may leave
/// different loads behind — per-step optimality is the invariant that
/// must survive.) Kinds whose solver cannot resume report
/// `DeltaUnsupported` and transparently fall back to a full solve on the
/// patched network — never a wrong answer.
#[test]
fn warm_delta_sessions_stay_optimal_per_step_for_every_kind() {
    use replicated_retrieval::storage::model::Disk;

    let mut rng = SplitMix64::seed_from_u64(0xD317A);
    let n = 8;
    for kind in SolverKind::ALL {
        // FF-basic handles only the pristine uniform problem: give it the
        // uniform experiment and arrival gaps long enough that the load
        // feedback has always drained to zero.
        let (exp, gap) = if kind == SolverKind::FordFulkersonBasic {
            (ExperimentId::Exp1, Micros::from_millis(60_000))
        } else {
            (ExperimentId::Exp5, Micros::from_millis(2))
        };
        let system = experiment(exp, n, rng.gen_u64());
        let alloc = build_alloc(rng.gen_range(0..3), n, rng.gen_u64());
        let policy = ReusePolicy {
            warm_start: true,
            cache_capacity: 0,
        };
        let mut warm =
            RetrievalSession::with_reuse(&system, &alloc, SolverSpec::new(kind).build(), policy);
        let mut arrival = Micros::ZERO;
        for step in 0..6usize {
            // Slide a fixed 3x4 window one row per query: equal sizes and
            // a 2/3 bucket overlap, exactly the shape the patch targets.
            let q = RangeQuery::new(step % (n - 2), 0, 3, 4).buckets(n);
            // Reconstruct, through the public API, the loaded system the
            // session is about to solve against.
            let loaded: Vec<Disk> = (0..system.num_disks())
                .map(|j| Disk {
                    initial_load: system.disk(j).initial_load
                        + (warm.current_load(j) + warm.now()).saturating_sub(arrival),
                    ..*system.disk(j)
                })
                .collect();
            let loaded_system = SystemConfig::new(vec![Site {
                name: "loaded".into(),
                disks: loaded,
            }]);
            let want =
                oracle_optimal_response(&RetrievalInstance::build(&loaded_system, &alloc, &q));
            let w = warm.submit(arrival, &q).unwrap();
            assert_eq!(w.outcome.response_time, want, "{} step {step}", kind.name());
            arrival += gap;
        }
        let counters = warm.reuse_counters();
        assert!(
            counters.delta_patches + counters.delta_fallbacks >= 1,
            "{}: warm session never attempted a delta",
            kind.name()
        );
        if kind.supports_delta() {
            assert_eq!(counters.delta_fallbacks, 0, "{}", kind.name());
        } else {
            assert_eq!(counters.delta_patches, 0, "{}", kind.name());
        }
    }
}

/// Sum over a batch (the paper's exact validation quantity).
#[test]
fn total_response_over_query_batch_matches() {
    let n = 10;
    let system = experiment(ExperimentId::Exp4, n, 3);
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
    let mut gen = QueryGenerator::new(n, QueryKind::Arbitrary, Load::Load1, 17);
    let queries: Vec<_> = (0..10).map(|_| gen.next_query()).collect();

    let total = |solver: &dyn RetrievalSolver| -> Micros {
        queries
            .iter()
            .map(|q| {
                let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
                solver.solve(&inst).unwrap().response_time
            })
            .sum()
    };

    let reference = total(&PushRelabelBinary);
    assert!(reference > Micros::ZERO);
    assert_eq!(total(&BlackBoxPushRelabel), reference);
    assert_eq!(total(&FordFulkersonIncremental), reference);
    assert_eq!(total(&ParallelPushRelabelBinary::new(2)), reference);
}
