//! Session and engine behaviour over the paper's heterogeneous Table II
//! system (14 disks, two sites, mixed specs, per-disk delays and loads):
//! every generalized solver must agree through `solve_in`, and the batch
//! engine must be deterministic in its shard count.

use replicated_retrieval::core::blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel};
use replicated_retrieval::core::ff::FordFulkersonIncremental;
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::{PushRelabelBinary, PushRelabelIncremental};
use replicated_retrieval::prelude::*;

fn generalized_solvers() -> Vec<Box<dyn RetrievalSolver + Sync>> {
    vec![
        Box::new(PushRelabelBinary),
        Box::new(PushRelabelIncremental),
        Box::new(FordFulkersonIncremental),
        Box::new(BlackBoxPushRelabel),
        Box::new(BlackBoxFordFulkerson),
        Box::new(ParallelPushRelabelBinary::new(2)),
    ]
}

/// One shared workspace, every solver, several queries on the Table II
/// system: identical optimal response times across the board.
#[test]
fn all_solvers_agree_through_solve_in_on_table_ii() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let solvers = generalized_solvers();
    let mut ws = Workspace::new();
    for (r, c) in [(3usize, 2usize), (7, 7), (1, 1), (5, 3), (2, 6)] {
        let q = RangeQuery::new(1, 0, r, c);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let reference = solvers[0].solve_in(&inst, &mut ws).unwrap().response_time;
        for solver in &solvers[1..] {
            let got = solver.solve_in(&inst, &mut ws).unwrap().response_time;
            assert_eq!(got, reference, "{} on {r}x{c}", solver.name());
        }
    }
    // 6 solvers x 5 queries, all through the one workspace.
    assert_eq!(ws.solves(), 30);
}

/// A session run with each solver on the Table II system: every
/// submission is optimal for the loaded system the session presented it
/// with. (The *traces* may differ between solvers — optimal schedules are
/// not unique, so the load left behind is not — but optimality per step
/// must hold for all of them.)
#[test]
fn sessions_stay_optimal_per_step_on_table_ii() {
    use replicated_retrieval::core::verify::oracle_optimal_response;
    use replicated_retrieval::storage::model::Disk;

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries: Vec<(Micros, Vec<Bucket>)> =
        [(0u64, (3, 2)), (2, (2, 2)), (2, (7, 7)), (9, (1, 4))]
            .iter()
            .map(|&(ms, (r, c))| {
                (
                    Micros::from_millis(ms),
                    RangeQuery::new(0, 0, r, c).buckets(7),
                )
            })
            .collect();

    for solver in generalized_solvers() {
        let mut session = RetrievalSession::new(&system, &alloc, solver);
        for (arrival, buckets) in &queries {
            // Reconstruct, through the public API, the loaded system the
            // session is about to solve against: busy_until[j] is
            // current_load(j) + now, so the load at `arrival` is the
            // amount of it that has not yet drained.
            let loaded: Vec<Disk> = (0..system.num_disks())
                .map(|j| Disk {
                    initial_load: system.disk(j).initial_load
                        + (session.current_load(j) + session.now()).saturating_sub(*arrival),
                    ..*system.disk(j)
                })
                .collect();
            let loaded_system = SystemConfig::new(vec![Site {
                name: "loaded".into(),
                disks: loaded,
            }]);
            let want =
                oracle_optimal_response(&RetrievalInstance::build(&loaded_system, &alloc, buckets));
            let out = session.submit(*arrival, buckets).unwrap();
            assert_eq!(out.outcome.response_time, want);
        }
    }
}

/// Engine output over Table II is bit-identical for any shard count, and
/// matches a plain single-stream session where streams coincide.
#[test]
fn engine_is_deterministic_across_shard_counts_on_table_ii() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let mut queries = Vec::new();
    for k in 0..5u64 {
        for s in 0..7usize {
            let q = RangeQuery::new(s % 7, (k as usize) % 7, 1 + s % 3, 1 + (k as usize) % 4);
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros::from_millis(k),
                buckets: q.buckets(7),
            });
        }
    }
    let run = |shards: usize| -> Vec<(Micros, Micros)> {
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
        engine
            .submit_batch(&queries)
            .into_iter()
            .map(|r| {
                let o = r.unwrap();
                (o.outcome.response_time, o.completion)
            })
            .collect()
    };
    let baseline = run(1);
    for shards in [2usize, 3, 5, 16] {
        assert_eq!(run(shards), baseline, "{shards} shards");
    }

    // Stream 0's sub-trace matches a standalone session fed the same
    // queries.
    let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
    for (q, &(rt, completion)) in queries.iter().zip(&baseline).filter(|(q, _)| q.stream == 0) {
        let out = session.submit(q.arrival, &q.buckets).unwrap();
        assert_eq!(out.outcome.response_time, rt);
        assert_eq!(out.completion, completion);
    }
}

/// Malformed input through the public API returns errors, never panics.
#[test]
fn malformed_input_is_an_error_not_a_panic() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let b = RangeQuery::new(0, 0, 1, 1).buckets(7);

    // Non-monotone arrivals on one stream.
    let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
    let mk = |ms: u64| BatchQuery {
        stream: 0,
        arrival: Micros::from_millis(ms),
        buckets: b.clone(),
    };
    let results = engine.submit_batch(&[mk(10), mk(3)]);
    assert!(results[0].is_ok());
    assert!(matches!(
        results[1],
        Err(EngineError::Session(
            SessionError::NonMonotoneArrival { .. }
        ))
    ));

    // FF-basic's precondition violation (heterogeneous Table II system).
    let err = FordFulkersonBasic
        .solve(&RetrievalInstance::build(&system, &alloc, &b))
        .unwrap_err();
    assert!(matches!(err, SolveError::UnsupportedSystem { .. }));
}
