//! Layout-equivalence suite for the CSR residual arena.
//!
//! The flow graph's adjacency layout changed from per-vertex `Vec<Vec<u32>>`
//! lists to a compressed-sparse-row arena. Every solver's traversal order —
//! and therefore its exact push/relabel/augment counts — must be unchanged:
//! the CSR finalize step is a *stable* counting sort, so `out_edges(v)` must
//! enumerate exactly the edge slots the legacy layout appended, in the same
//! order (ascending slot id, since slots are allocated in insertion order).
//!
//! `GOLDEN` below is an FNV-1a digest of `(response_time, flow_value,
//! pushes, relabels, dfs_calls, probes, increments, resume_calls,
//! maxflow_calls)` for all seven `SolverKind`s over 200 seeded random
//! instances, captured on the pre-CSR adjacency-of-Vecs layout. A digest
//! mismatch means some solver visited edges in a different order than it
//! did on the legacy layout.

use rds_util::SplitMix64;
use replicated_retrieval::core::spec::{ArenaLayout, SolverKind, SolverSpec};
use replicated_retrieval::core::verify::oracle_optimal_response;
use replicated_retrieval::prelude::*;

/// Digest of per-instance outcomes on the legacy `Vec<Vec<u32>>` layout
/// (seed 0xC5A, 200 instances, all seven kinds, single-threaded parallel
/// solver). Captured before the CSR rewrite; must never drift.
const GOLDEN: u64 = 0x6ecdd97cd44fd538;

fn arb_system(n: usize, seed: u64) -> SystemConfig {
    experiment(ExperimentId::ALL[(seed % 5) as usize], n, seed)
}

fn arb_alloc(n: usize, seed: u64) -> ReplicaMap {
    match seed % 3 {
        0 => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
        1 => ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite)),
        _ => ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite)),
    }
}

fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The legacy layout stored, for each vertex, the edge slots it owns in
/// insertion order — which is ascending slot id, because slots are numbered
/// in the order `add_edge` allocates them. The CSR arena must present the
/// identical enumeration for traversal order (and thus operation counts)
/// to be preserved.
fn assert_legacy_adjacency_order(g: &replicated_retrieval::flow::FlowGraph) {
    let mut legacy: Vec<Vec<u32>> = vec![Vec::new(); g.num_vertices()];
    for e in 0..g.num_edge_slots() {
        legacy[g.source(e)].push(e as u32);
    }
    for (v, slots) in legacy.iter().enumerate() {
        assert_eq!(
            g.out_edges(v),
            slots.as_slice(),
            "vertex {v}: CSR adjacency differs from legacy insertion order"
        );
    }
}

/// Runs the full 200-instance × 7-kind sweep with the arena width forced
/// to `layout`, returning the FNV-1a outcome digest and the solve count.
/// Both widths must reproduce [`GOLDEN`] bit-for-bit: the monomorphized
/// `i32` arena changes only the storage width of the capacity/flow
/// arrays, never the adjacency enumeration or the traversal order.
fn layout_digest(layout: ArenaLayout) -> (u64, usize) {
    let mut rng = SplitMix64::seed_from_u64(0xC5A);
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut solved = 0usize;
    let mut instances = 0usize;
    while instances < 200 {
        let n = rng.gen_range(3..7usize);
        let seed = rng.gen_range(0..1000u64);
        let r = rng.gen_range(1..5usize).min(n);
        let c = rng.gen_range(1..5usize).min(n);
        let row = rng.gen_range(0..n);
        let col = rng.gen_range(0..n);
        let system = arb_system(n, seed);
        let alloc = arb_alloc(n, seed.wrapping_add(3));
        let q = RangeQuery::new(row.min(n - r), col.min(n - c), r, c);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        // FF-basic supports only the pristine uniform problem; give it an
        // Exp1 system over the same allocation and query.
        let basic_inst = RetrievalInstance::build(
            &experiment(ExperimentId::Exp1, n, seed),
            &alloc,
            &q.buckets(n),
        );
        instances += 1;

        assert_legacy_adjacency_order(&inst.graph);
        let want = oracle_optimal_response(&inst);
        let want_basic = oracle_optimal_response(&basic_inst);

        for kind in SolverKind::ALL {
            let (inst, want) = if kind == SolverKind::FordFulkersonBasic {
                (&basic_inst, want_basic)
            } else {
                (&inst, want)
            };
            // One worker thread keeps the parallel solver's discharge order
            // (hence its push/relabel counts) deterministic. Solving via
            // the spec (not the built `AnySolver`) is what carries the
            // forced arena layout into the workspace.
            let spec = SolverSpec::new(kind).parallelism(1).arena_layout(layout);
            let a = spec.solve(inst).expect("feasible instance");
            let b = spec.solve(inst).expect("feasible instance");
            assert_eq!(a.response_time, want, "{} lost optimality", kind.name());
            assert_eq!(a.response_time, b.response_time);
            assert_eq!(a.stats, b.stats, "{} solve not deterministic", kind.name());
            assert_eq!(
                a.stats.arena_layout,
                layout,
                "{} ran the wrong width",
                kind.name()
            );
            for word in [
                a.response_time.0,
                a.flow_value,
                a.stats.pushes,
                a.stats.relabels,
                a.stats.dfs_calls,
                a.stats.probes,
                a.stats.increments,
                a.stats.resume_calls,
                a.stats.maxflow_calls,
            ] {
                digest = fnv1a(digest, word);
            }
            solved += 1;
        }
    }
    (digest, solved)
}

/// CSR and legacy traversal orders yield identical max-flow values and
/// identical `SolveStats` operation counts for all seven `SolverKind`s on
/// 200 random instances, on the wide (`i64`) arena.
#[test]
fn all_solver_kinds_match_legacy_layout_on_random_instances() {
    let (digest, solved) = layout_digest(ArenaLayout::Wide);
    assert_eq!(solved, 200 * SolverKind::ALL.len());
    assert_eq!(
        digest, GOLDEN,
        "wide-arena outcome digest drifted from the legacy layout: got {digest:#x}"
    );
}

/// The compact (`i32`) arena reproduces the identical golden digest: width
/// monomorphization must not perturb traversal order or operation counts.
#[test]
fn compact_arena_matches_legacy_layout_digest() {
    let (digest, solved) = layout_digest(ArenaLayout::Compact);
    assert_eq!(solved, 200 * SolverKind::ALL.len());
    assert_eq!(
        digest, GOLDEN,
        "compact-arena outcome digest drifted from the legacy layout: got {digest:#x}"
    );
}
