//! Degenerate and adversarial instances: the solvers must stay correct at
//! the edges of the model.

use replicated_retrieval::core::blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel};
use replicated_retrieval::core::ff::FordFulkersonIncremental;
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::{PushRelabelBinary, PushRelabelIncremental};
use replicated_retrieval::core::verify::{
    assert_outcome_valid, assert_partial_outcome_valid, oracle_optimal_response,
};
use replicated_retrieval::decluster::allocation::Replicas;
use replicated_retrieval::prelude::*;
use replicated_retrieval::storage::specs;

/// Every generalized solver (FF-basic is exercised separately — it only
/// accepts homogeneous unloaded instances).
fn generalized_solvers() -> Vec<Box<dyn RetrievalSolver>> {
    vec![
        Box::new(PushRelabelBinary),
        Box::new(PushRelabelIncremental),
        Box::new(FordFulkersonIncremental),
        Box::new(BlackBoxPushRelabel),
        Box::new(BlackBoxFordFulkerson),
        Box::new(ParallelPushRelabelBinary::new(2)),
    ]
}

/// Single-replica allocation forcing every bucket onto one disk: the
/// worst case the paper's complexity analysis cites (O(|Q|) increments).
struct AllOnOneDisk {
    n: usize,
}

impl ReplicaSource for AllOnOneDisk {
    fn grid_size(&self) -> usize {
        self.n
    }
    fn num_disks(&self) -> usize {
        self.n
    }
    fn replicas(&self, _b: Bucket) -> Replicas {
        Replicas::from_slice(&[0])
    }
}

#[test]
fn all_buckets_on_a_single_disk() {
    let n = 5;
    let system = SystemConfig::homogeneous(specs::CHEETAH, n);
    let q = RangeQuery::new(0, 0, n, n); // all 25 buckets
    let inst = RetrievalInstance::build(&system, &AllOnOneDisk { n }, &q.buckets(n));
    for solver in [
        &PushRelabelBinary as &dyn RetrievalSolver,
        &PushRelabelIncremental,
        &FordFulkersonIncremental,
        &BlackBoxPushRelabel,
    ] {
        let outcome = solver.solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        // 25 buckets serially from one cheetah: 25 * 6.1ms.
        assert_eq!(
            outcome.response_time,
            Micros::from_tenths_ms(61) * 25,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn single_disk_system() {
    let system = SystemConfig::homogeneous(specs::VERTEX, 1);
    struct One;
    impl ReplicaSource for One {
        fn grid_size(&self) -> usize {
            1
        }
        fn num_disks(&self) -> usize {
            1
        }
        fn replicas(&self, _b: Bucket) -> Replicas {
            Replicas::from_slice(&[0])
        }
    }
    let inst = RetrievalInstance::build(&system, &One, &[Bucket::new(0, 0)]);
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(5));
}

#[test]
fn extreme_initial_load_shifts_schedule() {
    // Two disks, both hold every bucket; one is super fast but massively
    // loaded — the optimum splits or avoids it.
    struct Both;
    impl ReplicaSource for Both {
        fn grid_size(&self) -> usize {
            2
        }
        fn num_disks(&self) -> usize {
            2
        }
        fn replicas(&self, _b: Bucket) -> Replicas {
            Replicas::from_slice(&[0, 1])
        }
    }
    let system = SystemConfig::builder()
        .site("s")
        // 0.2ms per bucket, but massively loaded.
        .disk_with(specs::X25_E, Micros::ZERO, Micros::from_millis(60))
        .disk(specs::BARRACUDA) // 13.2ms per bucket
        .build();
    let q = RangeQuery::new(0, 0, 2, 2); // 4 buckets
    let inst = RetrievalInstance::build(&system, &Both, &q.buckets(2));
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    // All 4 on the barracuda: 52.8ms; all 4 on the loaded SSD: 60.8ms;
    // optimal splits 3 (39.6) / 1 (60.2)... no: 60.2 > 52.8. Best is all
    // on the barracuda.
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(528));
}

#[test]
fn zero_cost_is_rejected_by_model() {
    // The model requires positive per-bucket cost (division by C); all
    // shipped specs are positive.
    for spec in specs::ALL_DISKS {
        assert!(spec.access_time > Micros::ZERO);
    }
}

#[test]
fn empty_query_across_all_solvers() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let inst = RetrievalInstance::build(&system, &alloc, &[]);
    for solver in [
        &PushRelabelBinary as &dyn RetrievalSolver,
        &PushRelabelIncremental,
        &FordFulkersonIncremental,
        &BlackBoxPushRelabel,
        &ParallelPushRelabelBinary::new(2),
    ] {
        let outcome = solver.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 0, "{}", solver.name());
        assert_eq!(outcome.response_time, Micros::ZERO);
    }
}

#[test]
fn full_grid_query_on_every_experiment() {
    for id in ExperimentId::ALL {
        let n = 5;
        let system = experiment(id, n, 9);
        let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
        let q = RangeQuery::new(0, 0, n, n);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let a = PushRelabelBinary.solve(&inst).unwrap();
        let b = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(a.response_time, b.response_time, "{id:?}");
        assert_outcome_valid(&inst, &a);
    }
}

#[test]
fn duplicate_buckets_in_query_are_distinct_vertices() {
    // The network builder takes the bucket list as-is; a caller passing
    // the same bucket twice retrieves it twice (two units of flow).
    let system = SystemConfig::homogeneous(specs::CHEETAH, 4);
    let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
    let b = Bucket::new(1, 1);
    let inst = RetrievalInstance::build(&system, &alloc, &[b, b]);
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.flow_value, 2);
    assert_outcome_valid(&inst, &outcome);
}

#[test]
fn offline_replicas_reroute_for_every_solver() {
    // Take one replica disk of a single-bucket query offline: every
    // solver must route to the surviving replica and stay optimal for
    // the pruned instance.
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let buckets = RangeQuery::new(2, 3, 2, 2).buckets(7);
    let dead = alloc.replicas(buckets[0]).iter().next().unwrap();
    let health = HealthMap::with_offline(&[dead]);
    let inst = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health).unwrap();
    let want = oracle_optimal_response(&inst);
    for solver in generalized_solvers() {
        let outcome = solver.solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.response_time, want, "{}", solver.name());
        assert!(
            outcome
                .schedule
                .assignments()
                .iter()
                .all(|&(_, d)| d != dead),
            "{} used the offline disk",
            solver.name()
        );
    }
}

#[test]
fn all_replicas_down_is_typed_infeasibility_for_every_solver() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let buckets = RangeQuery::new(0, 0, 1, 1).buckets(7);
    let dead: Vec<usize> = alloc.replicas(buckets[0]).iter().collect();
    let health = HealthMap::with_offline(&dead);

    // Building the instance reports the dead bucket...
    let err = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health).unwrap_err();
    assert_eq!(err.bucket, buckets[0]);

    // ...and a strict session submit surfaces it as SolveError::Infeasible
    // for every solver, without poisoning the session.
    for solver in generalized_solvers() {
        let mut state = SessionState::new(system.num_disks());
        let mut ws = Workspace::new();
        let err = state
            .submit_with_health(
                &system,
                &alloc,
                solver.as_ref(),
                &mut ws,
                Micros::ZERO,
                &buckets,
                &health,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Solve(SolveError::Infeasible {
                bucket: Some(buckets[0]),
                delivered: 0,
                required: 1,
            }),
            "{}",
            solver.name()
        );
        // The session stays usable: the same query under full health.
        let ok = state
            .submit_with(
                &system,
                &alloc,
                solver.as_ref(),
                &mut ws,
                Micros::ZERO,
                &buckets,
            )
            .unwrap();
        assert_eq!(ok.outcome.flow_value, 1);
    }
}

#[test]
fn solve_degraded_serves_the_survivors_for_every_solver() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let buckets = RangeQuery::new(0, 0, 2, 3).buckets(7);
    // Kill every replica of one bucket, one replica of another.
    let mut dead: Vec<usize> = alloc.replicas(buckets[1]).iter().collect();
    dead.push(alloc.replicas(buckets[4]).iter().next().unwrap());
    let health = HealthMap::with_offline(&dead);

    for solver in generalized_solvers() {
        let mut ws = Workspace::new();
        let partial = replicated_retrieval::core::fault::solve_degraded(
            solver.as_ref(),
            &system,
            &alloc,
            &buckets,
            &health,
            &mut ws,
        )
        .unwrap();
        assert_partial_outcome_valid(&system, &alloc, &health, &buckets, &partial);
        assert!(!partial.is_complete(), "{}", solver.name());
        assert!(partial.unservable.contains(&buckets[1]));
        assert_eq!(partial.served() + partial.dropped(), buckets.len());
    }
}

#[test]
fn degraded_disk_breaks_ff_basic_homogeneity() {
    // A Degraded health entry inflates one disk's cost, so FF-basic's
    // homogeneous-system precondition fails — as UnsupportedSystem, not a
    // wrong schedule.
    let system = SystemConfig::homogeneous(specs::CHEETAH, 5);
    let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
    let buckets = RangeQuery::new(0, 0, 1, 3).buckets(5);
    let mut health = HealthMap::all_healthy();
    health.set(2, DiskHealth::Degraded { load_factor: 250 });
    let inst = RetrievalInstance::build_with_health(&system, &alloc, &buckets, &health).unwrap();
    assert!(matches!(
        FordFulkersonBasic.solve(&inst),
        Err(SolveError::UnsupportedSystem { .. })
    ));
    // The generalized solvers absorb the degradation and stay optimal.
    let want = oracle_optimal_response(&inst);
    for solver in generalized_solvers() {
        assert_eq!(
            solver.solve(&inst).unwrap().response_time,
            want,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn huge_network_delay_dominates() {
    // A site so distant that even its SSDs lose to local HDDs.
    let far_delay = Micros::from_millis(1_000);
    let system = SystemConfig::builder()
        .site("local")
        .disks(specs::BARRACUDA, 3)
        .site("far")
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .build();
    let alloc = ReplicaMap::build(&DependentPeriodicAllocation::new(3, Placement::PerSite));
    let q = RangeQuery::new(0, 0, 3, 3);
    let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(3));
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    let counts = outcome.schedule.per_disk_counts(6);
    let far_total: u64 = counts[3..].iter().sum();
    assert_eq!(far_total, 0, "distant site must be unused");
}
