//! Degenerate and adversarial instances: the solvers must stay correct at
//! the edges of the model.

use replicated_retrieval::core::blackbox::BlackBoxPushRelabel;
use replicated_retrieval::core::ff::FordFulkersonIncremental;
use replicated_retrieval::core::parallel::ParallelPushRelabelBinary;
use replicated_retrieval::core::pr::{PushRelabelBinary, PushRelabelIncremental};
use replicated_retrieval::core::verify::{assert_outcome_valid, oracle_optimal_response};
use replicated_retrieval::decluster::allocation::Replicas;
use replicated_retrieval::prelude::*;
use replicated_retrieval::storage::specs;

/// Single-replica allocation forcing every bucket onto one disk: the
/// worst case the paper's complexity analysis cites (O(|Q|) increments).
struct AllOnOneDisk {
    n: usize,
}

impl ReplicaSource for AllOnOneDisk {
    fn grid_size(&self) -> usize {
        self.n
    }
    fn num_disks(&self) -> usize {
        self.n
    }
    fn replicas(&self, _b: Bucket) -> Replicas {
        Replicas::from_slice(&[0])
    }
}

#[test]
fn all_buckets_on_a_single_disk() {
    let n = 5;
    let system = SystemConfig::homogeneous(specs::CHEETAH, n);
    let q = RangeQuery::new(0, 0, n, n); // all 25 buckets
    let inst = RetrievalInstance::build(&system, &AllOnOneDisk { n }, &q.buckets(n));
    for solver in [
        &PushRelabelBinary as &dyn RetrievalSolver,
        &PushRelabelIncremental,
        &FordFulkersonIncremental,
        &BlackBoxPushRelabel,
    ] {
        let outcome = solver.solve(&inst).unwrap();
        assert_outcome_valid(&inst, &outcome);
        // 25 buckets serially from one cheetah: 25 * 6.1ms.
        assert_eq!(
            outcome.response_time,
            Micros::from_tenths_ms(61) * 25,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn single_disk_system() {
    let system = SystemConfig::homogeneous(specs::VERTEX, 1);
    struct One;
    impl ReplicaSource for One {
        fn grid_size(&self) -> usize {
            1
        }
        fn num_disks(&self) -> usize {
            1
        }
        fn replicas(&self, _b: Bucket) -> Replicas {
            Replicas::from_slice(&[0])
        }
    }
    let inst = RetrievalInstance::build(&system, &One, &[Bucket::new(0, 0)]);
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(5));
}

#[test]
fn extreme_initial_load_shifts_schedule() {
    // Two disks, both hold every bucket; one is super fast but massively
    // loaded — the optimum splits or avoids it.
    struct Both;
    impl ReplicaSource for Both {
        fn grid_size(&self) -> usize {
            2
        }
        fn num_disks(&self) -> usize {
            2
        }
        fn replicas(&self, _b: Bucket) -> Replicas {
            Replicas::from_slice(&[0, 1])
        }
    }
    let system = SystemConfig::builder()
        .site("s")
        // 0.2ms per bucket, but massively loaded.
        .disk_with(specs::X25_E, Micros::ZERO, Micros::from_millis(60))
        .disk(specs::BARRACUDA) // 13.2ms per bucket
        .build();
    let q = RangeQuery::new(0, 0, 2, 2); // 4 buckets
    let inst = RetrievalInstance::build(&system, &Both, &q.buckets(2));
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    // All 4 on the barracuda: 52.8ms; all 4 on the loaded SSD: 60.8ms;
    // optimal splits 3 (39.6) / 1 (60.2)... no: 60.2 > 52.8. Best is all
    // on the barracuda.
    assert_eq!(outcome.response_time, Micros::from_tenths_ms(528));
}

#[test]
fn zero_cost_is_rejected_by_model() {
    // The model requires positive per-bucket cost (division by C); all
    // shipped specs are positive.
    for spec in specs::ALL_DISKS {
        assert!(spec.access_time > Micros::ZERO);
    }
}

#[test]
fn empty_query_across_all_solvers() {
    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let inst = RetrievalInstance::build(&system, &alloc, &[]);
    for solver in [
        &PushRelabelBinary as &dyn RetrievalSolver,
        &PushRelabelIncremental,
        &FordFulkersonIncremental,
        &BlackBoxPushRelabel,
        &ParallelPushRelabelBinary::new(2),
    ] {
        let outcome = solver.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 0, "{}", solver.name());
        assert_eq!(outcome.response_time, Micros::ZERO);
    }
}

#[test]
fn full_grid_query_on_every_experiment() {
    for id in ExperimentId::ALL {
        let n = 5;
        let system = experiment(id, n, 9);
        let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
        let q = RangeQuery::new(0, 0, n, n);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
        let a = PushRelabelBinary.solve(&inst).unwrap();
        let b = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(a.response_time, b.response_time, "{id:?}");
        assert_outcome_valid(&inst, &a);
    }
}

#[test]
fn duplicate_buckets_in_query_are_distinct_vertices() {
    // The network builder takes the bucket list as-is; a caller passing
    // the same bucket twice retrieves it twice (two units of flow).
    let system = SystemConfig::homogeneous(specs::CHEETAH, 4);
    let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
    let b = Bucket::new(1, 1);
    let inst = RetrievalInstance::build(&system, &alloc, &[b, b]);
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.flow_value, 2);
    assert_outcome_valid(&inst, &outcome);
}

#[test]
fn huge_network_delay_dominates() {
    // A site so distant that even its SSDs lose to local HDDs.
    let far_delay = Micros::from_millis(1_000);
    let system = SystemConfig::builder()
        .site("local")
        .disks(specs::BARRACUDA, 3)
        .site("far")
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .disk_with(specs::X25_E, far_delay, Micros::ZERO)
        .build();
    let alloc = ReplicaMap::build(&DependentPeriodicAllocation::new(3, Placement::PerSite));
    let q = RangeQuery::new(0, 0, 3, 3);
    let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(3));
    let outcome = PushRelabelBinary.solve(&inst).unwrap();
    assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    let counts = outcome.schedule.per_disk_counts(6);
    let far_total: u64 = counts[3..].iter().sum();
    assert_eq!(far_total, 0, "distant site must be unused");
}
