//! # replicated-retrieval
//!
//! Facade crate for the reproduction of *"Integrated Maximum Flow Algorithm
//! for Optimal Response Time Retrieval of Replicated Data"* (Altiparmak &
//! Tosun, ICPP 2012).
//!
//! The workspace is organized as four library crates, re-exported here for
//! convenience:
//!
//! * [`flow`] — general maximum-flow substrate (residual graphs,
//!   Ford-Fulkerson, Dinic, sequential and parallel push-relabel).
//! * [`storage`] — storage-system model: disks, sites, network delays,
//!   initial loads, fixed-point time arithmetic and the experiment
//!   configurations of the paper's Table IV.
//! * [`decluster`] — replicated declustering schemes (RDA, dependent
//!   periodic, orthogonal), query types and query-load generators.
//! * [`core`] — the paper's contribution: retrieval flow networks and the
//!   integrated / black-box retrieval algorithms (Algorithms 1–6 plus the
//!   parallel variant).
//!
//! ## Quickstart
//!
//! ```
//! use replicated_retrieval::prelude::*;
//!
//! // 7x7 grid declustered over 7 disks per site, two sites (paper Fig. 2).
//! let alloc = OrthogonalAllocation::paper_7x7();
//! let system = paper_example();
//! let query = RangeQuery::new(0, 0, 3, 2); // the paper's q1
//! let buckets = query.buckets(7);
//!
//! let instance = RetrievalInstance::build(&system, &alloc, &buckets);
//! let outcome = PushRelabelBinary::default().solve(&instance).unwrap();
//! assert_eq!(outcome.schedule.len(), buckets.len());
//! ```
//!
//! For many queries, reuse allocations with a [`core::workspace::Workspace`]
//! (via [`core::solver::RetrievalSolver::solve_in`]), a
//! [`core::session::RetrievalSession`], or the sharded batch
//! [`core::engine::Engine`]:
//!
//! ```
//! use replicated_retrieval::prelude::*;
//!
//! let alloc = OrthogonalAllocation::paper_7x7();
//! let system = paper_example();
//! let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
//! let queries: Vec<BatchQuery> = (0..4)
//!     .map(|s| BatchQuery {
//!         stream: s,
//!         arrival: Micros::ZERO,
//!         buckets: RangeQuery::new(0, 0, 3, 2).buckets(7),
//!     })
//!     .collect();
//! let results = engine.submit_batch(&queries);
//! assert!(results.iter().all(|r| r.is_ok()));
//! assert_eq!(engine.stats().queries, 4);
//! ```

pub use rds_core as core;
pub use rds_decluster as decluster;
pub use rds_flow as flow;
pub use rds_storage as storage;

/// Commonly used items, re-exported in one place.
pub mod prelude {
    pub use rds_core::{
        blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel},
        engine::{
            BatchQuery, Engine, EngineBuilder, EngineMetrics, EngineStats, MetricsSnapshot,
            RetryPolicy,
        },
        error::{EngineError, SessionError, SolveError},
        fault::{
            solve_degraded, DiskHealth, FaultEvent, FaultInjector, HealthMap, PartialSchedule,
        },
        ff::{FordFulkersonBasic, FordFulkersonIncremental},
        network::{RetrievalInstance, UnavailableBucket},
        obs::metrics::{Histogram, LatencySummary, MetricsRegistry},
        obs::recorder::{FlightRecorder, FlightRecorderConfig, Postmortem, RecorderStats},
        obs::slo::{SloPolicy, SloReport, SloTarget},
        obs::span::{PhaseKind, PhaseRecord, QuerySpan, RejectReason, SpanId, SpanOutcome},
        obs::trace::{EventKind, Recorder, TraceEvent, TraceSink, Tracer},
        parallel::ParallelPushRelabelBinary,
        pr::{PushRelabelBinary, PushRelabelIncremental},
        schedule::{RetrievalOutcome, Schedule, SolveStats},
        serve::{
            PriorityClass, QueryRequest, Rejected, ServeClock, ServeConfig, ServeError,
            ServeHandle, ServeReport, ServeResponse, ServeStats, Ticket,
        },
        session::{RetrievalSession, ReuseCounters, ReusePolicy, SessionOutcome, SessionState},
        solver::RetrievalSolver,
        spec::{AnySolver, ArenaLayout, ScheduleObjective, SolveBudget, SolverKind, SolverSpec},
        workspace::{PoisonedWorkspace, Workspace},
    };
    pub use rds_decluster::{
        allocation::{Allocation, Placement, ReplicaMap, ReplicaSource, Replicas},
        load::{GeneratedQuery, Load, QueryGenerator, QueryKind},
        orthogonal::OrthogonalAllocation,
        periodic::DependentPeriodicAllocation,
        query::{ArbitraryQuery, Bucket, Query, RangeQuery},
        rda::RandomDuplicateAllocation,
        threshold::{ThresholdAllocation, ThresholdOrthogonalAllocation},
    };
    pub use rds_flow::graph::FlowGraph;
    pub use rds_storage::{
        experiments::{experiment, paper_example, ExperimentId},
        model::{Disk, Site, SystemConfig, SystemConfigBuilder},
        specs::DiskSpec,
        time::Micros,
    };
}
