/root/repo/target/debug/deps/replicated_retrieval-e24cfb753ca6ee10.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_retrieval-e24cfb753ca6ee10.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
