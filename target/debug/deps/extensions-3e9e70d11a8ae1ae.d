/root/repo/target/debug/deps/extensions-3e9e70d11a8ae1ae.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-3e9e70d11a8ae1ae: tests/extensions.rs

tests/extensions.rs:
