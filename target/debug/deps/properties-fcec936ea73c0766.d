/root/repo/target/debug/deps/properties-fcec936ea73c0766.d: tests/properties.rs

/root/repo/target/debug/deps/properties-fcec936ea73c0766: tests/properties.rs

tests/properties.rs:
