/root/repo/target/debug/deps/figures-baa3b175e24d3010.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-baa3b175e24d3010: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
