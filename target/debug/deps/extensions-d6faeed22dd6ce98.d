/root/repo/target/debug/deps/extensions-d6faeed22dd6ce98.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d6faeed22dd6ce98: tests/extensions.rs

tests/extensions.rs:
