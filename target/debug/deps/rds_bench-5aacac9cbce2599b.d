/root/repo/target/debug/deps/rds_bench-5aacac9cbce2599b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/rds_bench-5aacac9cbce2599b: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
