/root/repo/target/debug/deps/extensions-1377102c23dabd20.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-1377102c23dabd20.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
