/root/repo/target/debug/deps/agreement-4ab782a71f0b703a.d: tests/agreement.rs

/root/repo/target/debug/deps/agreement-4ab782a71f0b703a: tests/agreement.rs

tests/agreement.rs:
