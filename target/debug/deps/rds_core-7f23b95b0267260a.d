/root/repo/target/debug/deps/rds_core-7f23b95b0267260a.d: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/librds_core-7f23b95b0267260a.rlib: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/librds_core-7f23b95b0267260a.rmeta: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/blackbox.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/ff.rs:
crates/core/src/increment.rs:
crates/core/src/network.rs:
crates/core/src/parallel.rs:
crates/core/src/pr.rs:
crates/core/src/schedule.rs:
crates/core/src/session.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
crates/core/src/workspace.rs:
