/root/repo/target/debug/deps/determinism-9f4b86ed574af7ea.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-9f4b86ed574af7ea.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
