/root/repo/target/debug/deps/engine_speedup-f6abe4bdd644d872.d: crates/bench/src/bin/engine_speedup.rs

/root/repo/target/debug/deps/engine_speedup-f6abe4bdd644d872: crates/bench/src/bin/engine_speedup.rs

crates/bench/src/bin/engine_speedup.rs:
