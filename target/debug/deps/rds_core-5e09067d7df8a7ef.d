/root/repo/target/debug/deps/rds_core-5e09067d7df8a7ef.d: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/librds_core-5e09067d7df8a7ef.rmeta: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/blackbox.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/ff.rs:
crates/core/src/increment.rs:
crates/core/src/network.rs:
crates/core/src/parallel.rs:
crates/core/src/pr.rs:
crates/core/src/schedule.rs:
crates/core/src/session.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
crates/core/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
