/root/repo/target/debug/deps/response_times-5e765f87a1adbfab.d: crates/bench/src/bin/response_times.rs

/root/repo/target/debug/deps/response_times-5e765f87a1adbfab: crates/bench/src/bin/response_times.rs

crates/bench/src/bin/response_times.rs:
