/root/repo/target/debug/deps/figures-ea0d9b49f6460a00.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-ea0d9b49f6460a00: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
