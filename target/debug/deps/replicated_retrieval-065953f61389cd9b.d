/root/repo/target/debug/deps/replicated_retrieval-065953f61389cd9b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_retrieval-065953f61389cd9b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
