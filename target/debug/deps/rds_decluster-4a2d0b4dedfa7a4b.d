/root/repo/target/debug/deps/rds_decluster-4a2d0b4dedfa7a4b.d: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs

/root/repo/target/debug/deps/rds_decluster-4a2d0b4dedfa7a4b: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs

crates/decluster/src/lib.rs:
crates/decluster/src/allocation.rs:
crates/decluster/src/grid.rs:
crates/decluster/src/load.rs:
crates/decluster/src/metrics.rs:
crates/decluster/src/orthogonal.rs:
crates/decluster/src/periodic.rs:
crates/decluster/src/query.rs:
crates/decluster/src/rda.rs:
crates/decluster/src/threshold.rs:
