/root/repo/target/debug/deps/rds_decluster-c8b7c08c77d0d792.d: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs Cargo.toml

/root/repo/target/debug/deps/librds_decluster-c8b7c08c77d0d792.rmeta: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs Cargo.toml

crates/decluster/src/lib.rs:
crates/decluster/src/allocation.rs:
crates/decluster/src/grid.rs:
crates/decluster/src/load.rs:
crates/decluster/src/metrics.rs:
crates/decluster/src/orthogonal.rs:
crates/decluster/src/periodic.rs:
crates/decluster/src/query.rs:
crates/decluster/src/rda.rs:
crates/decluster/src/threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
