/root/repo/target/debug/deps/random_flow-ccf3cf163bcea26f.d: crates/flow/tests/random_flow.rs

/root/repo/target/debug/deps/random_flow-ccf3cf163bcea26f: crates/flow/tests/random_flow.rs

crates/flow/tests/random_flow.rs:
