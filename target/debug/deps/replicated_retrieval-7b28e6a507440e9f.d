/root/repo/target/debug/deps/replicated_retrieval-7b28e6a507440e9f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_retrieval-7b28e6a507440e9f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
