/root/repo/target/debug/deps/failure_injection-61d571b461c9cf67.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-61d571b461c9cf67: tests/failure_injection.rs

tests/failure_injection.rs:
