/root/repo/target/debug/deps/determinism-b009a6c5edd9d8d9.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b009a6c5edd9d8d9: tests/determinism.rs

tests/determinism.rs:
