/root/repo/target/debug/deps/determinism-c54889339368c264.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c54889339368c264.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
