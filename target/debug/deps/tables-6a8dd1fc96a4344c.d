/root/repo/target/debug/deps/tables-6a8dd1fc96a4344c.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-6a8dd1fc96a4344c: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
