/root/repo/target/debug/deps/flow_engines-7644e801ee3bb142.d: crates/bench/benches/flow_engines.rs

/root/repo/target/debug/deps/flow_engines-7644e801ee3bb142: crates/bench/benches/flow_engines.rs

crates/bench/benches/flow_engines.rs:
