/root/repo/target/debug/deps/failure_injection-e162bb7737c1483d.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-e162bb7737c1483d.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
