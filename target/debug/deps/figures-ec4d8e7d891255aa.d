/root/repo/target/debug/deps/figures-ec4d8e7d891255aa.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-ec4d8e7d891255aa: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
