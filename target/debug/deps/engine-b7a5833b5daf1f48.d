/root/repo/target/debug/deps/engine-b7a5833b5daf1f48.d: tests/engine.rs

/root/repo/target/debug/deps/engine-b7a5833b5daf1f48: tests/engine.rs

tests/engine.rs:
