/root/repo/target/debug/deps/rds_bench-2e63999dbf28afda.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librds_bench-2e63999dbf28afda.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librds_bench-2e63999dbf28afda.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
