/root/repo/target/debug/deps/rds_bench-a8f1a5ebc200ac1e.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librds_bench-a8f1a5ebc200ac1e.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/librds_bench-a8f1a5ebc200ac1e.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
