/root/repo/target/debug/deps/rds_flow-170c58863b369c11.d: crates/flow/src/lib.rs crates/flow/src/decompose.rs crates/flow/src/dinic.rs crates/flow/src/ford_fulkerson.rs crates/flow/src/graph.rs crates/flow/src/highest_label.rs crates/flow/src/incremental.rs crates/flow/src/min_cut.rs crates/flow/src/mpmc.rs crates/flow/src/parallel.rs crates/flow/src/push_relabel.rs crates/flow/src/validate.rs

/root/repo/target/debug/deps/librds_flow-170c58863b369c11.rlib: crates/flow/src/lib.rs crates/flow/src/decompose.rs crates/flow/src/dinic.rs crates/flow/src/ford_fulkerson.rs crates/flow/src/graph.rs crates/flow/src/highest_label.rs crates/flow/src/incremental.rs crates/flow/src/min_cut.rs crates/flow/src/mpmc.rs crates/flow/src/parallel.rs crates/flow/src/push_relabel.rs crates/flow/src/validate.rs

/root/repo/target/debug/deps/librds_flow-170c58863b369c11.rmeta: crates/flow/src/lib.rs crates/flow/src/decompose.rs crates/flow/src/dinic.rs crates/flow/src/ford_fulkerson.rs crates/flow/src/graph.rs crates/flow/src/highest_label.rs crates/flow/src/incremental.rs crates/flow/src/min_cut.rs crates/flow/src/mpmc.rs crates/flow/src/parallel.rs crates/flow/src/push_relabel.rs crates/flow/src/validate.rs

crates/flow/src/lib.rs:
crates/flow/src/decompose.rs:
crates/flow/src/dinic.rs:
crates/flow/src/ford_fulkerson.rs:
crates/flow/src/graph.rs:
crates/flow/src/highest_label.rs:
crates/flow/src/incremental.rs:
crates/flow/src/min_cut.rs:
crates/flow/src/mpmc.rs:
crates/flow/src/parallel.rs:
crates/flow/src/push_relabel.rs:
crates/flow/src/validate.rs:
