/root/repo/target/debug/deps/rds_storage-c4d8835734a835b0.d: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs Cargo.toml

/root/repo/target/debug/deps/librds_storage-c4d8835734a835b0.rmeta: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/experiments.rs:
crates/storage/src/model.rs:
crates/storage/src/specs.rs:
crates/storage/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
