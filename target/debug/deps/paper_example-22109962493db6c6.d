/root/repo/target/debug/deps/paper_example-22109962493db6c6.d: tests/paper_example.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_example-22109962493db6c6.rmeta: tests/paper_example.rs Cargo.toml

tests/paper_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
