/root/repo/target/debug/deps/response_times-944dac918b8bb5fb.d: crates/bench/src/bin/response_times.rs

/root/repo/target/debug/deps/response_times-944dac918b8bb5fb: crates/bench/src/bin/response_times.rs

crates/bench/src/bin/response_times.rs:
