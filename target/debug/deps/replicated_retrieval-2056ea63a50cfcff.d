/root/repo/target/debug/deps/replicated_retrieval-2056ea63a50cfcff.d: src/lib.rs

/root/repo/target/debug/deps/libreplicated_retrieval-2056ea63a50cfcff.rlib: src/lib.rs

/root/repo/target/debug/deps/libreplicated_retrieval-2056ea63a50cfcff.rmeta: src/lib.rs

src/lib.rs:
