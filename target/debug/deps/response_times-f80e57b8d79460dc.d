/root/repo/target/debug/deps/response_times-f80e57b8d79460dc.d: crates/bench/src/bin/response_times.rs

/root/repo/target/debug/deps/response_times-f80e57b8d79460dc: crates/bench/src/bin/response_times.rs

crates/bench/src/bin/response_times.rs:
