/root/repo/target/debug/deps/replicated_retrieval-b8cebec2c35c9828.d: src/lib.rs

/root/repo/target/debug/deps/libreplicated_retrieval-b8cebec2c35c9828.rlib: src/lib.rs

/root/repo/target/debug/deps/libreplicated_retrieval-b8cebec2c35c9828.rmeta: src/lib.rs

src/lib.rs:
