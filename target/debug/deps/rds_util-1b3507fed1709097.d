/root/repo/target/debug/deps/rds_util-1b3507fed1709097.d: crates/util/src/lib.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/librds_util-1b3507fed1709097.rlib: crates/util/src/lib.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/librds_util-1b3507fed1709097.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
