/root/repo/target/debug/deps/rds_util-f87d301108b20391.d: crates/util/src/lib.rs crates/util/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/librds_util-f87d301108b20391.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
