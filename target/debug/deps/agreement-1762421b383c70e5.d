/root/repo/target/debug/deps/agreement-1762421b383c70e5.d: tests/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-1762421b383c70e5.rmeta: tests/agreement.rs Cargo.toml

tests/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
