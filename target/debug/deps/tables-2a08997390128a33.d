/root/repo/target/debug/deps/tables-2a08997390128a33.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-2a08997390128a33: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
