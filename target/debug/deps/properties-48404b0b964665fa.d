/root/repo/target/debug/deps/properties-48404b0b964665fa.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-48404b0b964665fa.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
