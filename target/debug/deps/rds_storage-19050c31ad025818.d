/root/repo/target/debug/deps/rds_storage-19050c31ad025818.d: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

/root/repo/target/debug/deps/librds_storage-19050c31ad025818.rlib: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

/root/repo/target/debug/deps/librds_storage-19050c31ad025818.rmeta: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

crates/storage/src/lib.rs:
crates/storage/src/experiments.rs:
crates/storage/src/model.rs:
crates/storage/src/specs.rs:
crates/storage/src/time.rs:
