/root/repo/target/debug/deps/agreement-e717bd8938806383.d: tests/agreement.rs Cargo.toml

/root/repo/target/debug/deps/libagreement-e717bd8938806383.rmeta: tests/agreement.rs Cargo.toml

tests/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
