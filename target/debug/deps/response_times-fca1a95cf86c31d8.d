/root/repo/target/debug/deps/response_times-fca1a95cf86c31d8.d: crates/bench/src/bin/response_times.rs

/root/repo/target/debug/deps/response_times-fca1a95cf86c31d8: crates/bench/src/bin/response_times.rs

crates/bench/src/bin/response_times.rs:
