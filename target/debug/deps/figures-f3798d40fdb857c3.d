/root/repo/target/debug/deps/figures-f3798d40fdb857c3.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-f3798d40fdb857c3: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
