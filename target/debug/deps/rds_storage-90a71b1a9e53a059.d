/root/repo/target/debug/deps/rds_storage-90a71b1a9e53a059.d: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

/root/repo/target/debug/deps/rds_storage-90a71b1a9e53a059: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

crates/storage/src/lib.rs:
crates/storage/src/experiments.rs:
crates/storage/src/model.rs:
crates/storage/src/specs.rs:
crates/storage/src/time.rs:
