/root/repo/target/debug/deps/figures-a036bfb56030464b.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-a036bfb56030464b: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
