/root/repo/target/debug/deps/determinism-e5b5209cfcde8004.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-e5b5209cfcde8004: tests/determinism.rs

tests/determinism.rs:
