/root/repo/target/debug/deps/properties-729dddd12099a864.d: tests/properties.rs

/root/repo/target/debug/deps/properties-729dddd12099a864: tests/properties.rs

tests/properties.rs:
