/root/repo/target/debug/deps/rds_util-9328e1242a355618.d: crates/util/src/lib.rs crates/util/src/rng.rs

/root/repo/target/debug/deps/rds_util-9328e1242a355618: crates/util/src/lib.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
