/root/repo/target/debug/deps/rds_flow-efd41492dc55c7f3.d: crates/flow/src/lib.rs crates/flow/src/decompose.rs crates/flow/src/dinic.rs crates/flow/src/ford_fulkerson.rs crates/flow/src/graph.rs crates/flow/src/highest_label.rs crates/flow/src/incremental.rs crates/flow/src/min_cut.rs crates/flow/src/mpmc.rs crates/flow/src/parallel.rs crates/flow/src/push_relabel.rs crates/flow/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/librds_flow-efd41492dc55c7f3.rmeta: crates/flow/src/lib.rs crates/flow/src/decompose.rs crates/flow/src/dinic.rs crates/flow/src/ford_fulkerson.rs crates/flow/src/graph.rs crates/flow/src/highest_label.rs crates/flow/src/incremental.rs crates/flow/src/min_cut.rs crates/flow/src/mpmc.rs crates/flow/src/parallel.rs crates/flow/src/push_relabel.rs crates/flow/src/validate.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/decompose.rs:
crates/flow/src/dinic.rs:
crates/flow/src/ford_fulkerson.rs:
crates/flow/src/graph.rs:
crates/flow/src/highest_label.rs:
crates/flow/src/incremental.rs:
crates/flow/src/min_cut.rs:
crates/flow/src/mpmc.rs:
crates/flow/src/parallel.rs:
crates/flow/src/push_relabel.rs:
crates/flow/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
