/root/repo/target/debug/deps/rds_core-2a31e571a859e7e3.d: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/rds_core-2a31e571a859e7e3: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/blackbox.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/ff.rs:
crates/core/src/increment.rs:
crates/core/src/network.rs:
crates/core/src/parallel.rs:
crates/core/src/pr.rs:
crates/core/src/schedule.rs:
crates/core/src/session.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
crates/core/src/workspace.rs:
