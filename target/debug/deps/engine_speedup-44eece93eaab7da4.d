/root/repo/target/debug/deps/engine_speedup-44eece93eaab7da4.d: crates/bench/src/bin/engine_speedup.rs

/root/repo/target/debug/deps/engine_speedup-44eece93eaab7da4: crates/bench/src/bin/engine_speedup.rs

crates/bench/src/bin/engine_speedup.rs:
