/root/repo/target/debug/deps/engine-bb8947de1896e70e.d: tests/engine.rs

/root/repo/target/debug/deps/engine-bb8947de1896e70e: tests/engine.rs

tests/engine.rs:
