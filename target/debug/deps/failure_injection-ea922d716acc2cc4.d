/root/repo/target/debug/deps/failure_injection-ea922d716acc2cc4.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-ea922d716acc2cc4: tests/failure_injection.rs

tests/failure_injection.rs:
