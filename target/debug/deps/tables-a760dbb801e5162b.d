/root/repo/target/debug/deps/tables-a760dbb801e5162b.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-a760dbb801e5162b: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
