/root/repo/target/debug/deps/rds_bench-f007a24aa04c8c32.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/rds_bench-f007a24aa04c8c32: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
