/root/repo/target/debug/deps/figures-c44b40cdd67a942e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-c44b40cdd67a942e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
