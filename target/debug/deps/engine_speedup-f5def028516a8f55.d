/root/repo/target/debug/deps/engine_speedup-f5def028516a8f55.d: crates/bench/src/bin/engine_speedup.rs

/root/repo/target/debug/deps/engine_speedup-f5def028516a8f55: crates/bench/src/bin/engine_speedup.rs

crates/bench/src/bin/engine_speedup.rs:
