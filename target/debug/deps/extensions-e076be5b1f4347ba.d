/root/repo/target/debug/deps/extensions-e076be5b1f4347ba.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-e076be5b1f4347ba.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
