/root/repo/target/debug/deps/fault_sweep-531ad19ab4aa4380.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-531ad19ab4aa4380: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
