/root/repo/target/debug/deps/replicated_retrieval-32883db25cdf8fc8.d: src/lib.rs

/root/repo/target/debug/deps/replicated_retrieval-32883db25cdf8fc8: src/lib.rs

src/lib.rs:
