/root/repo/target/debug/deps/flow_engines-ef65a507e5dac15a.d: crates/bench/benches/flow_engines.rs

/root/repo/target/debug/deps/flow_engines-ef65a507e5dac15a: crates/bench/benches/flow_engines.rs

crates/bench/benches/flow_engines.rs:
