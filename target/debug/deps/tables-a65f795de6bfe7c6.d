/root/repo/target/debug/deps/tables-a65f795de6bfe7c6.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-a65f795de6bfe7c6: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
