/root/repo/target/debug/deps/agreement-232560a3a1cf944b.d: tests/agreement.rs

/root/repo/target/debug/deps/agreement-232560a3a1cf944b: tests/agreement.rs

tests/agreement.rs:
