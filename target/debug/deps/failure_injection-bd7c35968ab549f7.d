/root/repo/target/debug/deps/failure_injection-bd7c35968ab549f7.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-bd7c35968ab549f7.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
