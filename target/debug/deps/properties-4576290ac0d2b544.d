/root/repo/target/debug/deps/properties-4576290ac0d2b544.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4576290ac0d2b544.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
