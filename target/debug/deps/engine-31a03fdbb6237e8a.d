/root/repo/target/debug/deps/engine-31a03fdbb6237e8a.d: tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-31a03fdbb6237e8a.rmeta: tests/engine.rs Cargo.toml

tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
