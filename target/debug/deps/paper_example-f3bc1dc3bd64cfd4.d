/root/repo/target/debug/deps/paper_example-f3bc1dc3bd64cfd4.d: tests/paper_example.rs

/root/repo/target/debug/deps/paper_example-f3bc1dc3bd64cfd4: tests/paper_example.rs

tests/paper_example.rs:
