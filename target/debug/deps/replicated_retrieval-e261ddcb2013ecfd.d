/root/repo/target/debug/deps/replicated_retrieval-e261ddcb2013ecfd.d: src/lib.rs

/root/repo/target/debug/deps/replicated_retrieval-e261ddcb2013ecfd: src/lib.rs

src/lib.rs:
