/root/repo/target/debug/deps/chaos-62ad8873e1f4de9e.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-62ad8873e1f4de9e: tests/chaos.rs

tests/chaos.rs:
