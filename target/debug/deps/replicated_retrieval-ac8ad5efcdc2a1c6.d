/root/repo/target/debug/deps/replicated_retrieval-ac8ad5efcdc2a1c6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_retrieval-ac8ad5efcdc2a1c6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
