/root/repo/target/debug/deps/engine-0fdf2b61752c760c.d: tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-0fdf2b61752c760c.rmeta: tests/engine.rs Cargo.toml

tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
