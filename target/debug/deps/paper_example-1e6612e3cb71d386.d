/root/repo/target/debug/deps/paper_example-1e6612e3cb71d386.d: tests/paper_example.rs

/root/repo/target/debug/deps/paper_example-1e6612e3cb71d386: tests/paper_example.rs

tests/paper_example.rs:
