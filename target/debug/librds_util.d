/root/repo/target/debug/librds_util.rlib: /root/repo/crates/util/src/lib.rs /root/repo/crates/util/src/rng.rs
