/root/repo/target/debug/examples/parallel_retrieval-b646845df63b96f3.d: examples/parallel_retrieval.rs

/root/repo/target/debug/examples/parallel_retrieval-b646845df63b96f3: examples/parallel_retrieval.rs

examples/parallel_retrieval.rs:
