/root/repo/target/debug/examples/quickstart-236e01d5b7d76738.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-236e01d5b7d76738: examples/quickstart.rs

examples/quickstart.rs:
