/root/repo/target/debug/examples/quickstart-9d5ebef41ae7c5a9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9d5ebef41ae7c5a9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
