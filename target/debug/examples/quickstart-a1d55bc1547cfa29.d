/root/repo/target/debug/examples/quickstart-a1d55bc1547cfa29.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a1d55bc1547cfa29.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
