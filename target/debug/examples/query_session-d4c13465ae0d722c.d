/root/repo/target/debug/examples/query_session-d4c13465ae0d722c.d: examples/query_session.rs

/root/repo/target/debug/examples/query_session-d4c13465ae0d722c: examples/query_session.rs

examples/query_session.rs:
