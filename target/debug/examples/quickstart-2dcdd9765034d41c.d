/root/repo/target/debug/examples/quickstart-2dcdd9765034d41c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2dcdd9765034d41c: examples/quickstart.rs

examples/quickstart.rs:
