/root/repo/target/debug/examples/query_session-c181675d9f4c5e80.d: examples/query_session.rs Cargo.toml

/root/repo/target/debug/examples/libquery_session-c181675d9f4c5e80.rmeta: examples/query_session.rs Cargo.toml

examples/query_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
