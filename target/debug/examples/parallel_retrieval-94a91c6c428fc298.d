/root/repo/target/debug/examples/parallel_retrieval-94a91c6c428fc298.d: examples/parallel_retrieval.rs

/root/repo/target/debug/examples/parallel_retrieval-94a91c6c428fc298: examples/parallel_retrieval.rs

examples/parallel_retrieval.rs:
