/root/repo/target/debug/examples/multi_site-4cc38e1cbf4560db.d: examples/multi_site.rs

/root/repo/target/debug/examples/multi_site-4cc38e1cbf4560db: examples/multi_site.rs

examples/multi_site.rs:
