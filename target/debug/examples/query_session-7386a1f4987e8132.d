/root/repo/target/debug/examples/query_session-7386a1f4987e8132.d: examples/query_session.rs

/root/repo/target/debug/examples/query_session-7386a1f4987e8132: examples/query_session.rs

examples/query_session.rs:
