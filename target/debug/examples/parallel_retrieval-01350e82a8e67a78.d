/root/repo/target/debug/examples/parallel_retrieval-01350e82a8e67a78.d: examples/parallel_retrieval.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_retrieval-01350e82a8e67a78.rmeta: examples/parallel_retrieval.rs Cargo.toml

examples/parallel_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
