/root/repo/target/debug/examples/scheme_comparison-1b9b656294d3f57d.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-1b9b656294d3f57d: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
