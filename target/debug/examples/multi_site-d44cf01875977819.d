/root/repo/target/debug/examples/multi_site-d44cf01875977819.d: examples/multi_site.rs

/root/repo/target/debug/examples/multi_site-d44cf01875977819: examples/multi_site.rs

examples/multi_site.rs:
