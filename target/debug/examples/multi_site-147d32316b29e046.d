/root/repo/target/debug/examples/multi_site-147d32316b29e046.d: examples/multi_site.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_site-147d32316b29e046.rmeta: examples/multi_site.rs Cargo.toml

examples/multi_site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
