/root/repo/target/debug/examples/scheme_comparison-aee5d383a85a7a9f.d: examples/scheme_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_comparison-aee5d383a85a7a9f.rmeta: examples/scheme_comparison.rs Cargo.toml

examples/scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
