/root/repo/target/debug/examples/multi_site-c186f7848025cd57.d: examples/multi_site.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_site-c186f7848025cd57.rmeta: examples/multi_site.rs Cargo.toml

examples/multi_site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
