/root/repo/target/debug/examples/scheme_comparison-5d61a4be62330068.d: examples/scheme_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_comparison-5d61a4be62330068.rmeta: examples/scheme_comparison.rs Cargo.toml

examples/scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
