/root/repo/target/debug/examples/parallel_retrieval-cc4af5c38cb21fc8.d: examples/parallel_retrieval.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_retrieval-cc4af5c38cb21fc8.rmeta: examples/parallel_retrieval.rs Cargo.toml

examples/parallel_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
