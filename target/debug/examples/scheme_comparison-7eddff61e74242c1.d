/root/repo/target/debug/examples/scheme_comparison-7eddff61e74242c1.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-7eddff61e74242c1: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
