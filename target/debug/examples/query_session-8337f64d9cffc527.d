/root/repo/target/debug/examples/query_session-8337f64d9cffc527.d: examples/query_session.rs Cargo.toml

/root/repo/target/debug/examples/libquery_session-8337f64d9cffc527.rmeta: examples/query_session.rs Cargo.toml

examples/query_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
