/root/repo/target/release/examples/parallel_retrieval-7726a4a4b59d5e9d.d: examples/parallel_retrieval.rs

/root/repo/target/release/examples/parallel_retrieval-7726a4a4b59d5e9d: examples/parallel_retrieval.rs

examples/parallel_retrieval.rs:
