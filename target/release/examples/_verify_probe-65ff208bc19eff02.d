/root/repo/target/release/examples/_verify_probe-65ff208bc19eff02.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-65ff208bc19eff02: examples/_verify_probe.rs

examples/_verify_probe.rs:
