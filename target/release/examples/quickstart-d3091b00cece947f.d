/root/repo/target/release/examples/quickstart-d3091b00cece947f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d3091b00cece947f: examples/quickstart.rs

examples/quickstart.rs:
