/root/repo/target/release/examples/quickstart-a60fb2b20a66d5ec.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a60fb2b20a66d5ec: examples/quickstart.rs

examples/quickstart.rs:
