/root/repo/target/release/examples/parallel_retrieval-f06a69d27e17a138.d: examples/parallel_retrieval.rs

/root/repo/target/release/examples/parallel_retrieval-f06a69d27e17a138: examples/parallel_retrieval.rs

examples/parallel_retrieval.rs:
