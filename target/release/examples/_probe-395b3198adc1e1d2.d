/root/repo/target/release/examples/_probe-395b3198adc1e1d2.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-395b3198adc1e1d2: examples/_probe.rs

examples/_probe.rs:
