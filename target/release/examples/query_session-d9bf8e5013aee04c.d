/root/repo/target/release/examples/query_session-d9bf8e5013aee04c.d: examples/query_session.rs

/root/repo/target/release/examples/query_session-d9bf8e5013aee04c: examples/query_session.rs

examples/query_session.rs:
