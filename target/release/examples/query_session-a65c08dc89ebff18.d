/root/repo/target/release/examples/query_session-a65c08dc89ebff18.d: examples/query_session.rs

/root/repo/target/release/examples/query_session-a65c08dc89ebff18: examples/query_session.rs

examples/query_session.rs:
