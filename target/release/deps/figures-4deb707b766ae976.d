/root/repo/target/release/deps/figures-4deb707b766ae976.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-4deb707b766ae976: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
