/root/repo/target/release/deps/engine_speedup-e7da8cc1489acdf9.d: crates/bench/src/bin/engine_speedup.rs

/root/repo/target/release/deps/engine_speedup-e7da8cc1489acdf9: crates/bench/src/bin/engine_speedup.rs

crates/bench/src/bin/engine_speedup.rs:
