/root/repo/target/release/deps/rds_storage-2c881f5038f3ddcc.d: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

/root/repo/target/release/deps/librds_storage-2c881f5038f3ddcc.rlib: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

/root/repo/target/release/deps/librds_storage-2c881f5038f3ddcc.rmeta: crates/storage/src/lib.rs crates/storage/src/experiments.rs crates/storage/src/model.rs crates/storage/src/specs.rs crates/storage/src/time.rs

crates/storage/src/lib.rs:
crates/storage/src/experiments.rs:
crates/storage/src/model.rs:
crates/storage/src/specs.rs:
crates/storage/src/time.rs:
