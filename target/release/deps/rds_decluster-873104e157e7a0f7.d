/root/repo/target/release/deps/rds_decluster-873104e157e7a0f7.d: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs

/root/repo/target/release/deps/librds_decluster-873104e157e7a0f7.rlib: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs

/root/repo/target/release/deps/librds_decluster-873104e157e7a0f7.rmeta: crates/decluster/src/lib.rs crates/decluster/src/allocation.rs crates/decluster/src/grid.rs crates/decluster/src/load.rs crates/decluster/src/metrics.rs crates/decluster/src/orthogonal.rs crates/decluster/src/periodic.rs crates/decluster/src/query.rs crates/decluster/src/rda.rs crates/decluster/src/threshold.rs

crates/decluster/src/lib.rs:
crates/decluster/src/allocation.rs:
crates/decluster/src/grid.rs:
crates/decluster/src/load.rs:
crates/decluster/src/metrics.rs:
crates/decluster/src/orthogonal.rs:
crates/decluster/src/periodic.rs:
crates/decluster/src/query.rs:
crates/decluster/src/rda.rs:
crates/decluster/src/threshold.rs:
