/root/repo/target/release/deps/replicated_retrieval-88e0d8466f6ba33e.d: src/lib.rs

/root/repo/target/release/deps/libreplicated_retrieval-88e0d8466f6ba33e.rlib: src/lib.rs

/root/repo/target/release/deps/libreplicated_retrieval-88e0d8466f6ba33e.rmeta: src/lib.rs

src/lib.rs:
