/root/repo/target/release/deps/_profile_tmp-ef9c0761b3721980.d: crates/bench/src/bin/_profile_tmp.rs

/root/repo/target/release/deps/_profile_tmp-ef9c0761b3721980: crates/bench/src/bin/_profile_tmp.rs

crates/bench/src/bin/_profile_tmp.rs:
