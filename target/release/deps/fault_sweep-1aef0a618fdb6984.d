/root/repo/target/release/deps/fault_sweep-1aef0a618fdb6984.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-1aef0a618fdb6984: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
