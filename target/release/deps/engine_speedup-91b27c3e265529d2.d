/root/repo/target/release/deps/engine_speedup-91b27c3e265529d2.d: crates/bench/src/bin/engine_speedup.rs

/root/repo/target/release/deps/engine_speedup-91b27c3e265529d2: crates/bench/src/bin/engine_speedup.rs

crates/bench/src/bin/engine_speedup.rs:
