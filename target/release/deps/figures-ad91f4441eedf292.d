/root/repo/target/release/deps/figures-ad91f4441eedf292.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-ad91f4441eedf292: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
