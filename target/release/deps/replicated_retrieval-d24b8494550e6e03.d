/root/repo/target/release/deps/replicated_retrieval-d24b8494550e6e03.d: src/lib.rs

/root/repo/target/release/deps/libreplicated_retrieval-d24b8494550e6e03.rlib: src/lib.rs

/root/repo/target/release/deps/libreplicated_retrieval-d24b8494550e6e03.rmeta: src/lib.rs

src/lib.rs:
