/root/repo/target/release/deps/rds_bench-8d1590dd3644dfc8.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librds_bench-8d1590dd3644dfc8.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librds_bench-8d1590dd3644dfc8.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
