/root/repo/target/release/deps/rds_util-10306532d7d39f0b.d: crates/util/src/lib.rs crates/util/src/rng.rs

/root/repo/target/release/deps/librds_util-10306532d7d39f0b.rlib: crates/util/src/lib.rs crates/util/src/rng.rs

/root/repo/target/release/deps/librds_util-10306532d7d39f0b.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
