/root/repo/target/release/deps/rds_core-4ea64d3686643e32.d: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/librds_core-4ea64d3686643e32.rlib: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/librds_core-4ea64d3686643e32.rmeta: crates/core/src/lib.rs crates/core/src/blackbox.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/ff.rs crates/core/src/increment.rs crates/core/src/network.rs crates/core/src/parallel.rs crates/core/src/pr.rs crates/core/src/schedule.rs crates/core/src/session.rs crates/core/src/solver.rs crates/core/src/verify.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/blackbox.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/ff.rs:
crates/core/src/increment.rs:
crates/core/src/network.rs:
crates/core/src/parallel.rs:
crates/core/src/pr.rs:
crates/core/src/schedule.rs:
crates/core/src/session.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
crates/core/src/workspace.rs:
