/root/repo/target/release/deps/rds_bench-85595e94de31e4cd.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librds_bench-85595e94de31e4cd.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/release/deps/librds_bench-85595e94de31e4cd.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
