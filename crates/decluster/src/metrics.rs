//! Declustering quality metrics.
//!
//! The classic single-copy metric is the **additive error** of a range
//! query: the number of disk accesses needed (the maximum number of query
//! buckets on one disk) minus the optimal `⌈|Q| / N⌉`. These helpers are
//! used to select lattice coefficients and to sanity-check the allocation
//! schemes.

use crate::query::{Bucket, Query, RangeQuery};

/// Retrieval cost of `query` using a *single* copy assigned by `disk_of`:
/// the maximum number of query buckets placed on one disk.
pub fn single_copy_cost<F>(n: usize, query: &impl Query, disk_of: F) -> usize
where
    F: Fn(Bucket) -> usize,
{
    let mut counts = vec![0usize; n];
    for b in query.buckets(n) {
        counts[disk_of(b)] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

/// Optimal number of disk accesses for a query of `q` buckets on `n`
/// disks: `⌈q / n⌉`.
pub fn optimal_cost(q: usize, n: usize) -> usize {
    q.div_ceil(n)
}

/// Additive error of one range query under a lattice allocation
/// `f(i, j) = (a1·i + a2·j) mod n`.
pub fn additive_error_lattice(n: usize, a1: usize, a2: usize, query: &RangeQuery) -> usize {
    let cost = single_copy_cost(n, query, |b| {
        (a1 * b.row as usize + a2 * b.col as usize) % n
    });
    cost - optimal_cost(query.area(), n)
}

/// Worst-case additive error of the lattice `f(i, j) = (a1·i + a2·j) mod n`
/// over all range-query *shapes* `(r, c)`.
///
/// Lattice allocations are translation invariant, so the error of an
/// `r × c` query does not depend on its anchor; it suffices to scan the
/// `n²` shapes with the query anchored at the origin — `O(n⁴)` bucket
/// visits in total, fine for the small `n` used in coefficient selection.
pub fn max_additive_error_lattice(n: usize, a1: usize, a2: usize) -> usize {
    let mut worst = 0;
    for r in 1..=n {
        for c in 1..=n {
            let q = RangeQuery::new(0, 0, r, c);
            worst = worst.max(additive_error_lattice(n, a1, a2, &q));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_cost_ceils() {
        assert_eq!(optimal_cost(6, 7), 1);
        assert_eq!(optimal_cost(7, 7), 1);
        assert_eq!(optimal_cost(8, 7), 2);
        assert_eq!(optimal_cost(0, 7), 0);
    }

    #[test]
    fn single_copy_cost_counts_max_per_disk() {
        // 2x2 query, column allocation on 4 disks: two buckets per column.
        let q = RangeQuery::new(0, 0, 2, 2);
        let cost = single_copy_cost(4, &q, |b| b.col as usize);
        assert_eq!(cost, 2);
    }

    #[test]
    fn full_row_query_on_lattice_is_optimal() {
        // f(i,j) = (i + j) mod n spreads a 1×n row query perfectly.
        let n = 5;
        let q = RangeQuery::new(2, 0, 1, 5);
        assert_eq!(additive_error_lattice(n, 1, 1, &q), 0);
    }

    #[test]
    fn translation_invariance_of_lattice_error() {
        let n = 6;
        for (a1, a2) in [(1usize, 1usize), (1, 5)] {
            for r in 1..=n {
                for c in 1..=n {
                    let base = additive_error_lattice(n, a1, a2, &RangeQuery::new(0, 0, r, c));
                    for (i, j) in [(1usize, 2usize), (3, 3), (5, 1)] {
                        let shifted =
                            additive_error_lattice(n, a1, a2, &RangeQuery::new(i, j, r, c));
                        assert_eq!(base, shifted, "shape {r}x{c} anchor ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn golden_ratio_lattice_has_low_error() {
        // The whole point of picking a good multiplier: worst-case error
        // stays small (≤ 3 for these grid sizes; naive multipliers reach
        // much higher).
        for n in [5usize, 7, 11, 13] {
            let a = crate::periodic::golden_ratio_multiplier(n);
            let err = max_additive_error_lattice(n, 1, a);
            assert!(err <= 3, "n={n}, a={a}, err={err}");
            // Degenerate comparison: a2 = 1 ("diagonal") is much worse for
            // wide queries on most n.
            let diag = max_additive_error_lattice(n, 1, 1);
            assert!(err <= diag, "golden should not be worse than diagonal");
        }
    }
}
