//! Query types: wraparound range queries and arbitrary queries (paper
//! §VI-B).

/// A bucket of the data grid, identified by its (row, column) coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bucket {
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
}

impl Bucket {
    /// Creates a bucket at `(row, col)`.
    pub const fn new(row: u32, col: u32) -> Bucket {
        Bucket { row, col }
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.row, self.col)
    }
}

/// Anything that selects a set of buckets from an `N × N` grid.
pub trait Query {
    /// The buckets requested, on a grid of dimension `n`.
    fn buckets(&self, n: usize) -> Vec<Bucket>;

    /// Number of buckets requested (`|Q|`).
    fn len(&self, n: usize) -> usize {
        self.buckets(n).len()
    }

    /// True if the query requests nothing.
    fn is_empty(&self, n: usize) -> bool {
        self.len(n) == 0
    }
}

/// A rectangular wraparound range query, identified by the 4 parameters
/// `(i, j, r, c)` of §VI-B: `(i, j)` is the top-left corner, `r`/`c` the
/// number of rows/columns. Coordinates wrap around the grid edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    /// Top-left row `i`.
    pub i: usize,
    /// Top-left column `j`.
    pub j: usize,
    /// Number of rows `r ≥ 1`.
    pub rows: usize,
    /// Number of columns `c ≥ 1`.
    pub cols: usize,
}

impl RangeQuery {
    /// Creates an `r × c` query anchored at `(i, j)`.
    ///
    /// # Panics
    /// Panics if `rows == 0 || cols == 0`.
    pub fn new(i: usize, j: usize, rows: usize, cols: usize) -> RangeQuery {
        assert!(rows > 0 && cols > 0, "range query must be non-degenerate");
        RangeQuery { i, j, rows, cols }
    }

    /// Number of buckets `r * c` (independent of the grid size as long as
    /// `r, c ≤ N`).
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }
}

impl Query for RangeQuery {
    fn buckets(&self, n: usize) -> Vec<Bucket> {
        assert!(
            self.rows <= n && self.cols <= n,
            "query shape {}x{} exceeds grid dimension {n}",
            self.rows,
            self.cols
        );
        let mut out = Vec::with_capacity(self.area());
        for dr in 0..self.rows {
            for dc in 0..self.cols {
                out.push(Bucket::new(
                    ((self.i + dr) % n) as u32,
                    ((self.j + dc) % n) as u32,
                ));
            }
        }
        out
    }

    fn len(&self, _n: usize) -> usize {
        self.area()
    }
}

/// An arbitrary query: any subset of the grid's buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArbitraryQuery {
    buckets: Vec<Bucket>,
}

impl ArbitraryQuery {
    /// Creates an arbitrary query from a bucket set, deduplicating.
    pub fn new(mut buckets: Vec<Bucket>) -> ArbitraryQuery {
        buckets.sort_unstable();
        buckets.dedup();
        ArbitraryQuery { buckets }
    }

    /// The requested buckets.
    pub fn as_slice(&self) -> &[Bucket] {
        &self.buckets
    }
}

impl Query for ArbitraryQuery {
    fn buckets(&self, n: usize) -> Vec<Bucket> {
        debug_assert!(self
            .buckets
            .iter()
            .all(|b| (b.row as usize) < n && (b.col as usize) < n));
        self.buckets.clone()
    }

    fn len(&self, _n: usize) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_q1_is_3x2() {
        // The paper's q1 is a 3×2 query with 6 buckets [0,0]..[2,1].
        let q = RangeQuery::new(0, 0, 3, 2);
        let b = q.buckets(7);
        assert_eq!(b.len(), 6);
        assert!(b.contains(&Bucket::new(0, 0)));
        assert!(b.contains(&Bucket::new(2, 1)));
        assert!(!b.contains(&Bucket::new(3, 0)));
    }

    #[test]
    fn range_query_wraps_around() {
        let q = RangeQuery::new(3, 3, 2, 2);
        let b = q.buckets(4);
        assert_eq!(b.len(), 4);
        assert!(b.contains(&Bucket::new(3, 3)));
        assert!(b.contains(&Bucket::new(0, 0)));
        assert!(b.contains(&Bucket::new(3, 0)));
        assert!(b.contains(&Bucket::new(0, 3)));
    }

    #[test]
    fn full_grid_query() {
        let q = RangeQuery::new(0, 0, 3, 3);
        let b = q.buckets(3);
        assert_eq!(b.len(), 9);
        let unique: std::collections::HashSet<_> = b.into_iter().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_range_rejected() {
        RangeQuery::new(0, 0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn oversized_range_rejected() {
        RangeQuery::new(0, 0, 5, 5).buckets(4);
    }

    #[test]
    fn arbitrary_query_deduplicates() {
        let q = ArbitraryQuery::new(vec![
            Bucket::new(1, 1),
            Bucket::new(0, 0),
            Bucket::new(1, 1),
        ]);
        assert_eq!(q.len(8), 2);
        assert_eq!(q.as_slice()[0], Bucket::new(0, 0));
    }

    #[test]
    fn bucket_display() {
        assert_eq!(Bucket::new(2, 1).to_string(), "[2,1]");
    }
}
