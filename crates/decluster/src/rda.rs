//! Random Duplicate Allocation (RDA) — Sanders, Egner & Korst, SODA 2000.
//!
//! Each bucket is stored on two disks chosen at random. For single-site
//! placement the two disks are distinct; for per-site placement each copy
//! picks a random disk within its own site (the sites are disjoint, so
//! distinctness is automatic). Retrieval cost of RDA is at most one above
//! optimal with high probability for single-site retrieval.

use crate::allocation::{standard_num_disks, Allocation, Placement, ReplicaSource, Replicas};
use crate::query::Bucket;
use rds_util::SplitMix64;

/// Random Duplicate Allocation over an `N × N` grid.
#[derive(Clone, Debug)]
pub struct RandomDuplicateAllocation {
    n: usize,
    copies: usize,
    placement: Placement,
    /// Precomputed copy-local disk per (bucket, copy).
    table: Vec<[u32; crate::allocation::MAX_COPIES]>,
}

impl RandomDuplicateAllocation {
    /// Generates an RDA with `copies` copies from `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `copies < 1`, `copies > MAX_COPIES`, or
    /// single-site placement is requested with `copies > n` (distinct disks
    /// would be impossible).
    pub fn new(n: usize, copies: usize, placement: Placement, seed: u64) -> Self {
        assert!(n > 0, "grid dimension must be positive");
        assert!(
            (1..=crate::allocation::MAX_COPIES).contains(&copies),
            "copies must be in 1..={}",
            crate::allocation::MAX_COPIES
        );
        if placement == Placement::SingleSite {
            assert!(
                copies <= n,
                "cannot place {copies} distinct copies on {n} disks"
            );
        }
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut table = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            let mut picks = [0u32; crate::allocation::MAX_COPIES];
            match placement {
                Placement::PerSite => {
                    for p in picks.iter_mut().take(copies) {
                        *p = rng.gen_range(0..n) as u32;
                    }
                }
                Placement::SingleSite => {
                    // Distinct disks per bucket (rejection sampling; c ≤ 4
                    // makes this cheap).
                    let mut chosen = 0usize;
                    while chosen < copies {
                        let d = rng.gen_range(0..n) as u32;
                        if !picks[..chosen].contains(&d) {
                            picks[chosen] = d;
                            chosen += 1;
                        }
                    }
                }
            }
            table.push(picks);
        }
        RandomDuplicateAllocation {
            n,
            copies,
            placement,
            table,
        }
    }

    /// Two copies, one complete copy per site (the paper's generalized
    /// setting).
    pub fn two_site(n: usize, seed: u64) -> Self {
        Self::new(n, 2, Placement::PerSite, seed)
    }
}

impl ReplicaSource for RandomDuplicateAllocation {
    fn grid_size(&self) -> usize {
        self.n
    }

    fn num_disks(&self) -> usize {
        standard_num_disks(self.placement, self.n, self.copies)
    }

    fn replicas(&self, b: Bucket) -> Replicas {
        let picks = &self.table[b.row as usize * self.n + b.col as usize];
        let mut disks = [0usize; crate::allocation::MAX_COPIES];
        for k in 0..self.copies {
            disks[k] = self.placement.global_disk(k, picks[k] as usize, self.n);
        }
        Replicas::from_slice(&disks[..self.copies])
    }
}

impl Allocation for RandomDuplicateAllocation {
    fn copies(&self) -> usize {
        self.copies
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn name(&self) -> &'static str {
        "RDA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_site_copies_are_distinct() {
        let a = RandomDuplicateAllocation::new(7, 2, Placement::SingleSite, 3);
        for row in 0..7 {
            for col in 0..7 {
                let r = a.replicas(Bucket::new(row, col));
                assert_eq!(r.len(), 2);
                assert_ne!(r.disk(0), r.disk(1));
                assert!(r.disk(0) < 7 && r.disk(1) < 7);
            }
        }
    }

    #[test]
    fn per_site_copies_land_in_their_sites() {
        let a = RandomDuplicateAllocation::two_site(10, 5);
        assert_eq!(a.num_disks(), 20);
        for row in 0..10 {
            for col in 0..10 {
                let r = a.replicas(Bucket::new(row, col));
                assert!(r.disk(0) < 10, "copy 1 in site 1");
                assert!((10..20).contains(&r.disk(1)), "copy 2 in site 2");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RandomDuplicateAllocation::two_site(8, 42);
        let b = RandomDuplicateAllocation::two_site(8, 42);
        for row in 0..8 {
            for col in 0..8 {
                let bk = Bucket::new(row, col);
                assert_eq!(a.replicas(bk), b.replicas(bk));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomDuplicateAllocation::two_site(8, 1);
        let b = RandomDuplicateAllocation::two_site(8, 2);
        let same = (0..8)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .all(|(r, c)| a.replicas(Bucket::new(r, c)) == b.replicas(Bucket::new(r, c)));
        assert!(!same);
    }

    #[test]
    fn roughly_balanced() {
        // Each of the 2n disks should hold about n/2 ... 2n buckets out of
        // n² (expected n); allow a generous band.
        let n = 20;
        let a = RandomDuplicateAllocation::two_site(n, 9);
        let map = crate::allocation::ReplicaMap::build(&a);
        for d in 0..2 * n {
            let cnt = map.buckets_on_disk(d);
            assert!(cnt > n / 4 && cnt < 3 * n, "disk {d} holds {cnt}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct copies")]
    fn too_many_single_site_copies_rejected() {
        RandomDuplicateAllocation::new(2, 3, Placement::SingleSite, 0);
    }
}
