//! Query-load generators (paper §VI-C).
//!
//! Loads are expressed through `p^i_k`, the probability that a query of
//! load `i` can optimally be retrieved in `k` disk accesses; once `k` is
//! drawn, the bucket count `|Q|` is uniform in `[(k−1)·N + 1, k·N]`:
//!
//! * **Load 1** — the natural distribution of the query type: uniform
//!   random shapes for range queries (expected size ≈ N²/4), each bucket
//!   independently with probability ½ for arbitrary queries (expected
//!   size N²/2).
//! * **Load 2** — uniform `p²_k = 1/N` (expected size ≈ N²/2).
//! * **Load 3** — geometric `p³_k = 2N / ((2N−1)·2^k)`, so
//!   `p³_k = ½·p³_(k−1)`: much smaller queries (expected size ≈ 3N/2).
//!
//! Interpretation note (DESIGN.md): for range queries under Loads 2 and 3
//! the paper does not specify how a target size maps to a rectangle; we
//! draw the row count uniformly and set the column count to the nearest
//! ratio, clamping to the grid — preserving the target size up to
//! rounding.

use crate::query::{ArbitraryQuery, Bucket, Query, RangeQuery};
use rds_util::SplitMix64;
use std::collections::HashSet;

/// Which query type to generate (paper §VI-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Rectangular wraparound range queries.
    Range,
    /// Arbitrary bucket subsets.
    Arbitrary,
}

/// The three query-size distributions of §VI-C.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Load {
    /// Natural distribution of the query type.
    Load1,
    /// Uniform over optimal access counts.
    Load2,
    /// Geometric: small queries dominate.
    Load3,
}

/// A generated query of either kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneratedQuery {
    /// A rectangular range query.
    Range(RangeQuery),
    /// An arbitrary bucket set.
    Arbitrary(ArbitraryQuery),
}

impl Query for GeneratedQuery {
    fn buckets(&self, n: usize) -> Vec<Bucket> {
        match self {
            GeneratedQuery::Range(q) => q.buckets(n),
            GeneratedQuery::Arbitrary(q) => q.buckets(n),
        }
    }

    fn len(&self, n: usize) -> usize {
        match self {
            GeneratedQuery::Range(q) => q.len(n),
            GeneratedQuery::Arbitrary(q) => q.len(n),
        }
    }
}

/// Deterministic generator of queries for an `N × N` grid.
#[derive(Clone, Debug)]
pub struct QueryGenerator {
    n: usize,
    kind: QueryKind,
    load: Load,
    rng: SplitMix64,
}

impl QueryGenerator {
    /// Creates a generator for grid dimension `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, kind: QueryKind, load: Load, seed: u64) -> QueryGenerator {
        assert!(n > 0, "grid dimension must be positive");
        QueryGenerator {
            n,
            kind,
            load,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Grid dimension.
    pub fn grid_size(&self) -> usize {
        self.n
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> GeneratedQuery {
        match (self.kind, self.load) {
            (QueryKind::Range, Load::Load1) => GeneratedQuery::Range(self.natural_range()),
            (QueryKind::Arbitrary, Load::Load1) => {
                GeneratedQuery::Arbitrary(self.natural_arbitrary())
            }
            (kind, load) => {
                let k = match load {
                    Load::Load2 => self.rng.gen_range(1..=self.n),
                    Load::Load3 => self.geometric_k(),
                    Load::Load1 => unreachable!("handled above"),
                };
                let q = self
                    .rng
                    .gen_range((k - 1) * self.n + 1..=k * self.n)
                    .min(self.n * self.n);
                match kind {
                    QueryKind::Range => GeneratedQuery::Range(self.range_of_size(q)),
                    QueryKind::Arbitrary => GeneratedQuery::Arbitrary(self.arbitrary_of_size(q)),
                }
            }
        }
    }

    /// Generates a batch of queries.
    pub fn take(&mut self, count: usize) -> Vec<GeneratedQuery> {
        (0..count).map(|_| self.next_query()).collect()
    }

    /// Load-1 range query: uniform over all `(i, j, r, c)`.
    fn natural_range(&mut self) -> RangeQuery {
        RangeQuery::new(
            self.rng.gen_range(0..self.n),
            self.rng.gen_range(0..self.n),
            self.rng.gen_range(1..=self.n),
            self.rng.gen_range(1..=self.n),
        )
    }

    /// Load-1 arbitrary query: each bucket independently with p = 1/2.
    fn natural_arbitrary(&mut self) -> ArbitraryQuery {
        let mut buckets = Vec::with_capacity(self.n * self.n / 2);
        for row in 0..self.n as u32 {
            for col in 0..self.n as u32 {
                if self.rng.gen_bool(0.5) {
                    buckets.push(Bucket::new(row, col));
                }
            }
        }
        if buckets.is_empty() {
            buckets.push(Bucket::new(
                self.rng.gen_range(0..self.n) as u32,
                self.rng.gen_range(0..self.n) as u32,
            ));
        }
        ArbitraryQuery::new(buckets)
    }

    /// Samples `k` with `p_k = 2N / ((2N−1)·2^k)`, truncated at `N`.
    fn geometric_k(&mut self) -> usize {
        let mut k = 1;
        while k < self.n && self.rng.gen_bool(0.5) {
            k += 1;
        }
        k
    }

    /// A range query of approximately `q` buckets.
    fn range_of_size(&mut self, q: usize) -> RangeQuery {
        let r = self.rng.gen_range(1..=self.n);
        let c = (q.div_ceil(r)).clamp(1, self.n);
        RangeQuery::new(
            self.rng.gen_range(0..self.n),
            self.rng.gen_range(0..self.n),
            r,
            c,
        )
    }

    /// An arbitrary query of exactly `q` distinct buckets.
    fn arbitrary_of_size(&mut self, q: usize) -> ArbitraryQuery {
        let total = self.n * self.n;
        let q = q.min(total);
        if q * 2 <= total {
            // Rejection sampling is cheap below half density.
            let mut chosen = HashSet::with_capacity(q);
            while chosen.len() < q {
                chosen.insert(self.rng.gen_range(0..total));
            }
            ArbitraryQuery::new(
                chosen
                    .into_iter()
                    .map(|i| Bucket::new((i / self.n) as u32, (i % self.n) as u32))
                    .collect(),
            )
        } else {
            // Dense query: partial Fisher-Yates over all indices.
            let mut idx: Vec<usize> = (0..total).collect();
            for i in 0..q {
                let j = self.rng.gen_range(i..total);
                idx.swap(i, j);
            }
            ArbitraryQuery::new(
                idx[..q]
                    .iter()
                    .map(|&i| Bucket::new((i / self.n) as u32, (i % self.n) as u32))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_size(n: usize, kind: QueryKind, load: Load, samples: usize) -> f64 {
        let mut g = QueryGenerator::new(n, kind, load, 7);
        let total: usize = (0..samples).map(|_| g.next_query().len(n)).sum();
        total as f64 / samples as f64
    }

    #[test]
    fn load1_range_mean_is_quarter_grid() {
        // Expected size ((N+1)/2)² ≈ N²/4.
        let n = 20;
        let mean = mean_size(n, QueryKind::Range, Load::Load1, 2000);
        let expect = ((n as f64 + 1.0) / 2.0).powi(2);
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn load1_arbitrary_mean_is_half_grid() {
        let n = 20;
        let mean = mean_size(n, QueryKind::Arbitrary, Load::Load1, 500);
        let expect = (n * n) as f64 / 2.0;
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn load2_arbitrary_mean_is_half_grid() {
        let n = 20;
        let mean = mean_size(n, QueryKind::Arbitrary, Load::Load2, 2000);
        let expect = (n * n) as f64 / 2.0;
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn load3_arbitrary_mean_is_three_halves_n() {
        let n = 20;
        let mean = mean_size(n, QueryKind::Arbitrary, Load::Load3, 4000);
        let expect = 1.5 * n as f64;
        assert!(
            (mean - expect).abs() < 0.25 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn load3_much_smaller_than_load2() {
        let n = 30;
        let m2 = mean_size(n, QueryKind::Arbitrary, Load::Load2, 500);
        let m3 = mean_size(n, QueryKind::Arbitrary, Load::Load3, 500);
        assert!(m3 * 5.0 < m2, "load3 {m3} should be far below load2 {m2}");
    }

    #[test]
    fn arbitrary_queries_have_exact_size() {
        let n = 15;
        let mut g = QueryGenerator::new(n, QueryKind::Arbitrary, Load::Load2, 3);
        for _ in 0..100 {
            let q = g.next_query();
            let b = q.buckets(n);
            let unique: HashSet<_> = b.iter().collect();
            assert_eq!(unique.len(), b.len(), "buckets must be distinct");
            assert!((1..=n * n).contains(&b.len()));
        }
    }

    #[test]
    fn range_queries_fit_grid() {
        let n = 9;
        for load in [Load::Load1, Load::Load2, Load::Load3] {
            let mut g = QueryGenerator::new(n, QueryKind::Range, load, 11);
            for _ in 0..200 {
                if let GeneratedQuery::Range(r) = g.next_query() {
                    assert!(r.rows >= 1 && r.rows <= n);
                    assert!(r.cols >= 1 && r.cols <= n);
                    assert!(r.i < n && r.j < n);
                } else {
                    panic!("range generator produced arbitrary query");
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = QueryGenerator::new(10, QueryKind::Arbitrary, Load::Load3, 5);
        let mut b = QueryGenerator::new(10, QueryKind::Arbitrary, Load::Load3, 5);
        for _ in 0..20 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn take_produces_count() {
        let mut g = QueryGenerator::new(6, QueryKind::Range, Load::Load2, 1);
        assert_eq!(g.take(17).len(), 17);
    }

    #[test]
    fn dense_arbitrary_sampling_path() {
        // Force the Fisher-Yates branch with a tiny grid and big k.
        let mut g = QueryGenerator::new(3, QueryKind::Arbitrary, Load::Load2, 2);
        for _ in 0..50 {
            let q = g.next_query();
            assert!(q.len(3) <= 9);
        }
    }
}
