//! Dependent periodic allocation (paper §VI-A, third scheme).
//!
//! A two-dimensional allocation is *periodic* if
//! `f(i, j) = (a₁·i + a₂·j) mod N` with `gcd(aᵢ, N) = 1` and `aᵢ ≠ 0`
//! (Altiparmak & Tosun, "Equivalent disk allocations", TPDS 2012). The
//! paper's dependent scheme uses a periodic first copy with low additive
//! error and a *shifted* second copy:
//! `g(i, j) = (f(i, j) + m) mod N`, `1 ≤ m ≤ N − 1`.
//!
//! Substitution note (see DESIGN.md): the reference tables of best
//! coefficients from the TPDS paper are not available, so the first copy
//! uses the golden-ratio multiplier — the canonical low-discrepancy lattice
//! choice — adjusted to be coprime with `N`. For small `N` an exhaustive
//! search ([`best_multiplier`]) over all coprime multipliers picks the one
//! minimizing the worst-case additive error over every range-query shape.

use crate::allocation::{standard_num_disks, Allocation, Placement, ReplicaSource, Replicas};
use crate::query::Bucket;

/// Greatest common divisor.
pub(crate) fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The multiplier `round(N / φ)` adjusted upward to the nearest value
/// coprime with `N` (and at least 1). Golden-ratio lattices give provably
/// low discrepancy for range queries.
pub fn golden_ratio_multiplier(n: usize) -> usize {
    if n == 1 {
        return 0; // single disk: the multiplier is irrelevant
    }
    let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
    let base = ((n as f64 / phi).round() as usize).clamp(1, n - 1);
    // Search outward for a coprime multiplier.
    for delta in 0..n {
        for cand in [base.saturating_sub(delta), base + delta] {
            if (1..n).contains(&cand) && gcd(cand, n) == 1 {
                return cand;
            }
        }
    }
    1
}

/// Exhaustively finds the multiplier `a` (with `a₁ = 1`, `a₂ = a`) whose
/// periodic allocation minimizes the worst-case additive error over all
/// range-query shapes on an `n × n` grid. `O(n⁴)` — intended for small `n`
/// and for validating [`golden_ratio_multiplier`].
pub fn best_multiplier(n: usize) -> usize {
    let mut best = (usize::MAX, 1);
    for a in 1..n {
        if gcd(a, n) != 1 {
            continue;
        }
        let err = crate::metrics::max_additive_error_lattice(n, 1, a);
        if err < best.0 {
            best = (err, a);
        }
    }
    best.1
}

/// A dependent periodic replicated allocation: first copy
/// `f(i,j) = (a₁·i + a₂·j) mod N`; copy `k` is the shifted lattice
/// `(f + shift_k) mod N` (`shift_0 = 0`). The paper evaluates `c = 2`;
/// the general model supports any `c ≤ MAX_COPIES`
/// ([`DependentPeriodicAllocation::with_copies`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DependentPeriodicAllocation {
    n: usize,
    a1: usize,
    a2: usize,
    copies: usize,
    shifts: [usize; crate::allocation::MAX_COPIES],
    placement: Placement,
}

impl DependentPeriodicAllocation {
    /// Creates the two-copy scheme with explicit coefficients.
    ///
    /// # Panics
    /// Panics if the periodicity conditions are violated (`aᵢ = 0` or
    /// `gcd(aᵢ, N) ≠ 1` for `N > 1`) or `shift` is outside `1..N`.
    pub fn with_coefficients(
        n: usize,
        a1: usize,
        a2: usize,
        shift: usize,
        placement: Placement,
    ) -> Self {
        assert!(n > 1, "need at least 2 disks for a shifted copy");
        assert!(a1 != 0 && gcd(a1, n) == 1, "a1={a1} violates gcd(a1,N)=1");
        assert!(a2 != 0 && gcd(a2, n) == 1, "a2={a2} violates gcd(a2,N)=1");
        assert!((1..n).contains(&shift), "shift must be in 1..N");
        let mut shifts = [0usize; crate::allocation::MAX_COPIES];
        shifts[1] = shift;
        DependentPeriodicAllocation {
            n,
            a1,
            a2,
            copies: 2,
            shifts,
            placement,
        }
    }

    /// The default instantiation used by the experiment harness: `a₁ = 1`,
    /// `a₂` from the golden-ratio rule, shift `⌈N/2⌉` adjusted to `≥ 1`.
    pub fn new(n: usize, placement: Placement) -> Self {
        let a2 = golden_ratio_multiplier(n);
        let shift = (n / 2).max(1);
        Self::with_coefficients(n, 1, a2, shift, placement)
    }

    /// A `c`-copy variant: copy `k` is shifted by `k · ⌊N/c⌋` — the `c`
    /// shifts are pairwise distinct, so on a single site every bucket's
    /// replicas land on `c` distinct disks.
    ///
    /// # Panics
    /// Panics unless `2 ≤ copies ≤ MAX_COPIES` and `n ≥ copies`.
    pub fn with_copies(n: usize, copies: usize, placement: Placement) -> Self {
        assert!(
            (2..=crate::allocation::MAX_COPIES).contains(&copies),
            "copies must be in 2..={}",
            crate::allocation::MAX_COPIES
        );
        assert!(
            n >= copies,
            "need at least {copies} disks for {copies} distinct copies"
        );
        let a2 = golden_ratio_multiplier(n);
        let step = (n / copies).max(1);
        let mut shifts = [0usize; crate::allocation::MAX_COPIES];
        for (k, s) in shifts.iter_mut().enumerate().take(copies) {
            *s = (k * step) % n;
        }
        DependentPeriodicAllocation {
            n,
            a1: 1,
            a2,
            copies,
            shifts,
            placement,
        }
    }

    /// Copy-1 disk for bucket `b` (the lattice function `f`).
    #[inline]
    pub fn f(&self, b: Bucket) -> usize {
        (self.a1 * b.row as usize + self.a2 * b.col as usize) % self.n
    }

    /// Copy-2 disk within its own group (the shifted lattice `g`).
    #[inline]
    pub fn g(&self, b: Bucket) -> usize {
        (self.f(b) + self.shifts[1]) % self.n
    }

    /// Copy-`k` disk within its own group.
    #[inline]
    pub fn copy(&self, k: usize, b: Bucket) -> usize {
        debug_assert!(k < self.copies);
        (self.f(b) + self.shifts[k]) % self.n
    }
}

impl ReplicaSource for DependentPeriodicAllocation {
    fn grid_size(&self) -> usize {
        self.n
    }

    fn num_disks(&self) -> usize {
        standard_num_disks(self.placement, self.n, self.copies)
    }

    fn replicas(&self, b: Bucket) -> Replicas {
        let mut disks = [0usize; crate::allocation::MAX_COPIES];
        for (k, d) in disks.iter_mut().enumerate().take(self.copies) {
            *d = self.placement.global_disk(k, self.copy(k, b), self.n);
        }
        Replicas::from_slice(&disks[..self.copies])
    }
}

impl Allocation for DependentPeriodicAllocation {
    fn copies(&self) -> usize {
        self.copies
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn name(&self) -> &'static str {
        "Dependent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplicaMap;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn golden_multiplier_is_coprime() {
        for n in 2..60 {
            let a = golden_ratio_multiplier(n);
            assert!(a >= 1 && a < n, "n={n} a={a}");
            assert_eq!(gcd(a, n), 1, "n={n} a={a}");
        }
    }

    #[test]
    fn copies_are_balanced() {
        let alloc = DependentPeriodicAllocation::new(7, Placement::PerSite);
        let map = ReplicaMap::build(&alloc);
        for d in 0..14 {
            assert_eq!(map.buckets_on_disk(d), 7, "disk {d}");
        }
    }

    #[test]
    fn single_site_copies_differ() {
        let alloc = DependentPeriodicAllocation::new(9, Placement::SingleSite);
        for row in 0..9 {
            for col in 0..9 {
                let r = alloc.replicas(Bucket::new(row, col));
                assert_ne!(r.disk(0), r.disk(1), "shifted copy must differ");
            }
        }
    }

    #[test]
    fn shift_relation_holds() {
        let alloc =
            DependentPeriodicAllocation::with_coefficients(8, 1, 3, 2, Placement::SingleSite);
        for row in 0..8 {
            for col in 0..8 {
                let b = Bucket::new(row, col);
                assert_eq!(alloc.g(b), (alloc.f(b) + 2) % 8);
            }
        }
    }

    #[test]
    fn periodicity_property() {
        // f(i1+i2, j1+j2) = f(i1,j1) + f(i2,j2) mod N.
        let alloc = DependentPeriodicAllocation::new(11, Placement::SingleSite);
        for (i1, j1, i2, j2) in [
            (0usize, 1usize, 3usize, 2usize),
            (5, 5, 4, 9),
            (10, 0, 0, 10),
        ] {
            let a = alloc.f(Bucket::new(i1 as u32, j1 as u32));
            let b = alloc.f(Bucket::new(i2 as u32, j2 as u32));
            let c = alloc.f(Bucket::new(
                ((i1 + i2) % 11) as u32,
                ((j1 + j2) % 11) as u32,
            ));
            assert_eq!((a + b) % 11, c);
        }
    }

    #[test]
    fn three_copy_variant_is_balanced_and_distinct() {
        let alloc = DependentPeriodicAllocation::with_copies(9, 3, Placement::SingleSite);
        assert_eq!(Allocation::copies(&alloc), 3);
        assert_eq!(alloc.num_disks(), 9);
        let map = ReplicaMap::build(&alloc);
        for d in 0..9 {
            assert_eq!(map.buckets_on_disk(d), 27, "3 copies × 9 per disk");
        }
        for row in 0..9u32 {
            for col in 0..9u32 {
                let r = alloc.replicas(Bucket::new(row, col));
                assert_eq!(r.len(), 3);
                let set: std::collections::HashSet<usize> = r.iter().collect();
                assert_eq!(set.len(), 3, "copies must be on distinct disks");
            }
        }
    }

    #[test]
    fn four_copy_per_site_variant() {
        let alloc = DependentPeriodicAllocation::with_copies(5, 4, Placement::PerSite);
        assert_eq!(alloc.num_disks(), 20);
        for row in 0..5u32 {
            for col in 0..5u32 {
                let r = alloc.replicas(Bucket::new(row, col));
                for k in 0..4 {
                    let d = r.disk(k);
                    assert!((k * 5..(k + 1) * 5).contains(&d), "copy {k} in its site");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "copies must be in")]
    fn too_many_copies_rejected() {
        DependentPeriodicAllocation::with_copies(8, 5, Placement::PerSite);
    }

    #[test]
    fn best_multiplier_beats_or_matches_golden_on_small_grids() {
        for n in [5usize, 7, 8] {
            let best = best_multiplier(n);
            let golden = golden_ratio_multiplier(n);
            let be = crate::metrics::max_additive_error_lattice(n, 1, best);
            let ge = crate::metrics::max_additive_error_lattice(n, 1, golden);
            assert!(
                be <= ge,
                "n={n}: best {best}({be}) vs golden {golden}({ge})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gcd")]
    fn non_coprime_coefficient_rejected() {
        DependentPeriodicAllocation::with_coefficients(8, 2, 3, 1, Placement::SingleSite);
    }

    #[test]
    #[should_panic(expected = "shift")]
    fn zero_shift_rejected() {
        DependentPeriodicAllocation::with_coefficients(8, 1, 3, 0, Placement::SingleSite);
    }
}
