//! Threshold-based declustering (Tosun, *Information Sciences* 2007) and
//! orthogonal complements of arbitrary balanced first copies.
//!
//! A single-copy declustering has **threshold** `T` when every range query
//! with at most `T` buckets is retrieved optimally (one access per disk).
//! The threshold-based scheme of \[44\] — the paper's first copy for its
//! Orthogonal allocation — picks the allocation maximizing `T`.
//!
//! This module implements:
//!
//! * [`threshold_of`] — the exact threshold of any single-copy allocation
//!   (exhaustive over shapes and anchors; meant for the moderate `N` of
//!   the paper's experiments);
//! * [`ThresholdAllocation`] — a single-copy scheme choosing, among
//!   periodic lattices, the one with the largest threshold (ties broken
//!   by worst-case additive error);
//! * [`orthogonal_complement`] — a second copy for *any* balanced first
//!   copy such that every (copy-1 disk, copy-2 disk) pair appears exactly
//!   once;
//! * [`ThresholdOrthogonalAllocation`] — the two combined: the paper's
//!   Orthogonal scheme with a threshold-based first copy.

use crate::allocation::{standard_num_disks, Allocation, Placement, ReplicaSource, Replicas};
use crate::metrics::max_additive_error_lattice;
use crate::periodic::gcd;
use crate::query::Bucket;

/// Exact threshold of the single-copy allocation `disk_of` on an `n × n`
/// wraparound grid: the largest `T ≤ n` such that **every** range query
/// with at most `T` buckets touches as many distinct disks as it has
/// buckets.
///
/// Complexity `O(n³ · T)` over anchors × shapes; fine for the `n ≤ ~30`
/// used in scheme construction.
pub fn threshold_of<F>(n: usize, disk_of: F) -> usize
where
    F: Fn(Bucket) -> usize,
{
    let mut counts = vec![0u32; n];
    let mut threshold = n;
    for r in 1..=n {
        for c in 1..=n {
            let area = r * c;
            if area > n || area > threshold {
                continue;
            }
            for i in 0..n {
                'anchor: for j in 0..n {
                    counts.iter_mut().for_each(|x| *x = 0);
                    for dr in 0..r {
                        for dc in 0..c {
                            let b = Bucket::new(((i + dr) % n) as u32, ((j + dc) % n) as u32);
                            let d = disk_of(b);
                            counts[d] += 1;
                            if counts[d] > 1 {
                                // This query of `area` buckets is
                                // suboptimal: the threshold is below it.
                                threshold = threshold.min(area - 1);
                                break 'anchor;
                            }
                        }
                    }
                }
            }
        }
    }
    threshold
}

/// A single-copy threshold-based declustering: the periodic lattice
/// `f(i, j) = (i + a·j) mod N` whose threshold is maximal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThresholdAllocation {
    n: usize,
    /// The chosen column multiplier.
    pub multiplier: usize,
    /// The achieved threshold.
    pub threshold: usize,
}

impl ThresholdAllocation {
    /// Searches all coprime lattice multipliers for the largest threshold.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ThresholdAllocation {
        assert!(n > 0, "grid dimension must be positive");
        if n == 1 {
            return ThresholdAllocation {
                n,
                multiplier: 0,
                threshold: 1,
            };
        }
        let mut best: Option<(usize, usize, usize)> = None; // (thr, -err, a)
        for a in 1..n {
            if gcd(a, n) != 1 {
                continue;
            }
            let thr = threshold_of(n, |b| (b.row as usize + a * b.col as usize) % n);
            let err = max_additive_error_lattice(n, 1, a);
            let better = match best {
                None => true,
                Some((bt, be, _)) => thr > bt || (thr == bt && err < be),
            };
            if better {
                best = Some((thr, err, a));
            }
        }
        let (threshold, _, multiplier) = best.expect("n >= 2 has a coprime multiplier");
        ThresholdAllocation {
            n,
            multiplier,
            threshold,
        }
    }

    /// Grid dimension.
    pub fn grid_size(&self) -> usize {
        self.n
    }

    /// Disk of bucket `b` (single copy).
    #[inline]
    pub fn disk_of(&self, b: Bucket) -> usize {
        (b.row as usize + self.multiplier * b.col as usize) % self.n
    }

    /// The full first-copy table in row-major order.
    pub fn table(&self) -> Vec<u32> {
        let mut t = Vec::with_capacity(self.n * self.n);
        for row in 0..self.n as u32 {
            for col in 0..self.n as u32 {
                t.push(self.disk_of(Bucket::new(row, col)) as u32);
            }
        }
        t
    }
}

/// Builds a second copy for an arbitrary **balanced** first copy (each
/// disk holds exactly `N` buckets) such that every ordered
/// (copy-1 disk, copy-2 disk) pair appears exactly once.
///
/// Construction: group the buckets by first-copy disk — `N` groups of `N`
/// buckets — and assign the second-copy disks `0..N` within each group.
/// To keep the second copy useful as a declustering in its own right, the
/// buckets of each group are assigned in column order with a rotating
/// offset, spreading consecutive columns over distinct disks.
///
/// # Panics
///
/// Panics if `first` is not a balanced allocation over `n` disks.
pub fn orthogonal_complement(n: usize, first: &[u32]) -> Vec<u32> {
    assert_eq!(first.len(), n * n, "first copy must cover the grid");
    let mut groups: Vec<Vec<usize>> = vec![Vec::with_capacity(n); n];
    for (idx, &d) in first.iter().enumerate() {
        assert!((d as usize) < n, "disk {d} out of range");
        groups[d as usize].push(idx);
    }
    for (d, g) in groups.iter().enumerate() {
        assert_eq!(
            g.len(),
            n,
            "disk {d} holds {} buckets, expected {n}",
            g.len()
        );
    }
    let mut second = vec![0u32; n * n];
    for (d, group) in groups.iter().enumerate() {
        // `group` is in row-major order; rotate by the group's disk id so
        // that neighbouring groups use different disks for neighbouring
        // buckets.
        for (rank, &idx) in group.iter().enumerate() {
            second[idx] = ((rank + d) % n) as u32;
        }
    }
    second
}

/// The paper's Orthogonal allocation with a threshold-based first copy:
/// copy 1 from [`ThresholdAllocation`], copy 2 its orthogonal complement.
#[derive(Clone, Debug)]
pub struct ThresholdOrthogonalAllocation {
    n: usize,
    placement: Placement,
    first: Vec<u32>,
    second: Vec<u32>,
    /// Threshold achieved by the first copy.
    pub threshold: usize,
}

impl ThresholdOrthogonalAllocation {
    /// Builds the scheme for an `n × n` grid.
    pub fn new(n: usize, placement: Placement) -> Self {
        let base = ThresholdAllocation::new(n);
        let first = base.table();
        let second = orthogonal_complement(n, &first);
        ThresholdOrthogonalAllocation {
            n,
            placement,
            first,
            second,
            threshold: base.threshold,
        }
    }

    /// Copy-1 disk (within its group).
    #[inline]
    pub fn f(&self, b: Bucket) -> usize {
        self.first[b.row as usize * self.n + b.col as usize] as usize
    }

    /// Copy-2 disk (within its group).
    #[inline]
    pub fn g(&self, b: Bucket) -> usize {
        self.second[b.row as usize * self.n + b.col as usize] as usize
    }
}

impl ReplicaSource for ThresholdOrthogonalAllocation {
    fn grid_size(&self) -> usize {
        self.n
    }

    fn num_disks(&self) -> usize {
        standard_num_disks(self.placement, self.n, 2)
    }

    fn replicas(&self, b: Bucket) -> Replicas {
        let d0 = self.placement.global_disk(0, self.f(b), self.n);
        let d1 = self.placement.global_disk(1, self.g(b), self.n);
        Replicas::from_slice(&[d0, d1])
    }
}

impl Allocation for ThresholdOrthogonalAllocation {
    fn copies(&self) -> usize {
        2
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn name(&self) -> &'static str {
        "Threshold-Orthogonal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplicaMap;
    use std::collections::HashSet;

    #[test]
    fn threshold_of_column_allocation_is_one() {
        // All buckets of a column on one disk: any 2-bucket vertical query
        // is suboptimal, but horizontal pairs are fine → threshold 1? A
        // 1x2 query hits two distinct columns → optimal; 2x1 hits one
        // disk twice → threshold is 1.
        let t = threshold_of(5, |b| b.col as usize);
        assert_eq!(t, 1);
    }

    #[test]
    fn threshold_of_good_lattice_is_larger() {
        let n = 13;
        let a = crate::periodic::golden_ratio_multiplier(n);
        let t = threshold_of(n, |b| (b.row as usize + a * b.col as usize) % n);
        assert!(t >= 4, "threshold {t} unexpectedly small for n={n}");
    }

    #[test]
    fn threshold_allocation_maximizes() {
        for n in [5usize, 7, 8, 13] {
            let best = ThresholdAllocation::new(n);
            for a in 1..n {
                if gcd(a, n) != 1 {
                    continue;
                }
                let t = threshold_of(n, |b| (b.row as usize + a * b.col as usize) % n);
                assert!(
                    best.threshold >= t,
                    "n={n}: a={a} has threshold {t} > chosen {}",
                    best.threshold
                );
            }
        }
    }

    #[test]
    fn threshold_allocation_is_balanced() {
        let alloc = ThresholdAllocation::new(9);
        let mut counts = [0usize; 9];
        for d in alloc.table() {
            counts[d as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 9));
    }

    #[test]
    fn complement_is_orthogonal_and_balanced() {
        for n in [4usize, 7, 10] {
            let base = ThresholdAllocation::new(n);
            let first = base.table();
            let second = orthogonal_complement(n, &first);
            let mut pairs = HashSet::new();
            let mut counts = vec![0usize; n];
            for i in 0..n * n {
                assert!(pairs.insert((first[i], second[i])), "n={n} pair repeated");
                counts[second[i] as usize] += 1;
            }
            assert_eq!(pairs.len(), n * n);
            assert!(counts.iter().all(|&c| c == n), "second copy balanced");
        }
    }

    #[test]
    #[should_panic(expected = "expected 4")]
    fn complement_rejects_unbalanced_first_copy() {
        let first = vec![0u32; 16]; // everything on disk 0
        orthogonal_complement(4, &first);
    }

    #[test]
    fn threshold_orthogonal_allocation_properties() {
        let alloc = ThresholdOrthogonalAllocation::new(7, Placement::PerSite);
        assert_eq!(alloc.num_disks(), 14);
        assert_eq!(Allocation::copies(&alloc), 2);
        assert!(alloc.threshold >= 2);
        let map = ReplicaMap::build(&alloc);
        for d in 0..14 {
            assert_eq!(map.buckets_on_disk(d), 7, "disk {d}");
        }
        // Pairwise orthogonality through the public interface.
        let mut pairs = HashSet::new();
        for row in 0..7u32 {
            for col in 0..7u32 {
                let r = map.replicas(Bucket::new(row, col));
                assert!(pairs.insert((r.disk(0), r.disk(1))));
            }
        }
        assert_eq!(pairs.len(), 49);
    }

    #[test]
    fn single_disk_grid_threshold() {
        let alloc = ThresholdAllocation::new(1);
        assert_eq!(alloc.threshold, 1);
        assert_eq!(alloc.disk_of(Bucket::new(0, 0)), 0);
    }
}
