//! Orthogonal allocation (paper §VI-A, second scheme).
//!
//! Two allocations are *orthogonal* when, considering the pair of disks
//! each bucket is stored at, every pair appears exactly once: an `N × N`
//! grid has `N²` buckets and `N²` ordered disk pairs, so a perfect cover is
//! possible.
//!
//! Construction: both copies are periodic lattices
//! `f(i, j) = (i + a·j) mod N` and `g(i, j) = (i + b·j) mod N`. The joint
//! map `(i, j) → (f, g)` is the linear map with matrix `[[1, a], [1, b]]`,
//! which is a bijection of `Z_N²` — i.e. the copies are orthogonal — iff
//! its determinant `b − a` is invertible mod `N`.
//!
//! Substitution note (see DESIGN.md): the paper's first copy is the
//! threshold-based declustering of Tosun (Information Sciences 2007),
//! whose construction tables are not available; a golden-ratio lattice is
//! used instead. The experiments depend on the orthogonality property,
//! which this construction guarantees (and tests verify exhaustively).

use crate::allocation::{standard_num_disks, Allocation, Placement, ReplicaSource, Replicas};
use crate::periodic::{gcd, golden_ratio_multiplier};
use crate::query::Bucket;

/// An orthogonal replicated allocation: copy 1 at `(i + a·j) mod N`, copy 2
/// at `(i + b·j) mod N` with `gcd(b − a, N) = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrthogonalAllocation {
    n: usize,
    /// Copy-1 column multiplier.
    pub a: usize,
    /// Copy-2 column multiplier.
    pub b: usize,
    /// Whether copy 2 uses the column lattice `g(i, j) = j` (fallback for
    /// grids where no row-style multiplier exists, e.g. `N = 2`).
    column_fallback: bool,
    placement: Placement,
}

impl OrthogonalAllocation {
    /// Builds the orthogonal allocation for an `n × n` grid.
    ///
    /// Picks `a` by the golden-ratio rule and searches for the nearest `b`
    /// with `gcd(b − a, n) = 1` and `gcd(b, n) = 1`; falls back to the
    /// column lattice `g(i, j) = j` (matrix `[[1, a], [0, 1]]`, determinant
    /// 1) when no such `b` exists.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize, placement: Placement) -> Self {
        assert!(n >= 2, "orthogonal allocation needs at least 2 disks");
        let a = golden_ratio_multiplier(n);
        for delta in 1..n {
            for cand in [a + delta, a.wrapping_sub(delta)] {
                if (1..n).contains(&cand)
                    && cand != a
                    && gcd(cand.abs_diff(a), n) == 1
                    && gcd(cand, n) == 1
                {
                    return OrthogonalAllocation {
                        n,
                        a,
                        b: cand,
                        column_fallback: false,
                        placement,
                    };
                }
            }
        }
        OrthogonalAllocation {
            n,
            a,
            b: 0,
            column_fallback: true,
            placement,
        }
    }

    /// The 7 × 7 instance used in the worked examples (paper Fig. 2), with
    /// one copy per site over 14 disks.
    pub fn paper_7x7() -> Self {
        Self::new(7, Placement::PerSite)
    }

    /// Copy-1 disk (within its group) for bucket `b`.
    #[inline]
    pub fn f(&self, bk: Bucket) -> usize {
        (bk.row as usize + self.a * bk.col as usize) % self.n
    }

    /// Copy-2 disk (within its group) for bucket `b`.
    #[inline]
    pub fn g(&self, bk: Bucket) -> usize {
        if self.column_fallback {
            bk.col as usize
        } else {
            (bk.row as usize + self.b * bk.col as usize) % self.n
        }
    }
}

impl ReplicaSource for OrthogonalAllocation {
    fn grid_size(&self) -> usize {
        self.n
    }

    fn num_disks(&self) -> usize {
        standard_num_disks(self.placement, self.n, 2)
    }

    fn replicas(&self, b: Bucket) -> Replicas {
        let d0 = self.placement.global_disk(0, self.f(b), self.n);
        let d1 = self.placement.global_disk(1, self.g(b), self.n);
        Replicas::from_slice(&[d0, d1])
    }
}

impl Allocation for OrthogonalAllocation {
    fn copies(&self) -> usize {
        2
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn name(&self) -> &'static str {
        "Orthogonal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplicaMap;
    use std::collections::HashSet;

    /// Every (copy-1 disk, copy-2 disk) pair appears exactly once.
    fn assert_orthogonal(n: usize) {
        let alloc = OrthogonalAllocation::new(n, Placement::SingleSite);
        let mut seen = HashSet::new();
        for row in 0..n as u32 {
            for col in 0..n as u32 {
                let b = Bucket::new(row, col);
                assert!(
                    seen.insert((alloc.f(b), alloc.g(b))),
                    "pair ({}, {}) repeated for n={n}",
                    alloc.f(b),
                    alloc.g(b)
                );
            }
        }
        assert_eq!(seen.len(), n * n);
    }

    #[test]
    fn orthogonality_holds_for_small_grids() {
        for n in 2..=30 {
            assert_orthogonal(n);
        }
    }

    #[test]
    fn orthogonality_holds_for_100() {
        assert_orthogonal(100);
    }

    #[test]
    fn copies_are_balanced() {
        let alloc = OrthogonalAllocation::new(7, Placement::PerSite);
        let map = ReplicaMap::build(&alloc);
        for d in 0..14 {
            assert_eq!(map.buckets_on_disk(d), 7, "disk {d}");
        }
    }

    #[test]
    fn paper_7x7_shape() {
        let alloc = OrthogonalAllocation::paper_7x7();
        assert_eq!(alloc.grid_size(), 7);
        assert_eq!(alloc.num_disks(), 14);
        assert_eq!(alloc.copies(), 2);
    }

    #[test]
    fn single_site_copies_differ() {
        // Orthogonality with distinct lattices implies f != g whenever
        // (b-a)*j != 0 mod n; for j = 0 both copies give disk i. The
        // single-site placement is only used for the basic problem where
        // identical replicas are harmless (the bucket is simply stored
        // once); verify that at least most buckets get two distinct disks.
        let n = 7;
        let alloc = OrthogonalAllocation::new(n, Placement::SingleSite);
        let mut distinct = 0;
        for row in 0..n as u32 {
            for col in 0..n as u32 {
                let r = alloc.replicas(Bucket::new(row, col));
                if r.disk(0) != r.disk(1) {
                    distinct += 1;
                }
            }
        }
        assert!(
            distinct >= n * (n - 1),
            "only {distinct} buckets replicated"
        );
    }

    #[test]
    fn n2_uses_column_fallback() {
        let alloc = OrthogonalAllocation::new(2, Placement::SingleSite);
        assert!(alloc.column_fallback);
        assert_orthogonal(2);
    }
}
