//! # rds-decluster
//!
//! Replicated declustering substrate: the data layout half of the optimal
//! response time retrieval problem.
//!
//! A *declustering* partitions an `N × N` grid of buckets across `N` disks;
//! a *replicated* declustering stores `c` copies of every bucket on
//! different disks (or different sites). This crate implements the three
//! allocation schemes evaluated by the paper (§VI-A):
//!
//! * [`rda::RandomDuplicateAllocation`] — each bucket on two randomly
//!   chosen disks (Sanders et al., SODA 2000).
//! * [`periodic::DependentPeriodicAllocation`] — lattice allocations
//!   `f(i, j) = (a₁·i + a₂·j) mod N` with a shifted second copy.
//! * [`orthogonal::OrthogonalAllocation`] — two lattice copies whose disk
//!   pairs cover every `(disk, disk)` combination exactly once.
//!
//! plus the paper's query types (§VI-B: wraparound range queries and
//! arbitrary queries) and query-load generators (§VI-C: Loads 1–3).
//!
//! ## Example
//!
//! ```
//! use rds_decluster::allocation::{Placement, ReplicaMap, ReplicaSource};
//! use rds_decluster::orthogonal::OrthogonalAllocation;
//! use rds_decluster::query::{Bucket, Query, RangeQuery};
//!
//! // A 7x7 grid, one copy per site (14 disks total).
//! let alloc = OrthogonalAllocation::new(7, Placement::PerSite);
//! let map = ReplicaMap::build(&alloc);
//! let q = RangeQuery::new(0, 0, 3, 2);
//! for bucket in q.buckets(7) {
//!     let replicas = map.replicas(bucket);
//!     assert_eq!(replicas.len(), 2);
//!     assert!(replicas.disk(0) < 7);       // copy 1 at site 1
//!     assert!(replicas.disk(1) >= 7);      // copy 2 at site 2
//! }
//! ```

pub mod allocation;
pub mod grid;
pub mod load;
pub mod metrics;
pub mod orthogonal;
pub mod periodic;
pub mod query;
pub mod rda;
pub mod threshold;

pub use allocation::{Allocation, Placement, ReplicaMap, Replicas};
pub use load::{Load, QueryGenerator, QueryKind};
pub use query::{ArbitraryQuery, Bucket, Query, RangeQuery};
