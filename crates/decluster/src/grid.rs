//! The `N × N` bucket grid.
//!
//! The paper's data space is a two-dimensional grid of `N × N` buckets
//! declustered over `N` disks, with wraparound semantics for range queries
//! ("we assume a wraparound grid consistent with the choice of disk
//! allocations", §VI-B).

use crate::query::Bucket;

/// An `n × n` grid of buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    n: usize,
}

impl Grid {
    /// Creates an `n × n` grid.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Grid {
        assert!(n > 0, "grid dimension must be positive");
        Grid { n }
    }

    /// Grid dimension `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of buckets `N²`.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.n * self.n
    }

    /// Linear index of a bucket (row-major).
    #[inline]
    pub fn index(&self, b: Bucket) -> usize {
        debug_assert!(self.contains(b));
        b.row as usize * self.n + b.col as usize
    }

    /// Bucket at a linear index.
    #[inline]
    pub fn bucket(&self, index: usize) -> Bucket {
        debug_assert!(index < self.num_buckets());
        Bucket::new((index / self.n) as u32, (index % self.n) as u32)
    }

    /// Whether `b` lies inside the grid.
    #[inline]
    pub fn contains(&self, b: Bucket) -> bool {
        (b.row as usize) < self.n && (b.col as usize) < self.n
    }

    /// Wraps a possibly-out-of-range coordinate pair onto the grid.
    #[inline]
    pub fn wrap(&self, row: usize, col: usize) -> Bucket {
        Bucket::new((row % self.n) as u32, (col % self.n) as u32)
    }

    /// Iterates over all buckets in row-major order.
    pub fn buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        (0..self.num_buckets()).map(move |i| self.bucket(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let g = Grid::new(7);
        for i in 0..g.num_buckets() {
            assert_eq!(g.index(g.bucket(i)), i);
        }
    }

    #[test]
    fn wrap_folds_coordinates() {
        let g = Grid::new(5);
        assert_eq!(g.wrap(7, 12), Bucket::new(2, 2));
        assert_eq!(g.wrap(4, 4), Bucket::new(4, 4));
    }

    #[test]
    fn buckets_iterates_all() {
        let g = Grid::new(3);
        let all: Vec<_> = g.buckets().collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], Bucket::new(0, 0));
        assert_eq!(all[8], Bucket::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_rejected() {
        Grid::new(0);
    }

    #[test]
    fn contains_checks_bounds() {
        let g = Grid::new(4);
        assert!(g.contains(Bucket::new(3, 3)));
        assert!(!g.contains(Bucket::new(4, 0)));
    }
}
