//! The allocation interface: mapping buckets to the disks holding their
//! replicas.
//!
//! Every scheme computes, for each copy `k < c`, a disk *within the copy's
//! own group of `N` disks*; [`Placement`] decides how copy-local disk
//! numbers map to global disk indices:
//!
//! * [`Placement::SingleSite`] — all copies share one group of `N` disks
//!   (the paper's basic setting, Fig. 2/3: both grids over disks 0-6).
//! * [`Placement::PerSite`] — copy `k` lives on disks `[k·N, (k+1)·N)`
//!   (the generalized setting, Fig. 4: copy 1 on disks 0-6 at site 1,
//!   copy 2 on disks 7-13 at site 2).

use crate::query::Bucket;

/// Maximum supported replica count per bucket. The paper evaluates `c = 2`;
/// the schemes here accept up to 4 copies.
pub const MAX_COPIES: usize = 4;

/// The disks holding one bucket's replicas — a tiny inline set to avoid a
/// heap allocation per bucket lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replicas {
    len: u8,
    disks: [u32; MAX_COPIES],
}

impl Replicas {
    /// Builds a replica set from disk indices.
    ///
    /// # Panics
    /// Panics if more than [`MAX_COPIES`] disks are given.
    pub fn from_slice(disks: &[usize]) -> Replicas {
        assert!(disks.len() <= MAX_COPIES, "too many replicas");
        let mut arr = [0u32; MAX_COPIES];
        for (i, &d) in disks.iter().enumerate() {
            arr[i] = d as u32;
        }
        Replicas {
            len: disks.len() as u8,
            disks: arr,
        }
    }

    /// Number of replicas.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the bucket has no replicas (never produced by the schemes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Disk index of copy `k`.
    #[inline]
    pub fn disk(&self, k: usize) -> usize {
        debug_assert!(k < self.len());
        self.disks[k] as usize
    }

    /// Iterator over the replica disks.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.disks[..self.len()].iter().map(|&d| d as usize)
    }
}

/// How copy-local disk numbers map to global disk indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// All copies on the same `N` disks (basic problem).
    SingleSite,
    /// Copy `k` on disks `[k·N, (k+1)·N)` (one complete copy per site).
    PerSite,
}

impl Placement {
    /// Maps copy `k`'s local disk `d` (`d < n`) to a global disk index.
    #[inline]
    pub fn global_disk(self, k: usize, d: usize, n: usize) -> usize {
        match self {
            Placement::SingleSite => d,
            Placement::PerSite => k * n + d,
        }
    }
}

/// The minimal read-only interface the retrieval-network builder needs:
/// implemented by every allocation scheme (via the [`Allocation`]
/// supertrait relationship) and by the precomputed [`ReplicaMap`].
pub trait ReplicaSource {
    /// Grid dimension `N` (also the per-copy disk-group size).
    fn grid_size(&self) -> usize;
    /// Total number of global disks addressed.
    fn num_disks(&self) -> usize;
    /// The global disks holding the replicas of `b`.
    fn replicas(&self, b: Bucket) -> Replicas;
}

/// A replicated declustering scheme over an `N × N` grid.
///
/// The bucket-to-disks mapping itself lives in the [`ReplicaSource`]
/// supertrait; this trait adds the scheme-level metadata.
pub trait Allocation: ReplicaSource {
    /// Number of copies `c` per bucket.
    fn copies(&self) -> usize;

    /// Placement of copies onto global disks.
    fn placement(&self) -> Placement;

    /// Human-readable scheme name (for reports).
    fn name(&self) -> &'static str;
}

/// The conventional disk count for a scheme: `N` for single-site
/// placement, `c · N` when each copy owns its own site.
pub fn standard_num_disks(placement: Placement, n: usize, copies: usize) -> usize {
    match placement {
        Placement::SingleSite => n,
        Placement::PerSite => n * copies,
    }
}

impl ReplicaSource for ReplicaMap {
    fn grid_size(&self) -> usize {
        ReplicaMap::grid_size(self)
    }
    fn num_disks(&self) -> usize {
        ReplicaMap::num_disks(self)
    }
    fn replicas(&self, b: Bucket) -> Replicas {
        ReplicaMap::replicas(self, b)
    }
}

/// A dense precomputed bucket-to-replicas table.
///
/// The retrieval algorithms consult replica sets for every bucket of every
/// query; materializing the map once per allocation makes those lookups a
/// single indexed read and removes all virtual dispatch from the hot path.
#[derive(Clone, Debug)]
pub struct ReplicaMap {
    n: usize,
    copies: usize,
    num_disks: usize,
    name: &'static str,
    table: Vec<Replicas>,
}

impl ReplicaMap {
    /// Materializes the replica table of `alloc`.
    pub fn build<A: Allocation + ?Sized>(alloc: &A) -> ReplicaMap {
        let n = alloc.grid_size();
        let mut table = Vec::with_capacity(n * n);
        for row in 0..n as u32 {
            for col in 0..n as u32 {
                table.push(alloc.replicas(Bucket::new(row, col)));
            }
        }
        ReplicaMap {
            n,
            copies: alloc.copies(),
            num_disks: alloc.num_disks(),
            name: alloc.name(),
            table,
        }
    }

    /// Grid dimension `N`.
    #[inline]
    pub fn grid_size(&self) -> usize {
        self.n
    }

    /// Copies per bucket `c`.
    #[inline]
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Total global disks.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.num_disks
    }

    /// Scheme name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Replicas of bucket `b`.
    #[inline]
    pub fn replicas(&self, b: Bucket) -> Replicas {
        self.table[b.row as usize * self.n + b.col as usize]
    }

    /// Number of grid buckets stored (at least partially) on disk `d`.
    pub fn buckets_on_disk(&self, d: usize) -> usize {
        self.table
            .iter()
            .filter(|r| r.iter().any(|x| x == d))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_inline_set() {
        let r = Replicas::from_slice(&[3, 9]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.disk(0), 3);
        assert_eq!(r.disk(1), 9);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    #[should_panic(expected = "too many replicas")]
    fn replicas_overflow_rejected() {
        Replicas::from_slice(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn placement_maps_copies() {
        assert_eq!(Placement::SingleSite.global_disk(1, 3, 7), 3);
        assert_eq!(Placement::PerSite.global_disk(0, 3, 7), 3);
        assert_eq!(Placement::PerSite.global_disk(1, 3, 7), 10);
    }

    struct Diagonal;

    impl ReplicaSource for Diagonal {
        fn grid_size(&self) -> usize {
            4
        }
        fn num_disks(&self) -> usize {
            8
        }
        fn replicas(&self, b: Bucket) -> Replicas {
            let d0 = (b.row as usize + b.col as usize) % 4;
            let d1 = (b.row as usize + 2 * b.col as usize) % 4;
            Replicas::from_slice(&[d0, 4 + d1])
        }
    }

    impl Allocation for Diagonal {
        fn copies(&self) -> usize {
            2
        }
        fn placement(&self) -> Placement {
            Placement::PerSite
        }
        fn name(&self) -> &'static str {
            "diagonal"
        }
    }

    #[test]
    fn replica_map_matches_allocation() {
        let alloc = Diagonal;
        let map = ReplicaMap::build(&alloc);
        assert_eq!(map.grid_size(), 4);
        assert_eq!(map.copies(), 2);
        assert_eq!(map.num_disks(), 8);
        assert_eq!(map.name(), "diagonal");
        for row in 0..4 {
            for col in 0..4 {
                let b = Bucket::new(row, col);
                assert_eq!(map.replicas(b), ReplicaSource::replicas(&alloc, b));
            }
        }
    }

    #[test]
    fn buckets_on_disk_counts() {
        let map = ReplicaMap::build(&Diagonal);
        // Copy 1 is a balanced lattice: each of disks 0..4 holds 4 buckets.
        for d in 0..4 {
            assert_eq!(map.buckets_on_disk(d), 4);
        }
        let total: usize = (0..8).map(|d| map.buckets_on_disk(d)).sum();
        assert_eq!(total, 2 * 16);
    }
}
