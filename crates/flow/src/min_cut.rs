//! Minimum s-t cut extraction from a maximum flow.
//!
//! By max-flow/min-cut duality, after any of this crate's engines has run,
//! the set of vertices reachable from `s` in the residual graph induces a
//! minimum cut. For retrieval networks the cut edges *explain*
//! infeasibility during the budget search: they are exactly the saturated
//! disk edges (the disks out of capacity) and the bucket edges of buckets
//! whose replicas are all on saturated disks.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};

/// A minimum s-t cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// `source_side[v]` is true when `v` is reachable from `s` in the
    /// residual graph.
    pub source_side: Vec<bool>,
    /// Forward edges crossing from the source side to the sink side.
    pub edges: Vec<EdgeId>,
    /// Total capacity of the cut (equals the maximum flow value).
    pub capacity: i64,
}

/// Extracts the minimum cut induced by the (maximum) flow stored in `g`.
///
/// The result is meaningful only when the stored flow is maximum: the
/// function debug-asserts that `t` is unreachable from `s`.
pub fn min_cut<W: ArenaIndex>(g: &FlowGraph<W>, s: VertexId, t: VertexId) -> MinCut {
    let n = g.num_vertices();
    let mut source_side = vec![false; n];
    let mut stack = vec![s];
    source_side[s] = true;
    while let Some(v) = stack.pop() {
        for &e in g.out_edges(v) {
            let e = e as EdgeId;
            let w = g.target(e);
            if g.residual(e) > 0 && !source_side[w] {
                source_side[w] = true;
                stack.push(w);
            }
        }
    }
    debug_assert!(
        !source_side[t],
        "sink reachable from source: flow is not maximum"
    );
    let mut edges = Vec::new();
    let mut capacity = 0;
    for e in g.forward_edges() {
        if source_side[g.source(e)] && !source_side[g.target(e)] {
            edges.push(e);
            capacity += g.cap(e);
        }
    }
    MinCut {
        source_side,
        edges,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_relabel::PushRelabel;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn cut_capacity_equals_max_flow() {
        let (mut g, s, t) = clrs();
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        let cut = min_cut(&g, s, t);
        assert_eq!(cut.capacity, value);
        assert!(cut.source_side[s]);
        assert!(!cut.source_side[t]);
    }

    #[test]
    fn cut_edges_are_saturated() {
        let (mut g, s, t) = clrs();
        PushRelabel::new().max_flow(&mut g, s, t);
        let cut = min_cut(&g, s, t);
        assert!(!cut.edges.is_empty());
        for &e in &cut.edges {
            assert_eq!(g.residual(e), 0, "cut edge {e} must be saturated");
        }
    }

    #[test]
    fn disconnected_sink_gives_zero_cut() {
        let mut g: FlowGraph = FlowGraph::new(3);
        g.add_edge(0, 1, 7);
        let value = PushRelabel::new().max_flow(&mut g, 0, 2);
        assert_eq!(value, 0);
        let cut = min_cut(&g, 0, 2);
        assert_eq!(cut.capacity, 0);
        assert!(cut.edges.is_empty());
    }

    #[test]
    fn single_bottleneck_identified() {
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 100);
        let bottleneck = g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 100);
        PushRelabel::new().max_flow(&mut g, 0, 3);
        let cut = min_cut(&g, 0, 3);
        assert_eq!(cut.edges, vec![bottleneck]);
        assert_eq!(cut.capacity, 3);
    }
}
