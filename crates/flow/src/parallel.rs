//! Lock-free multithreaded push-relabel, after Hong & He, *"An Asynchronous
//! Multithreaded Algorithm for the Maximum Network Flow Problem with
//! Nonblocking Global Relabeling Heuristic"* (IEEE TPDS 2011) — the
//! parallelization the paper adopts for its parallel integrated algorithm
//! (Section V).
//!
//! No locks or barriers protect push/relabel operations; the only shared
//! mutable state consists of atomic per-edge flows, per-vertex excesses and
//! heights, and per-worker lock-free work rings. The key safety arguments:
//!
//! * A vertex is *owned* by at most one thread at a time (a compare-exchange
//!   on its `queued` flag decides ownership), so its height has a single
//!   writer and its excess a single decrementer.
//! * Pushes on a forward edge are performed only by the owner of its source
//!   vertex; a concurrent push on the paired reverse edge can only *increase*
//!   the forward residual, so a residual observed before `fetch_add` never
//!   overshoots.
//! * Heights read during the lowest-neighbour scan may be stale; following
//!   Hong & He, the push rule `h(u) > h(v̂)` (rather than exact equality)
//!   remains correct because heights only increase.
//!
//! # Work stealing
//!
//! Each worker owns one MPMC ring ([`crate::mpmc::BoundedQueue`]). A worker
//! enqueues the vertices it activates into its *own* ring — newly activated
//! vertices are usually neighbours of what it just discharged, so the
//! owner-first policy keeps each thread walking a warm region of the arena.
//! A worker whose ring runs dry steals from its peers in round-robin order
//! (`(id + k) % threads`). Ownership of a vertex is still decided by the
//! `queued` CAS, so stealing changes only *which* thread discharges a
//! vertex, never whether it is discharged twice.
//!
//! # Shared pool
//!
//! The integrated retrieval driver (paper Algorithm 6) calls `resume` dozens
//! of times per query, so worker threads live in a [`WorkerPool`] that is
//! created **once per engine** and shared (it is cheaply cloneable) across
//! every shard and solve; the dispatch handshake uses a mutex/condvar, but
//! the push/relabel hot path remains lock-free as in the paper.
//!
//! After the workers drain the rings, any excess stranded by the safety
//! height bound is cleared by a sequential fixup pass; on converged runs the
//! fixup performs no pushes, so the parallel phase carries all the work.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};
use crate::incremental::IncrementalMaxFlow;
use crate::mpmc::BoundedQueue;
use crate::push_relabel::PushRelabel;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Multithreaded push-relabel solver with the same incremental (`resume`)
/// interface as the sequential [`PushRelabel`].
///
/// One engine instance assumes a stable graph *topology* across its
/// `resume` calls (capacities and flows may change freely) — exactly the
/// usage pattern of the binary capacity-scaling driver.
#[derive(Debug)]
pub struct ParallelPushRelabel {
    /// Number of worker threads (the paper evaluates 2).
    pub threads: usize,
    excess: Vec<i64>,
    fixup: PushRelabel,
    topo: Option<Arc<Topology>>,
    pool: Option<WorkerPool>,
    /// Statistics from the most recent run.
    pub last_run: ParallelRunStats,
    /// Pushes across all runs (parallel phase + fixup), for
    /// [`IncrementalMaxFlow::op_counts`].
    total_pushes: u64,
    /// Relabels across all runs.
    total_relabels: u64,
    /// Plain scratch for the single-worker fast path (see
    /// [`ParallelPushRelabel::run_single`]): heights, queued flags, the
    /// work ring, and the global-relabel BFS queue. Kept on the solver so
    /// repeated `resume` calls are allocation-free.
    seq_height: Vec<u32>,
    seq_queued: Vec<bool>,
    seq_ring: VecDeque<u32>,
    seq_bfs: Vec<u32>,
}

/// Telemetry from one parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelRunStats {
    /// Pushes performed by the parallel phase (all threads).
    pub parallel_pushes: u64,
    /// Relabels performed by the parallel phase (all threads).
    pub parallel_relabels: u64,
    /// Pushes the sequential fixup pass had to perform (0 when the parallel
    /// phase fully converged).
    pub fixup_pushes: u64,
    /// Vertices popped from a peer's ring rather than the popper's own —
    /// how much the work-stealing policy actually rebalanced.
    pub steals: u64,
}

/// Immutable CSR snapshot of the graph topology, shared with the workers.
///
/// Every field is `u32`-indexed regardless of the arena's capacity width,
/// so one snapshot type serves both layouts.
#[derive(Debug)]
struct Topology {
    /// `adj[adj_start[v]..adj_start[v+1]]` are the edge slots out of `v`.
    adj_start: Vec<u32>,
    adj: Vec<u32>,
    /// Target vertex per edge slot.
    head: Vec<u32>,
    num_vertices: usize,
}

impl Topology {
    /// Snapshots the graph's CSR arrays directly — three flat memcpys, no
    /// per-vertex walk. The workers then traverse the same layout the
    /// sequential engines do.
    fn from_graph<W: ArenaIndex>(g: &FlowGraph<W>) -> Topology {
        Topology {
            adj_start: g.csr_index().to_vec(),
            adj: g.csr_list().to_vec(),
            head: g.heads().to_vec(),
            num_vertices: g.num_vertices(),
        }
    }

    #[inline]
    fn out_edges(&self, v: usize) -> &[u32] {
        &self.adj[self.adj_start[v] as usize..self.adj_start[v + 1] as usize]
    }
}

/// Per-round shared state. Push/relabel operations touch only the atomic
/// fields — no locks. Flows, capacities and excesses are held as `i64`
/// regardless of the source arena's width: both widths widen losslessly,
/// and one atomic layout keeps the worker loop monomorphic.
#[derive(Debug)]
struct JobState {
    topo: Arc<Topology>,
    caps: Vec<i64>,
    flow: Vec<AtomicI64>,
    excess: Vec<AtomicI64>,
    height: Vec<AtomicU32>,
    queued: Vec<AtomicBool>,
    /// One work ring per worker; workers push to their own ring and steal
    /// from peers when theirs runs dry.
    queues: Vec<BoundedQueue>,
    /// Vertices queued or currently being discharged. Zero means quiescent.
    active: AtomicUsize,
    pushes: AtomicUsize,
    relabels: AtomicUsize,
    steals: AtomicUsize,
    s: usize,
    t: usize,
    height_cap: u32,
    /// Cumulative relabel count at which the current round is cut short
    /// and control returns to the global relabeler (periodic relabeling).
    relabel_limit: AtomicUsize,
}

impl JobState {
    #[inline]
    fn residual(&self, e: EdgeId) -> i64 {
        self.caps[e] - self.flow[e].load(Ordering::SeqCst)
    }

    /// Enqueues `v` onto worker `id`'s ring if it is not already
    /// owned/queued and can still reach the sink in this round (height
    /// below the phase-1 boundary).
    fn try_enqueue(&self, v: usize, id: usize) {
        if v == self.s || v == self.t {
            return;
        }
        if self.height[v].load(Ordering::SeqCst) >= self.height_cap {
            return;
        }
        if self.queued[v]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.active.fetch_add(1, Ordering::SeqCst);
            // The queued-flag CAS bounds total ring occupancy at one slot
            // per vertex, so no ring is ever *logically* full — but the
            // ring's full check is a lap-behind test, not an occupancy
            // test: a consumer preempted between claiming a slot and
            // releasing it makes a push that laps the ring fail
            // transiently. Spin until the stalled consumer's release
            // store lands; panicking here would kill the worker while it
            // owns `v`, leaving `active` stuck positive and livelocking
            // its peers.
            while self.queues[id].push(v as u32).is_err() {
                std::hint::spin_loop();
            }
        }
    }

    /// Pops the next vertex for worker `id`: its own ring first, then each
    /// peer's in round-robin order.
    fn pop_for(&self, id: usize) -> Option<u32> {
        if let Some(v) = self.queues[id].pop() {
            return Some(v);
        }
        let t = self.queues.len();
        for k in 1..t {
            if let Some(v) = self.queues[(id + k) % t].pop() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(v);
            }
        }
        None
    }

    /// Fully discharges `v`. The caller owns `v` (its `queued` flag is set);
    /// `id` is the discharging worker, whose ring receives any vertices
    /// this discharge activates.
    fn discharge(&self, v: usize, id: usize) {
        let mut local_pushes = 0usize;
        loop {
            let ev = self.excess[v].load(Ordering::SeqCst);
            if ev <= 0 {
                break;
            }
            if self.relabels.load(Ordering::Relaxed) >= self.relabel_limit.load(Ordering::Relaxed) {
                break; // round budget exhausted; global relabel takes over
            }
            // Lowest residual neighbour (Hong & He).
            let mut best_edge = usize::MAX;
            let mut best_h = u32::MAX;
            // Height first: the height array is far smaller than cap/flow,
            // so the short-circuit skips most of the scattered residual
            // loads. Stale heights are already tolerated (Hong & He).
            for &e in self.topo.out_edges(v) {
                let e = e as EdgeId;
                let h = self.height[self.topo.head[e] as usize].load(Ordering::SeqCst);
                if h < best_h && self.residual(e) > 0 {
                    best_h = h;
                    best_edge = e;
                }
            }
            if best_edge == usize::MAX {
                break; // no residual edge: stranded (fixup will handle)
            }
            let hv = self.height[v].load(Ordering::SeqCst);
            if hv > best_h {
                // Push.
                let delta = ev.min(self.residual(best_edge));
                if delta <= 0 {
                    continue; // residual consumed concurrently; rescan
                }
                let w = self.topo.head[best_edge] as usize;
                self.flow[best_edge].fetch_add(delta, Ordering::SeqCst);
                self.flow[best_edge ^ 1].fetch_sub(delta, Ordering::SeqCst);
                self.excess[v].fetch_sub(delta, Ordering::SeqCst);
                self.excess[w].fetch_add(delta, Ordering::SeqCst);
                local_pushes += 1;
                self.try_enqueue(w, id);
            } else {
                // Relabel (single writer: the owner). The counter is kept
                // exact so the round budget check above sees it promptly.
                let new_h = best_h + 1;
                self.height[v].store(new_h, Ordering::SeqCst);
                self.relabels.fetch_add(1, Ordering::Relaxed);
                if new_h >= self.height_cap {
                    // Phase-1 boundary: a vertex lifted to the source
                    // height can no longer reach the sink this round; its
                    // excess is drained back after quiescence.
                    break;
                }
            }
        }
        if local_pushes > 0 {
            self.pushes.fetch_add(local_pushes, Ordering::Relaxed);
        }
    }
}

/// The lock-free worker loop for worker `id`: pop (own ring, then steal),
/// discharge, re-check, repeat until the whole job is quiescent.
fn worker_loop(job: &JobState, id: usize) {
    loop {
        match job.pop_for(id) {
            Some(v) => {
                let v = v as usize;
                job.discharge(v, id);
                // Release ownership, then re-check: a concurrent push may
                // have raced with our final excess read (lost-wakeup guard).
                job.queued[v].store(false, Ordering::SeqCst);
                if job.excess[v].load(Ordering::SeqCst) > 0
                    && job.height[v].load(Ordering::SeqCst) < job.height_cap
                    && job.relabels.load(Ordering::Relaxed)
                        < job.relabel_limit.load(Ordering::Relaxed)
                {
                    job.try_enqueue(v, id);
                }
                job.active.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if job.active.load(Ordering::SeqCst) == 0 {
                    break;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }
}

/// Global relabeling between rounds (the blocking counterpart of Hong &
/// He's nonblocking heuristic): exact residual distances to `t` by reverse
/// BFS over the job's current (atomic) flow state. Vertices that cannot
/// reach `t` — including the source — get height `n`, the phase-1
/// boundary, stranding their excess for this round.
///
/// Returns the number of vertices (other than `s`/`t`) that hold excess
/// and can still reach the sink; the round only needs to run when this is
/// positive. The workers are parked while this runs, so plain stores into
/// the atomics are race-free.
#[allow(clippy::needless_range_loop)] // the loop indexes four parallel arrays
fn global_relabel(job: &JobState) -> usize {
    let n = job.topo.num_vertices;
    // Same shortcut as the single-worker path: no excess anywhere means
    // the BFS must count zero, and the heights it would write are never
    // observed after the round loop exits.
    if !(0..n).any(|v| v != job.s && v != job.t && job.excess[v].load(Ordering::SeqCst) > 0) {
        return 0;
    }
    const UNSEEN: u32 = u32::MAX;
    let mut height = vec![UNSEEN; n];
    let mut queue = Vec::with_capacity(n);

    height[job.t] = 0;
    queue.push(job.t as u32);
    let mut head = 0;
    while head < queue.len() {
        let w = queue[head] as usize;
        head += 1;
        let dw = height[w];
        for &e in job.topo.out_edges(w) {
            let e = e as EdgeId;
            let u = job.topo.head[e] as usize;
            if height[u] == UNSEEN && job.residual(e ^ 1) > 0 && u != job.s {
                height[u] = dw + 1;
                queue.push(u as u32);
            }
        }
    }
    let mut reachable_excess = 0;
    for v in 0..n {
        let h = if height[v] == UNSEEN || v == job.s {
            n as u32
        } else {
            height[v]
        };
        job.height[v].store(h, Ordering::SeqCst);
        if v != job.s
            && v != job.t
            && h < job.height_cap
            && job.excess[v].load(Ordering::SeqCst) > 0
        {
            reachable_excess += 1;
        }
    }
    reachable_excess
}

/// Returns trapped excess to the source by cancelling the flow that
/// carried it in (the standard preflow-to-flow conversion, specialized to
/// direct cancellation walks). Every unit of excess strictly reduces total
/// flow mass, so the worklist terminates; cycles of flow are irrelevant
/// because only *incoming* flow of excess vertices is cancelled.
fn drain_trapped_excess<W: ArenaIndex>(
    g: &mut FlowGraph<W>,
    excess: &mut [i64],
    s: VertexId,
    t: VertexId,
) {
    let n = g.num_vertices();
    let mut worklist: Vec<VertexId> = (0..n)
        .filter(|&v| v != s && v != t && excess[v] > 0)
        .collect();
    while let Some(v) = worklist.pop() {
        while excess[v] > 0 {
            // Find an edge currently carrying flow into v: an odd (reverse)
            // slot out of v with positive residual, whose pair is the
            // forward edge (w -> v).
            let mut cancelled = false;
            for i in 0..g.out_edges(v).len() {
                let e = g.out_edges(v)[i] as EdgeId;
                if e % 2 == 1 && g.residual(e) > 0 {
                    let w = g.target(e);
                    let delta = excess[v].min(g.residual(e));
                    g.push(e, delta);
                    excess[v] -= delta;
                    if w == t {
                        excess[w] += delta; // cancelled a t-outflow
                    } else if w != s {
                        if excess[w] == 0 {
                            worklist.push(w);
                        }
                        excess[w] += delta;
                    }
                    cancelled = true;
                    break;
                }
            }
            assert!(
                cancelled,
                "vertex {v} holds excess but has no incoming flow to cancel"
            );
        }
    }
}

/// One claimable slot of a task batch: taken (and run) by exactly one
/// participant.
type TaskSlot = Mutex<Option<Box<dyn FnOnce() + Send>>>;

/// A one-shot batch of independent closures, claimed by an atomic cursor.
///
/// Task closures are lifetime-erased to `'static` by the dispatcher
/// ([`WorkerPool::run_tasks`]); soundness rests on the dispatcher blocking
/// until every task has been claimed, executed and dropped before it
/// returns — no borrow outlives the call that erased it.
struct TaskBatch {
    tasks: Vec<TaskSlot>,
    /// Next unclaimed task index. `fetch_add` claiming means each task runs
    /// exactly once, on whichever participant (worker or caller) gets there
    /// first.
    next: AtomicUsize,
    /// Panic payloads caught from tasks, re-raised on the dispatching
    /// thread once the batch drains (first payload wins).
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

impl std::fmt::Debug for TaskBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskBatch")
            .field("tasks", &self.tasks.len())
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl TaskBatch {
    /// Claims and runs tasks until the cursor passes the end. Task panics
    /// are caught and stashed so one poisoned query cannot take down a
    /// worker thread (mirroring the engine's per-query containment).
    fn run_worker(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks.len() {
                break;
            }
            let task = self.tasks[i].lock().unwrap().take();
            if let Some(task) = task {
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    self.panics.lock().unwrap().push(payload);
                }
            }
        }
    }
}

/// What a dispatch hands the parked workers: a lock-free push/relabel
/// round, or a batch of independent closures (fused multi-query solves).
#[derive(Clone, Debug)]
enum PoolJob {
    Flow(Arc<JobState>),
    Batch(Arc<TaskBatch>),
}

/// Persistent worker threads, parked between jobs.
///
/// The pool is cheaply cloneable — clones share the same threads — so one
/// pool created at engine build time serves every shard and every solve
/// for the engine's lifetime: no per-solve (or per-shard) thread spawns.
/// Jobs from concurrent callers are serialized by a dispatch lock; the
/// push/relabel work itself happens lock-free in the worker loop, each
/// worker keeping a stable id for the work-stealing ring layout.
///
/// Besides push/relabel rounds the same threads also execute closure
/// batches ([`WorkerPool::run_tasks`]) — the fused batch-solve path
/// schedules whole independent solves across the pool instead of
/// parallelizing inside one solve.
///
/// The threads exit when the last clone is dropped.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    shared: Arc<PoolShared>,
    threads: usize,
    /// The host exposes a single hardware thread: a task-batch dispatch
    /// can only time-slice against the caller, so batches run inline.
    solo_host: bool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Debug)]
struct PoolShared {
    /// Serializes `run` callers: one job in flight at a time.
    dispatch: Mutex<()>,
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

#[derive(Debug)]
struct PoolState {
    job: Option<PoolJob>,
    seq: u64,
    running: usize,
    shutdown: bool,
}

impl WorkerPool {
    /// Spawns `threads` workers (minimum 1) with stable ids `0..threads`.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            dispatch: Mutex::new(()),
            state: Mutex::new(PoolState {
                job: None,
                seq: 0,
                running: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut last_seq = 0;
                    loop {
                        let job = {
                            let mut st = shared.state.lock().unwrap();
                            loop {
                                if st.shutdown {
                                    return;
                                }
                                if st.seq != last_seq {
                                    if let Some(job) = st.job.clone() {
                                        last_seq = st.seq;
                                        break job;
                                    }
                                }
                                st = shared.start.wait(st).unwrap();
                            }
                        };
                        match &job {
                            PoolJob::Flow(job) => worker_loop(job, id),
                            PoolJob::Batch(batch) => batch.run_worker(),
                        }
                        let mut st = shared.state.lock().unwrap();
                        st.running -= 1;
                        if st.running == 0 {
                            shared.done.notify_all();
                        }
                    }
                })
            })
            .collect();
        let solo_host = std::thread::available_parallelism().is_ok_and(|n| n.get() == 1);
        WorkerPool {
            inner: Arc::new(PoolInner {
                shared,
                threads,
                solo_host,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Number of worker threads (and work-stealing rings) in this pool.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    fn run(&self, job: Arc<JobState>) {
        debug_assert_eq!(
            job.queues.len(),
            self.inner.threads,
            "job ring count must match the pool's worker count"
        );
        self.dispatch(PoolJob::Flow(job), None);
    }

    /// Runs a batch of independent closures across the pool's workers, with
    /// the calling thread participating in the claiming loop. Blocks until
    /// every task has run; if any task panicked, the first panic payload is
    /// re-raised on the caller *after* the batch fully drains (the
    /// remaining tasks still run — one poisoned solve does not starve its
    /// batchmates).
    ///
    /// Tasks may borrow from the caller's stack (`'env`): the lifetime is
    /// erased internally, which is sound because this call does not return
    /// until every closure has been executed and dropped.
    ///
    /// Deadlock rule: a task must not dispatch onto the *same* pool (the
    /// dispatch lock is held for the whole batch). The fused batch-solve
    /// path therefore hands its per-lane solvers no pool — each fused
    /// solve runs sequentially inside its task.
    pub fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        match tasks.len() {
            0 => return,
            1 => {
                // One task gains nothing from the handshake: run inline
                // (panics propagate naturally).
                let task = tasks.into_iter().next().expect("len checked");
                task();
                return;
            }
            _ => {}
        }
        if self.inner.solo_host {
            // One hardware thread: waking parked workers just to contend
            // with the caller is pure handshake loss. Drain the batch on
            // the caller with identical semantics — every task runs, the
            // first panic is re-raised after the drain.
            let mut first_panic = None;
            for task in tasks {
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            return;
        }
        let erased: Vec<TaskSlot> = tasks
            .into_iter()
            .map(|t| {
                // SAFETY: only the lifetime bound changes. The batch is
                // fully drained (every closure executed and dropped)
                // before this function returns — see `dispatch` — so no
                // erased borrow outlives `'env`.
                let t: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(t) };
                Mutex::new(Some(t))
            })
            .collect();
        let batch = Arc::new(TaskBatch {
            tasks: erased,
            next: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
        });
        self.dispatch(PoolJob::Batch(Arc::clone(&batch)), Some(&batch));
        let payload = batch.panics.lock().unwrap().drain(..).next();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Hands `job` to the parked workers and blocks until all of them
    /// report done. With `participate` set, the dispatching thread joins
    /// the claiming loop before waiting — for task batches the caller is
    /// an extra worker, not an idle spectator.
    fn dispatch(&self, job: PoolJob, participate: Option<&TaskBatch>) {
        let shared = &self.inner.shared;
        let _dispatch = shared.dispatch.lock().unwrap();
        {
            let mut st = shared.state.lock().unwrap();
            st.job = Some(job);
            st.seq += 1;
            st.running = self.inner.threads;
        }
        shared.start.notify_all();
        if let Some(batch) = participate {
            batch.run_worker();
        }
        let mut st = shared.state.lock().unwrap();
        while st.running > 0 {
            st = shared.done.wait(st).unwrap();
        }
        st.job = None;
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl ParallelPushRelabel {
    /// Creates a solver with the given worker-thread count (minimum 1).
    /// With one thread the discharge loop runs inline — no pool, no
    /// handshake — making the single-thread configuration a faithful
    /// sequential baseline for speed-up measurements. With more, a
    /// private pool is spawned lazily on first use; engines that own a
    /// shared pool should use [`ParallelPushRelabel::with_pool`] instead.
    pub fn new(threads: usize) -> Self {
        ParallelPushRelabel {
            threads: threads.max(1),
            excess: Vec::new(),
            fixup: PushRelabel::new(),
            topo: None,
            pool: None,
            last_run: ParallelRunStats::default(),
            total_pushes: 0,
            total_relabels: 0,
            seq_height: Vec::new(),
            seq_queued: Vec::new(),
            seq_ring: VecDeque::new(),
            seq_bfs: Vec::new(),
        }
    }

    /// Creates a solver that runs its rounds on an existing shared pool.
    /// The thread count is the pool's; no threads are ever spawned by the
    /// solver itself.
    pub fn with_pool(pool: WorkerPool) -> Self {
        let mut pr = ParallelPushRelabel::new(pool.threads());
        pr.pool = Some(pool);
        pr
    }

    /// Replaces the solver's pool with a shared one (adopting its thread
    /// count), dropping any private pool it may have spawned.
    pub fn set_pool(&mut self, pool: WorkerPool) {
        self.threads = pool.threads();
        self.pool = Some(pool);
    }

    fn ensure(&mut self, n: usize) {
        if self.excess.len() < n {
            self.excess.resize(n, 0);
        }
    }

    /// Drops the cached topology snapshot. The cache is keyed only on the
    /// vertex and edge-slot *counts*, so a caller reusing one engine
    /// across different graphs that happen to match in size must call
    /// this before the next run — otherwise the workers would walk the
    /// stale adjacency structure. The worker pool is unaffected.
    pub fn invalidate_topology(&mut self) {
        self.topo = None;
    }

    fn run<W: ArenaIndex>(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        g.finalize();
        let n = g.num_vertices();
        self.ensure(n);

        // Saturate residual source edges (same init as the sequential
        // resume, Algorithm 5 lines 4-10) and cancel flow into the source
        // (circulation through s would otherwise pin capacity and break
        // label validity — see the sequential engine for the argument).
        for i in 0..g.out_edges(s).len() {
            let e = g.out_edges(s)[i] as EdgeId;
            let delta = g.residual(e);
            if delta > 0 {
                let v = g.target(e);
                g.push(e, delta);
                self.excess[v] += delta;
            }
        }
        self.excess[s] = 0;

        // One worker needs none of the shared-state machinery: run the
        // same algorithm on plain arrays, directly against the graph.
        if self.threads == 1 {
            return self.run_single(g, s, t);
        }

        // (Re)build the topology snapshot if the graph shape changed.
        let rebuild = match &self.topo {
            Some(topo) => topo.num_vertices != n || topo.head.len() != g.num_edge_slots(),
            None => true,
        };
        if rebuild {
            self.topo = Some(Arc::new(Topology::from_graph(g)));
        }
        let topo = Arc::clone(self.topo.as_ref().expect("topology just built"));

        let workers = self.threads;
        let job = Arc::new(JobState {
            caps: (0..g.num_edge_slots()).map(|e| g.cap(e)).collect(),
            flow: (0..g.num_edge_slots())
                .map(|e| AtomicI64::new(g.flow(e)))
                .collect(),
            excess: self.excess.iter().map(|&x| AtomicI64::new(x)).collect(),
            height: (0..n).map(|_| AtomicU32::new(0)).collect(),
            queued: (0..n).map(|_| AtomicBool::new(false)).collect(),
            queues: (0..workers)
                .map(|_| BoundedQueue::with_capacity(n))
                .collect(),
            active: AtomicUsize::new(0),
            pushes: AtomicUsize::new(0),
            relabels: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            s,
            t,
            height_cap: n as u32,
            relabel_limit: AtomicUsize::new(0),
            topo,
        });

        // Rounds: global relabel (exact heights), then lock-free
        // discharging until quiescent or the round's relabel budget runs
        // out; repeat while some excess can still reach the sink. The
        // budget plays the role of periodic global relabeling: it stops
        // vertices from climbing one level at a time once the capacity
        // they were aiming for is gone.
        let round_budget = (n).max(64);
        let mut stalled = false;
        loop {
            if global_relabel(&job) == 0 {
                break;
            }
            let pushes_before = job.pushes.load(Ordering::Relaxed);
            let relabels_before = job.relabels.load(Ordering::Relaxed);
            job.relabel_limit
                .store(relabels_before + round_budget, Ordering::Relaxed);
            let mut seeded = 0usize;
            for v in 0..n {
                if v != s
                    && v != t
                    && job.excess[v].load(Ordering::SeqCst) > 0
                    && job.height[v].load(Ordering::SeqCst) < job.height_cap
                {
                    job.queued[v].store(true, Ordering::Relaxed);
                    job.active.fetch_add(1, Ordering::Relaxed);
                    // Workers are parked between rounds and drain the rings
                    // before exiting, so seeding runs single-threaded
                    // against empty rings: unlike the racy push in
                    // `try_enqueue`, this one can never fail. Round-robin
                    // placement gives every worker a starting share.
                    job.queues[seeded % workers]
                        .push(v as u32)
                        .expect("vertex ring sized to hold every vertex");
                    seeded += 1;
                }
            }
            if self.pool.is_none() {
                self.pool = Some(WorkerPool::new(self.threads));
            }
            self.pool
                .as_ref()
                .expect("pool just built")
                .run(Arc::clone(&job));
            let no_progress = job.pushes.load(Ordering::Relaxed) == pushes_before
                && job.relabels.load(Ordering::Relaxed) == relabels_before;
            if no_progress {
                // Cannot happen (a queued vertex always pushes or
                // relabels), but guard against silently looping forever.
                stalled = true;
                break;
            }
        }

        // Copy atomic state back into the graph and solver.
        for e in 0..g.num_edge_slots() {
            g.set_flow_raw(e, job.flow[e].load(Ordering::SeqCst));
        }
        for v in 0..n {
            self.excess[v] = job.excess[v].load(Ordering::SeqCst);
        }
        self.excess[s] = 0;

        self.last_run = ParallelRunStats {
            parallel_pushes: job.pushes.load(Ordering::Relaxed) as u64,
            parallel_relabels: job.relabels.load(Ordering::Relaxed) as u64,
            fixup_pushes: 0,
            steals: job.steals.load(Ordering::Relaxed) as u64,
        };
        self.total_pushes += self.last_run.parallel_pushes;
        self.total_relabels += self.last_run.parallel_relabels;
        self.finish_run(g, s, t, stalled)
    }

    /// The single-worker configuration of the same algorithm, on plain
    /// state: no topology snapshot, no atomic copy-in/copy-out, no RMWs —
    /// the discharge walks the graph's own CSR arena directly. The control
    /// flow replicates [`global_relabel`], the seeding loop,
    /// [`worker_loop`] and [`JobState::discharge`] decision for decision
    /// (one worker's pops from its own ring are FIFO, exactly a
    /// `VecDeque`), so push/relabel counts — and therefore solve digests —
    /// are bit-identical to the pooled path run with one worker.
    fn run_single<W: ArenaIndex>(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        let n = g.num_vertices();
        let height_cap = n as u32;
        const UNSEEN: u32 = u32::MAX;
        self.seq_height.clear();
        self.seq_height.resize(n, 0);
        self.seq_queued.clear();
        self.seq_queued.resize(n, false);
        self.seq_ring.clear();
        let (mut pushes, mut relabels) = (0u64, 0u64);
        let round_budget = n.max(64) as u64;
        let mut stalled = false;
        loop {
            // A vertex must hold excess for the relabeling BFS to count
            // anything, so when every unit has reached `t` (or returned to
            // `s`) the final BFS is skipped outright: it would find zero.
            // Heights are scratch state, dead once the loop exits.
            let any_excess = (0..n).any(|v| v != s && v != t && self.excess[v] > 0);
            if !any_excess {
                break;
            }
            // Global relabel: exact residual distances to `t` by reverse
            // BFS, vertices that cannot reach `t` (and the source) parked
            // at the phase-1 boundary height `n`.
            self.seq_height[..n].fill(UNSEEN);
            self.seq_height[t] = 0;
            self.seq_bfs.clear();
            self.seq_bfs.push(t as u32);
            let mut head = 0;
            while head < self.seq_bfs.len() {
                let w = self.seq_bfs[head] as usize;
                head += 1;
                let dw = self.seq_height[w];
                let (lo, hi) = g.adj_bounds(w);
                for pos in lo..hi {
                    g.prefetch_adj(pos, hi);
                    let e = g.adj_slot(pos);
                    let u = g.target_fast(e);
                    if self.seq_height[u] == UNSEEN && g.residual_fast(e ^ 1) > 0 && u != s {
                        self.seq_height[u] = dw + 1;
                        self.seq_bfs.push(u as u32);
                    }
                }
            }
            let mut reachable_excess = 0usize;
            for v in 0..n {
                if self.seq_height[v] == UNSEEN || v == s {
                    self.seq_height[v] = height_cap;
                } else if v != s && v != t && self.excess[v] > 0 {
                    reachable_excess += 1;
                }
            }
            if reachable_excess == 0 {
                break;
            }
            let relabel_limit = relabels + round_budget;
            for v in 0..n {
                if v != s && v != t && self.excess[v] > 0 && self.seq_height[v] < height_cap {
                    self.seq_queued[v] = true;
                    self.seq_ring.push_back(v as u32);
                }
            }
            let (pushes_before, relabels_before) = (pushes, relabels);
            while let Some(v) = self.seq_ring.pop_front() {
                let v = v as usize;
                // Discharge `v` fully (lowest residual neighbour rule).
                // Only `v` itself mutates its height and (net) excess while
                // it is being discharged, so both are carried in locals and
                // the adjacency bounds are computed once.
                let (lo, hi) = g.adj_bounds(v);
                let mut ev = self.excess[v];
                let mut hv = self.seq_height[v];
                loop {
                    if ev <= 0 || relabels >= relabel_limit {
                        break;
                    }
                    // Lowest residual neighbour. The height test runs
                    // first — heights live in a small cache-resident array
                    // — so the scattered cap/flow loads are paid only for
                    // edges that would actually improve the minimum; the
                    // conjunction commutes, so the selected edge (first
                    // strict minimum in slot order) is unchanged.
                    let mut best_edge = usize::MAX;
                    let mut best_h = u32::MAX;
                    for pos in lo..hi {
                        g.prefetch_adj_head(pos, hi);
                        let e = g.adj_slot(pos);
                        let h = self.seq_height[g.target_fast(e)];
                        if h < best_h && g.residual_fast(e) > 0 {
                            best_h = h;
                            best_edge = e;
                        }
                    }
                    if best_edge == usize::MAX {
                        break; // stranded; the drain pass handles it
                    }
                    if hv > best_h {
                        let delta = ev.min(g.residual(best_edge));
                        let w = g.target(best_edge);
                        g.push(best_edge, delta);
                        ev -= delta;
                        self.excess[v] -= delta;
                        self.excess[w] += delta;
                        pushes += 1;
                        if w != s
                            && w != t
                            && self.seq_height[w] < height_cap
                            && !self.seq_queued[w]
                        {
                            self.seq_queued[w] = true;
                            self.seq_ring.push_back(w as u32);
                        }
                    } else {
                        hv = best_h + 1;
                        self.seq_height[v] = hv;
                        relabels += 1;
                        if hv >= height_cap {
                            break;
                        }
                    }
                }
                self.seq_queued[v] = false;
                if self.excess[v] > 0 && self.seq_height[v] < height_cap && relabels < relabel_limit
                {
                    self.seq_queued[v] = true;
                    self.seq_ring.push_back(v as u32);
                }
            }
            if pushes == pushes_before && relabels == relabels_before {
                stalled = true;
                break;
            }
        }
        self.excess[s] = 0;

        self.last_run = ParallelRunStats {
            parallel_pushes: pushes,
            parallel_relabels: relabels,
            fixup_pushes: 0,
            steals: 0,
        };
        self.total_pushes += pushes;
        self.total_relabels += relabels;
        self.finish_run(g, s, t, stalled)
    }

    /// Common tail of both run paths: defensive sequential fixup when a
    /// round made no progress (cannot happen; see the stall guard), then
    /// the preflow-to-flow conversion.
    fn finish_run<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        s: VertexId,
        t: VertexId,
        stalled: bool,
    ) -> i64 {
        let n = g.num_vertices();
        if stalled {
            // Defensive fallback: finish with the (two-phase) sequential
            // engine rather than risk a silently suboptimal schedule.
            for v in 0..n {
                self.fixup.set_excess(v, self.excess[v]);
            }
            let before = self.fixup.stats.pushes;
            let relabels_before = self.fixup.stats.relabels;
            let val = self.fixup.resume(g, s, t);
            self.last_run.fixup_pushes = self.fixup.stats.pushes - before;
            self.total_pushes += self.last_run.fixup_pushes;
            self.total_relabels += self.fixup.stats.relabels - relabels_before;
            for v in 0..n {
                self.excess[v] = self.fixup.excess(v);
            }
            return val;
        }

        // Drain excess stranded at the phase-1 boundary back toward the
        // source by cancelling the inflow that carried it, leaving a valid
        // *flow* (conservation holds everywhere except s and t). The walks
        // follow existing flow edges directly — no height bookkeeping — so
        // this is linear in the stranded mass.
        drain_trapped_excess(g, &mut self.excess, s, t);
        self.excess[t]
    }

    /// Computes a maximum flow from scratch (zeroing any existing flow).
    pub fn max_flow<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        s: VertexId,
        t: VertexId,
    ) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.zero_flows();
        self.ensure(g.num_vertices());
        self.excess.iter_mut().for_each(|e| *e = 0);
        self.run(g, s, t)
    }

    /// Re-runs the engine conserving the flow currently in `g`.
    pub fn resume<W: ArenaIndex>(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        self.ensure(g.num_vertices());
        self.run(g, s, t)
    }

    /// Accumulated excess at `v`.
    pub fn excess(&self, v: VertexId) -> i64 {
        self.excess.get(v).copied().unwrap_or(0)
    }

    /// Overrides the excess at `v`.
    pub fn set_excess(&mut self, v: VertexId, x: i64) {
        self.ensure(v + 1);
        self.excess[v] = x;
    }

    /// Zeroes the excesses of vertices `0..n` (see
    /// [`IncrementalMaxFlow::reset_excess`]).
    pub fn reset_excess(&mut self, n: usize) {
        self.ensure(n);
        self.excess[..n].iter_mut().for_each(|e| *e = 0);
    }

    /// Cumulative `(pushes, relabels)` across all runs.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.total_pushes, self.total_relabels)
    }
}

impl<W: ArenaIndex> IncrementalMaxFlow<W> for ParallelPushRelabel {
    fn max_flow(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        ParallelPushRelabel::max_flow(self, g, s, t)
    }

    fn resume(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        ParallelPushRelabel::resume(self, g, s, t)
    }

    fn excess(&self, v: VertexId) -> i64 {
        ParallelPushRelabel::excess(self, v)
    }

    fn set_excess(&mut self, v: VertexId, x: i64) {
        ParallelPushRelabel::set_excess(self, v, x)
    }

    fn op_counts(&self) -> (u64, u64) {
        ParallelPushRelabel::op_counts(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use crate::validate::assert_valid_flow;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn clrs_single_thread() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(1).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn clrs_two_threads() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(2).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn clrs_four_threads() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(4).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn clrs_compact_width() {
        let mut g: FlowGraph<i32> = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        assert_eq!(ParallelPushRelabel::new(2).max_flow(&mut g, 0, 5), 23);
        assert_valid_flow(&g, 0, 5);
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(2024);
        for case in 0..40 {
            let n = rng.gen_range(4..20);
            let m = rng.gen_range(n..5 * n);
            let mut g: FlowGraph = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..30));
                }
            }
            let mut oracle = g.clone();
            let want = dinic::max_flow(&mut oracle, 0, n - 1);
            let got = ParallelPushRelabel::new(2).max_flow(&mut g, 0, n - 1);
            assert_eq!(got, want, "case {case}");
            assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn resume_after_capacity_increase() {
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 10);
        let bottleneck = g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 10);
        let mut pr = ParallelPushRelabel::new(2);
        assert_eq!(pr.max_flow(&mut g, 0, 3), 3);
        g.set_cap(bottleneck, 8);
        assert_eq!(pr.resume(&mut g, 0, 3), 8);
        assert_valid_flow(&g, 0, 3);
    }

    #[test]
    fn repeated_resume_matches_sequential() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 14;
        let mut g: FlowGraph = FlowGraph::new(n);
        let mut sink_edges = Vec::new();
        for v in 1..n - 1 {
            g.add_edge(0, v, rng.gen_range(1..4));
            sink_edges.push(g.add_edge(v, n - 1, 0));
        }
        for _ in 0..25 {
            let u = rng.gen_range(1..n - 1);
            let v = rng.gen_range(1..n - 1);
            if u != v {
                g.add_edge(u, v, rng.gen_range(0..3));
            }
        }
        let mut pr = ParallelPushRelabel::new(2);
        pr.max_flow(&mut g, 0, n - 1);
        for _ in 0..12 {
            let e = sink_edges[rng.gen_range(0..sink_edges.len())];
            g.set_cap(e, g.cap(e) + 1);
            let got = pr.resume(&mut g, 0, n - 1);
            let mut oracle = g.clone();
            let want = dinic::max_flow(&mut oracle, 0, n - 1);
            assert_eq!(got, want);
            assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn pool_survives_many_rounds() {
        // Exercises the park/dispatch handshake far more times than any
        // single retrieval solve does.
        let mut g: FlowGraph = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 10_000);
        let mut pr = ParallelPushRelabel::new(2);
        assert_eq!(pr.max_flow(&mut g, 0, 2), 1);
        for want in 2..200 {
            g.set_cap(e0, want);
            assert_eq!(pr.resume(&mut g, 0, 2), want);
        }
    }

    #[test]
    fn shared_pool_across_solvers() {
        // One pool, two engines: the engines dispatch alternately onto the
        // same threads (the per-engine configuration of rds-core).
        let pool = WorkerPool::new(2);
        let mut a = ParallelPushRelabel::with_pool(pool.clone());
        let mut b = ParallelPushRelabel::with_pool(pool.clone());
        assert_eq!(a.threads, 2);
        for round in 0..8 {
            let (mut g1, s, t) = clrs();
            assert_eq!(a.max_flow(&mut g1, s, t), 23, "round {round}");
            a.reset_excess(g1.num_vertices());
            a.invalidate_topology();
            let (mut g2, s2, t2) = clrs();
            assert_eq!(b.max_flow(&mut g2, s2, t2), 23, "round {round}");
            b.reset_excess(g2.num_vertices());
            b.invalidate_topology();
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn topology_rebuild_on_new_graph_shape() {
        let mut pr = ParallelPushRelabel::new(2);
        let mut g1: FlowGraph = FlowGraph::new(3);
        g1.add_edge(0, 1, 4);
        g1.add_edge(1, 2, 4);
        assert_eq!(pr.max_flow(&mut g1, 0, 2), 4);
        // Different topology through the same engine.
        let mut g2: FlowGraph = FlowGraph::new(5);
        g2.add_edge(0, 1, 2);
        g2.add_edge(0, 2, 2);
        g2.add_edge(1, 3, 2);
        g2.add_edge(2, 3, 2);
        g2.add_edge(3, 4, 3);
        assert_eq!(pr.max_flow(&mut g2, 0, 4), 3);
    }

    #[test]
    fn invalidate_topology_allows_same_size_reuse() {
        // Two graphs with identical vertex/edge counts but different
        // shapes: the size-keyed cache cannot tell them apart, so the
        // caller invalidates between runs.
        let mut pr = ParallelPushRelabel::new(2);
        let mut g1: FlowGraph = FlowGraph::new(4);
        g1.add_edge(0, 1, 3);
        g1.add_edge(1, 3, 2);
        g1.add_edge(0, 2, 1);
        g1.add_edge(2, 3, 5);
        assert_eq!(pr.max_flow(&mut g1, 0, 3), 3);
        let mut g2: FlowGraph = FlowGraph::new(4);
        g2.add_edge(0, 2, 6);
        g2.add_edge(2, 1, 6);
        g2.add_edge(1, 3, 4);
        g2.add_edge(0, 3, 1);
        pr.invalidate_topology();
        pr.reset_excess(4);
        assert_eq!(pr.max_flow(&mut g2, 0, 3), 5);
    }

    #[test]
    fn run_tasks_executes_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let mut out = [0u64; 16];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || *slot = (i as u64 + 1) * 10) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_tasks(tasks);
        }
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64 + 1) * 10, "task {i}");
        }
    }

    #[test]
    fn run_tasks_single_task_runs_inline() {
        let pool = WorkerPool::new(2);
        let mut hit = false;
        pool.run_tasks(vec![
            Box::new(|| hit = true) as Box<dyn FnOnce() + Send + '_>
        ]);
        assert!(hit);
        pool.run_tasks(Vec::new()); // empty batch is a no-op
    }

    #[test]
    fn run_tasks_panic_is_reraised_and_batchmates_still_run() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    let done = Arc::clone(&done);
                    Box::new(move || {
                        if i == 3 {
                            panic!("task 3 poisoned");
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run_tasks(tasks);
        }));
        assert!(result.is_err(), "panic must re-raise on the dispatcher");
        // The batch drains fully before the re-raise.
        assert_eq!(done.load(Ordering::SeqCst), 7);
        // The pool survives: both flow jobs and fresh batches still run.
        let (mut g, s, t) = clrs();
        let mut pr = ParallelPushRelabel::with_pool(pool.clone());
        assert_eq!(pr.max_flow(&mut g, s, t), 23);
        let mut again = 0usize;
        pool.run_tasks(
            (0..4)
                .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send>)
                .collect(),
        );
        pool.run_tasks(vec![Box::new(|| again = 1) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(again, 1);
    }

    #[test]
    fn flow_jobs_and_task_batches_interleave_on_one_pool() {
        let pool = WorkerPool::new(2);
        let mut pr = ParallelPushRelabel::with_pool(pool.clone());
        for round in 0..4 {
            let (mut g, s, t) = clrs();
            assert_eq!(pr.max_flow(&mut g, s, t), 23, "round {round}");
            pr.reset_excess(g.num_vertices());
            pr.invalidate_topology();
            let mut sums = [0u64; 6];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = sums
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || *slot = (0..=i as u64).sum()) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_tasks(tasks);
            for (i, &v) in sums.iter().enumerate() {
                assert_eq!(v, (i as u64 * (i as u64 + 1)) / 2);
            }
        }
    }

    #[test]
    fn stats_recorded() {
        let (mut g, s, t) = clrs();
        let mut pr = ParallelPushRelabel::new(2);
        pr.max_flow(&mut g, s, t);
        assert!(pr.last_run.parallel_pushes > 0);
    }

    /// Sanitizer-style stress of the work-stealing rings: `T` threads
    /// hammer `T` rings with the exact access pattern of the discharge
    /// loop — push to your own ring, pop your own first, steal from peers
    /// — and every pushed value must be popped exactly once. Run under
    /// `cargo +nightly miri test` or TSan this doubles as a data-race
    /// check on the ring's release/acquire protocol.
    #[test]
    fn stealing_rings_never_lose_or_duplicate() {
        use std::sync::atomic::AtomicU64;
        const T: usize = 4;
        const PER_THREAD: u32 = 2_000;
        let rings: Arc<Vec<BoundedQueue>> =
            Arc::new((0..T).map(|_| BoundedQueue::with_capacity(64)).collect());
        let produced = Arc::new(AtomicUsize::new(0));
        let consumed_sum = Arc::new(AtomicU64::new(0));
        let consumed_count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..T)
            .map(|id| {
                let rings = Arc::clone(&rings);
                let produced = Arc::clone(&produced);
                let consumed_sum = Arc::clone(&consumed_sum);
                let consumed_count = Arc::clone(&consumed_count);
                std::thread::spawn(move || {
                    let mut next = (id as u32) * PER_THREAD;
                    let end = next + PER_THREAD;
                    loop {
                        // Produce into our own ring (spin on transient full,
                        // as try_enqueue does).
                        if next < end {
                            while rings[id].push(next).is_err() {
                                // Ring full: drain one element ourselves so
                                // progress is guaranteed even if peers lag.
                                if let Some(v) = rings[id].pop() {
                                    consumed_sum.fetch_add(v as u64, Ordering::Relaxed);
                                    consumed_count.fetch_add(1, Ordering::Relaxed);
                                }
                                std::hint::spin_loop();
                            }
                            next += 1;
                            produced.fetch_add(1, Ordering::Relaxed);
                        }
                        // Consume: own ring first, then steal round-robin.
                        let mut v = rings[id].pop();
                        if v.is_none() {
                            for k in 1..T {
                                v = rings[(id + k) % T].pop();
                                if v.is_some() {
                                    break;
                                }
                            }
                        }
                        if let Some(v) = v {
                            consumed_sum.fetch_add(v as u64, Ordering::Relaxed);
                            consumed_count.fetch_add(1, Ordering::Relaxed);
                        } else if next >= end
                            && produced.load(Ordering::SeqCst) == T * PER_THREAD as usize
                            && consumed_count.load(Ordering::SeqCst) == T * PER_THREAD as usize
                        {
                            break;
                        } else if next >= end {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (T as u32 * PER_THREAD) as u64;
        // Sum of 0..total: every value seen exactly once.
        assert_eq!(consumed_count.load(Ordering::SeqCst) as u64, total);
        assert_eq!(consumed_sum.load(Ordering::SeqCst), total * (total - 1) / 2);
    }

    #[test]
    fn steals_are_counted_on_imbalanced_seeds() {
        // A wide star forces many active vertices; with 4 workers the
        // round-robin seed plus stealing should keep everyone busy. The
        // assertion is weak (steals is a counter, not a guarantee) but
        // pins the field's wiring.
        let n = 202;
        let mut g: FlowGraph = FlowGraph::new(n);
        for v in 1..n - 1 {
            g.add_edge(0, v, 3);
            g.add_edge(v, n - 1, 2);
        }
        let mut pr = ParallelPushRelabel::new(4);
        let want = 2 * (n as i64 - 2);
        assert_eq!(pr.max_flow(&mut g, 0, n - 1), want);
        assert_valid_flow(&g, 0, n - 1);
        // last_run.steals is recorded (possibly zero on a lucky schedule).
        let _ = pr.last_run.steals;
    }
}
