//! Lock-free multithreaded push-relabel, after Hong & He, *"An Asynchronous
//! Multithreaded Algorithm for the Maximum Network Flow Problem with
//! Nonblocking Global Relabeling Heuristic"* (IEEE TPDS 2011) — the
//! parallelization the paper adopts for its parallel integrated algorithm
//! (Section V).
//!
//! No locks or barriers protect push/relabel operations; the only shared
//! mutable state consists of atomic per-edge flows, per-vertex excesses and
//! heights, and a lock-free work queue. The key safety arguments:
//!
//! * A vertex is *owned* by at most one thread at a time (a compare-exchange
//!   on its `queued` flag decides ownership), so its height has a single
//!   writer and its excess a single decrementer.
//! * Pushes on a forward edge are performed only by the owner of its source
//!   vertex; a concurrent push on the paired reverse edge can only *increase*
//!   the forward residual, so a residual observed before `fetch_add` never
//!   overshoots.
//! * Heights read during the lowest-neighbour scan may be stale; following
//!   Hong & He, the push rule `h(u) > h(v̂)` (rather than exact equality)
//!   remains correct because heights only increase.
//!
//! The integrated retrieval driver (paper Algorithm 6) calls `resume` dozens
//! of times per query, so worker threads are spawned **once per engine** and
//! parked between rounds; the dispatch handshake uses a mutex/condvar, but
//! the push/relabel hot path remains lock-free as in the paper.
//!
//! After the workers drain the queue, any excess stranded by the safety
//! height bound is cleared by a sequential fixup pass; on converged runs the
//! fixup performs no pushes, so the parallel phase carries all the work.

use crate::graph::{EdgeId, FlowGraph, VertexId};
use crate::incremental::IncrementalMaxFlow;
use crate::mpmc::BoundedQueue;
use crate::push_relabel::PushRelabel;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Multithreaded push-relabel solver with the same incremental (`resume`)
/// interface as the sequential [`PushRelabel`].
///
/// One engine instance assumes a stable graph *topology* across its
/// `resume` calls (capacities and flows may change freely) — exactly the
/// usage pattern of the binary capacity-scaling driver.
#[derive(Debug)]
pub struct ParallelPushRelabel {
    /// Number of worker threads (the paper evaluates 2).
    pub threads: usize,
    excess: Vec<i64>,
    fixup: PushRelabel,
    topo: Option<Arc<Topology>>,
    pool: Option<WorkerPool>,
    /// Statistics from the most recent run.
    pub last_run: ParallelRunStats,
    /// Pushes across all runs (parallel phase + fixup), for
    /// [`IncrementalMaxFlow::op_counts`].
    total_pushes: u64,
    /// Relabels across all runs.
    total_relabels: u64,
}

/// Telemetry from one parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelRunStats {
    /// Pushes performed by the parallel phase (all threads).
    pub parallel_pushes: u64,
    /// Relabels performed by the parallel phase (all threads).
    pub parallel_relabels: u64,
    /// Pushes the sequential fixup pass had to perform (0 when the parallel
    /// phase fully converged).
    pub fixup_pushes: u64,
}

/// Immutable CSR snapshot of the graph topology, shared with the workers.
#[derive(Debug)]
struct Topology {
    /// `adj[adj_start[v]..adj_start[v+1]]` are the edge slots out of `v`.
    adj_start: Vec<u32>,
    adj: Vec<u32>,
    /// Target vertex per edge slot.
    head: Vec<u32>,
    num_vertices: usize,
}

impl Topology {
    /// Snapshots the graph's CSR arrays directly — three flat memcpys, no
    /// per-vertex walk. The workers then traverse the same layout the
    /// sequential engines do.
    fn from_graph(g: &FlowGraph) -> Topology {
        Topology {
            adj_start: g.csr_index().to_vec(),
            adj: g.csr_list().to_vec(),
            head: g.heads().to_vec(),
            num_vertices: g.num_vertices(),
        }
    }

    #[inline]
    fn out_edges(&self, v: usize) -> &[u32] {
        &self.adj[self.adj_start[v] as usize..self.adj_start[v + 1] as usize]
    }
}

/// Per-round shared state. Push/relabel operations touch only the atomic
/// fields — no locks.
#[derive(Debug)]
struct JobState {
    topo: Arc<Topology>,
    caps: Vec<i64>,
    flow: Vec<AtomicI64>,
    excess: Vec<AtomicI64>,
    height: Vec<AtomicU32>,
    queued: Vec<AtomicBool>,
    queue: BoundedQueue,
    /// Vertices queued or currently being discharged. Zero means quiescent.
    active: AtomicUsize,
    pushes: AtomicUsize,
    relabels: AtomicUsize,
    s: usize,
    t: usize,
    height_cap: u32,
    /// Cumulative relabel count at which the current round is cut short
    /// and control returns to the global relabeler (periodic relabeling).
    relabel_limit: AtomicUsize,
}

impl JobState {
    #[inline]
    fn residual(&self, e: EdgeId) -> i64 {
        self.caps[e] - self.flow[e].load(Ordering::SeqCst)
    }

    /// Enqueues `v` if it is not already owned/queued and can still reach
    /// the sink in this round (height below the phase-1 boundary).
    fn try_enqueue(&self, v: usize) {
        if v == self.s || v == self.t {
            return;
        }
        if self.height[v].load(Ordering::SeqCst) >= self.height_cap {
            return;
        }
        if self.queued[v]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.active.fetch_add(1, Ordering::SeqCst);
            // The queued-flag CAS bounds ring occupancy at one slot per
            // vertex, so the queue is never *logically* full — but the
            // ring's full check is a lap-behind test, not an occupancy
            // test: a consumer preempted between claiming a slot and
            // releasing it makes a push that laps the ring fail
            // transiently. Spin until the stalled consumer's release
            // store lands; panicking here would kill the worker while it
            // owns `v`, leaving `active` stuck positive and livelocking
            // its peers.
            while self.queue.push(v as u32).is_err() {
                std::hint::spin_loop();
            }
        }
    }

    /// Fully discharges `v`. The caller owns `v` (its `queued` flag is set).
    fn discharge(&self, v: usize) {
        let mut local_pushes = 0usize;
        loop {
            let ev = self.excess[v].load(Ordering::SeqCst);
            if ev <= 0 {
                break;
            }
            if self.relabels.load(Ordering::Relaxed) >= self.relabel_limit.load(Ordering::Relaxed) {
                break; // round budget exhausted; global relabel takes over
            }
            // Lowest residual neighbour (Hong & He).
            let mut best_edge = usize::MAX;
            let mut best_h = u32::MAX;
            for &e in self.topo.out_edges(v) {
                let e = e as EdgeId;
                if self.residual(e) > 0 {
                    let h = self.height[self.topo.head[e] as usize].load(Ordering::SeqCst);
                    if h < best_h {
                        best_h = h;
                        best_edge = e;
                    }
                }
            }
            if best_edge == usize::MAX {
                break; // no residual edge: stranded (fixup will handle)
            }
            let hv = self.height[v].load(Ordering::SeqCst);
            if hv > best_h {
                // Push.
                let delta = ev.min(self.residual(best_edge));
                if delta <= 0 {
                    continue; // residual consumed concurrently; rescan
                }
                let w = self.topo.head[best_edge] as usize;
                self.flow[best_edge].fetch_add(delta, Ordering::SeqCst);
                self.flow[best_edge ^ 1].fetch_sub(delta, Ordering::SeqCst);
                self.excess[v].fetch_sub(delta, Ordering::SeqCst);
                self.excess[w].fetch_add(delta, Ordering::SeqCst);
                local_pushes += 1;
                self.try_enqueue(w);
            } else {
                // Relabel (single writer: the owner). The counter is kept
                // exact so the round budget check above sees it promptly.
                let new_h = best_h + 1;
                self.height[v].store(new_h, Ordering::SeqCst);
                self.relabels.fetch_add(1, Ordering::Relaxed);
                if new_h >= self.height_cap {
                    // Phase-1 boundary: a vertex lifted to the source
                    // height can no longer reach the sink this round; its
                    // excess is drained back after quiescence.
                    break;
                }
            }
        }
        if local_pushes > 0 {
            self.pushes.fetch_add(local_pushes, Ordering::Relaxed);
        }
    }
}

/// The lock-free worker loop: pop, discharge, re-check, repeat until the
/// whole job is quiescent.
fn worker_loop(job: &JobState) {
    loop {
        match job.queue.pop() {
            Some(v) => {
                let v = v as usize;
                job.discharge(v);
                // Release ownership, then re-check: a concurrent push may
                // have raced with our final excess read (lost-wakeup guard).
                job.queued[v].store(false, Ordering::SeqCst);
                if job.excess[v].load(Ordering::SeqCst) > 0
                    && job.height[v].load(Ordering::SeqCst) < job.height_cap
                    && job.relabels.load(Ordering::Relaxed)
                        < job.relabel_limit.load(Ordering::Relaxed)
                {
                    job.try_enqueue(v);
                }
                job.active.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if job.active.load(Ordering::SeqCst) == 0 {
                    break;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }
}

/// Global relabeling between rounds (the blocking counterpart of Hong &
/// He's nonblocking heuristic): exact residual distances to `t` by reverse
/// BFS over the job's current (atomic) flow state. Vertices that cannot
/// reach `t` — including the source — get height `n`, the phase-1
/// boundary, stranding their excess for this round.
///
/// Returns the number of vertices (other than `s`/`t`) that hold excess
/// and can still reach the sink; the round only needs to run when this is
/// positive. The workers are parked while this runs, so plain stores into
/// the atomics are race-free.
#[allow(clippy::needless_range_loop)] // the loop indexes four parallel arrays
fn global_relabel(job: &JobState) -> usize {
    let n = job.topo.num_vertices;
    const UNSEEN: u32 = u32::MAX;
    let mut height = vec![UNSEEN; n];
    let mut queue = Vec::with_capacity(n);

    height[job.t] = 0;
    queue.push(job.t as u32);
    let mut head = 0;
    while head < queue.len() {
        let w = queue[head] as usize;
        head += 1;
        let dw = height[w];
        for &e in job.topo.out_edges(w) {
            let e = e as EdgeId;
            let u = job.topo.head[e] as usize;
            if height[u] == UNSEEN && job.residual(e ^ 1) > 0 && u != job.s {
                height[u] = dw + 1;
                queue.push(u as u32);
            }
        }
    }
    let mut reachable_excess = 0;
    for v in 0..n {
        let h = if height[v] == UNSEEN || v == job.s {
            n as u32
        } else {
            height[v]
        };
        job.height[v].store(h, Ordering::SeqCst);
        if v != job.s
            && v != job.t
            && h < job.height_cap
            && job.excess[v].load(Ordering::SeqCst) > 0
        {
            reachable_excess += 1;
        }
    }
    reachable_excess
}

/// Returns trapped excess to the source by cancelling the flow that
/// carried it in (the standard preflow-to-flow conversion, specialized to
/// direct cancellation walks). Every unit of excess strictly reduces total
/// flow mass, so the worklist terminates; cycles of flow are irrelevant
/// because only *incoming* flow of excess vertices is cancelled.
fn drain_trapped_excess(g: &mut FlowGraph, excess: &mut [i64], s: VertexId, t: VertexId) {
    let n = g.num_vertices();
    let mut worklist: Vec<VertexId> = (0..n)
        .filter(|&v| v != s && v != t && excess[v] > 0)
        .collect();
    while let Some(v) = worklist.pop() {
        while excess[v] > 0 {
            // Find an edge currently carrying flow into v: an odd (reverse)
            // slot out of v with positive residual, whose pair is the
            // forward edge (w -> v).
            let mut cancelled = false;
            for i in 0..g.out_edges(v).len() {
                let e = g.out_edges(v)[i] as EdgeId;
                if e % 2 == 1 && g.residual(e) > 0 {
                    let w = g.target(e);
                    let delta = excess[v].min(g.residual(e));
                    g.push(e, delta);
                    excess[v] -= delta;
                    if w == t {
                        excess[w] += delta; // cancelled a t-outflow
                    } else if w != s {
                        if excess[w] == 0 {
                            worklist.push(w);
                        }
                        excess[w] += delta;
                    }
                    cancelled = true;
                    break;
                }
            }
            assert!(
                cancelled,
                "vertex {v} holds excess but has no incoming flow to cancel"
            );
        }
    }
}

/// Persistent worker threads, parked between rounds. The handshake is the
/// only locked code path; push/relabel work happens in [`worker_loop`].
#[derive(Debug)]
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct PoolShared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

#[derive(Debug)]
struct PoolState {
    job: Option<Arc<JobState>>,
    seq: u64,
    running: usize,
    shutdown: bool,
}

impl WorkerPool {
    fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                seq: 0,
                running: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut last_seq = 0;
                    loop {
                        let job = {
                            let mut st = shared.state.lock().unwrap();
                            loop {
                                if st.shutdown {
                                    return;
                                }
                                if st.seq != last_seq {
                                    if let Some(job) = st.job.clone() {
                                        last_seq = st.seq;
                                        break job;
                                    }
                                }
                                st = shared.start.wait(st).unwrap();
                            }
                        };
                        worker_loop(&job);
                        let mut st = shared.state.lock().unwrap();
                        st.running -= 1;
                        if st.running == 0 {
                            shared.done.notify_all();
                        }
                    }
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    fn run(&self, job: Arc<JobState>) {
        let threads = self.handles.len();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.seq += 1;
            st.running = threads;
        }
        self.shared.start.notify_all();
        let mut st = self.shared.state.lock().unwrap();
        while st.running > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ParallelPushRelabel {
    /// Creates a solver with the given worker-thread count (minimum 1).
    /// With one thread the discharge loop runs inline — no pool, no
    /// handshake — making the single-thread configuration a faithful
    /// sequential baseline for speed-up measurements.
    pub fn new(threads: usize) -> Self {
        ParallelPushRelabel {
            threads: threads.max(1),
            excess: Vec::new(),
            fixup: PushRelabel::new(),
            topo: None,
            pool: None,
            last_run: ParallelRunStats::default(),
            total_pushes: 0,
            total_relabels: 0,
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.excess.len() < n {
            self.excess.resize(n, 0);
        }
    }

    /// Drops the cached topology snapshot. The cache is keyed only on the
    /// vertex and edge-slot *counts*, so a caller reusing one engine
    /// across different graphs that happen to match in size must call
    /// this before the next run — otherwise the workers would walk the
    /// stale adjacency structure. The worker pool is unaffected.
    pub fn invalidate_topology(&mut self) {
        self.topo = None;
    }

    fn run(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64 {
        g.finalize();
        let n = g.num_vertices();
        self.ensure(n);

        // Saturate residual source edges (same init as the sequential
        // resume, Algorithm 5 lines 4-10) and cancel flow into the source
        // (circulation through s would otherwise pin capacity and break
        // label validity — see the sequential engine for the argument).
        for i in 0..g.out_edges(s).len() {
            let e = g.out_edges(s)[i] as EdgeId;
            let delta = g.residual(e);
            if delta > 0 {
                let v = g.target(e);
                g.push(e, delta);
                self.excess[v] += delta;
            }
        }
        self.excess[s] = 0;

        // (Re)build the topology snapshot if the graph shape changed.
        let rebuild = match &self.topo {
            Some(topo) => topo.num_vertices != n || topo.head.len() != g.num_edge_slots(),
            None => true,
        };
        if rebuild {
            self.topo = Some(Arc::new(Topology::from_graph(g)));
        }
        let topo = Arc::clone(self.topo.as_ref().expect("topology just built"));

        let job = Arc::new(JobState {
            caps: (0..g.num_edge_slots()).map(|e| g.cap(e)).collect(),
            flow: (0..g.num_edge_slots())
                .map(|e| AtomicI64::new(g.flow(e)))
                .collect(),
            excess: self.excess.iter().map(|&x| AtomicI64::new(x)).collect(),
            height: (0..n).map(|_| AtomicU32::new(0)).collect(),
            queued: (0..n).map(|_| AtomicBool::new(false)).collect(),
            queue: BoundedQueue::with_capacity(n),
            active: AtomicUsize::new(0),
            pushes: AtomicUsize::new(0),
            relabels: AtomicUsize::new(0),
            s,
            t,
            height_cap: n as u32,
            relabel_limit: AtomicUsize::new(0),
            topo,
        });

        // Rounds: global relabel (exact heights), then lock-free
        // discharging until quiescent or the round's relabel budget runs
        // out; repeat while some excess can still reach the sink. The
        // budget plays the role of periodic global relabeling: it stops
        // vertices from climbing one level at a time once the capacity
        // they were aiming for is gone.
        let round_budget = (n).max(64);
        let mut stalled = false;
        loop {
            if global_relabel(&job) == 0 {
                break;
            }
            let pushes_before = job.pushes.load(Ordering::Relaxed);
            let relabels_before = job.relabels.load(Ordering::Relaxed);
            job.relabel_limit
                .store(relabels_before + round_budget, Ordering::Relaxed);
            for v in 0..n {
                if v != s
                    && v != t
                    && job.excess[v].load(Ordering::SeqCst) > 0
                    && job.height[v].load(Ordering::SeqCst) < job.height_cap
                {
                    job.queued[v].store(true, Ordering::Relaxed);
                    job.active.fetch_add(1, Ordering::Relaxed);
                    // Workers are parked between rounds and drain the ring
                    // before exiting, so seeding runs single-threaded
                    // against an empty queue: unlike the racy push in
                    // `try_enqueue`, this one can never fail.
                    job.queue
                        .push(v as u32)
                        .expect("vertex queue sized to hold every vertex");
                }
            }
            if self.threads == 1 {
                worker_loop(&job);
            } else {
                if self.pool.is_none() {
                    self.pool = Some(WorkerPool::new(self.threads));
                }
                self.pool
                    .as_ref()
                    .expect("pool just built")
                    .run(Arc::clone(&job));
            }
            let no_progress = job.pushes.load(Ordering::Relaxed) == pushes_before
                && job.relabels.load(Ordering::Relaxed) == relabels_before;
            if no_progress {
                // Cannot happen (a queued vertex always pushes or
                // relabels), but guard against silently looping forever.
                stalled = true;
                break;
            }
        }

        // Copy atomic state back into the graph and solver.
        for e in 0..g.num_edge_slots() {
            g.set_flow_raw(e, job.flow[e].load(Ordering::SeqCst));
        }
        for v in 0..n {
            self.excess[v] = job.excess[v].load(Ordering::SeqCst);
        }
        self.excess[s] = 0;

        self.last_run = ParallelRunStats {
            parallel_pushes: job.pushes.load(Ordering::Relaxed) as u64,
            parallel_relabels: job.relabels.load(Ordering::Relaxed) as u64,
            fixup_pushes: 0,
        };
        self.total_pushes += self.last_run.parallel_pushes;
        self.total_relabels += self.last_run.parallel_relabels;

        if stalled {
            // Defensive fallback: finish with the (two-phase) sequential
            // engine rather than risk a silently suboptimal schedule.
            for v in 0..n {
                self.fixup.set_excess(v, self.excess[v]);
            }
            let before = self.fixup.stats.pushes;
            let relabels_before = self.fixup.stats.relabels;
            let val = self.fixup.resume(g, s, t);
            self.last_run.fixup_pushes = self.fixup.stats.pushes - before;
            self.total_pushes += self.last_run.fixup_pushes;
            self.total_relabels += self.fixup.stats.relabels - relabels_before;
            for v in 0..n {
                self.excess[v] = self.fixup.excess(v);
            }
            return val;
        }

        // Drain excess stranded at the phase-1 boundary back toward the
        // source by cancelling the inflow that carried it, leaving a valid
        // *flow* (conservation holds everywhere except s and t). The walks
        // follow existing flow edges directly — no height bookkeeping — so
        // this is linear in the stranded mass.
        drain_trapped_excess(g, &mut self.excess, s, t);
        self.excess[t]
    }
}

impl IncrementalMaxFlow for ParallelPushRelabel {
    fn max_flow(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.zero_flows();
        self.ensure(g.num_vertices());
        self.excess.iter_mut().for_each(|e| *e = 0);
        self.run(g, s, t)
    }

    fn resume(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        self.ensure(g.num_vertices());
        self.run(g, s, t)
    }

    fn excess(&self, v: VertexId) -> i64 {
        self.excess.get(v).copied().unwrap_or(0)
    }

    fn set_excess(&mut self, v: VertexId, x: i64) {
        self.ensure(v + 1);
        self.excess[v] = x;
    }

    fn op_counts(&self) -> (u64, u64) {
        (self.total_pushes, self.total_relabels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use crate::validate::assert_valid_flow;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn clrs_single_thread() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(1).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn clrs_two_threads() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(2).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn clrs_four_threads() {
        let (mut g, s, t) = clrs();
        assert_eq!(ParallelPushRelabel::new(4).max_flow(&mut g, s, t), 23);
        assert_valid_flow(&g, s, t);
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(2024);
        for case in 0..40 {
            let n = rng.gen_range(4..20);
            let m = rng.gen_range(n..5 * n);
            let mut g = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..30));
                }
            }
            let mut oracle = g.clone();
            let want = dinic::max_flow(&mut oracle, 0, n - 1);
            let got = ParallelPushRelabel::new(2).max_flow(&mut g, 0, n - 1);
            assert_eq!(got, want, "case {case}");
            assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn resume_after_capacity_increase() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 10);
        let bottleneck = g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 10);
        let mut pr = ParallelPushRelabel::new(2);
        assert_eq!(pr.max_flow(&mut g, 0, 3), 3);
        g.set_cap(bottleneck, 8);
        assert_eq!(pr.resume(&mut g, 0, 3), 8);
        assert_valid_flow(&g, 0, 3);
    }

    #[test]
    fn repeated_resume_matches_sequential() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 14;
        let mut g = FlowGraph::new(n);
        let mut sink_edges = Vec::new();
        for v in 1..n - 1 {
            g.add_edge(0, v, rng.gen_range(1..4));
            sink_edges.push(g.add_edge(v, n - 1, 0));
        }
        for _ in 0..25 {
            let u = rng.gen_range(1..n - 1);
            let v = rng.gen_range(1..n - 1);
            if u != v {
                g.add_edge(u, v, rng.gen_range(0..3));
            }
        }
        let mut pr = ParallelPushRelabel::new(2);
        pr.max_flow(&mut g, 0, n - 1);
        for _ in 0..12 {
            let e = sink_edges[rng.gen_range(0..sink_edges.len())];
            g.set_cap(e, g.cap(e) + 1);
            let got = pr.resume(&mut g, 0, n - 1);
            let mut oracle = g.clone();
            let want = dinic::max_flow(&mut oracle, 0, n - 1);
            assert_eq!(got, want);
            assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn pool_survives_many_rounds() {
        // Exercises the park/dispatch handshake far more times than any
        // single retrieval solve does.
        let mut g = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 10_000);
        let mut pr = ParallelPushRelabel::new(2);
        assert_eq!(pr.max_flow(&mut g, 0, 2), 1);
        for want in 2..200 {
            g.set_cap(e0, want);
            assert_eq!(pr.resume(&mut g, 0, 2), want);
        }
    }

    #[test]
    fn topology_rebuild_on_new_graph_shape() {
        let mut pr = ParallelPushRelabel::new(2);
        let mut g1 = FlowGraph::new(3);
        g1.add_edge(0, 1, 4);
        g1.add_edge(1, 2, 4);
        assert_eq!(pr.max_flow(&mut g1, 0, 2), 4);
        // Different topology through the same engine.
        let mut g2 = FlowGraph::new(5);
        g2.add_edge(0, 1, 2);
        g2.add_edge(0, 2, 2);
        g2.add_edge(1, 3, 2);
        g2.add_edge(2, 3, 2);
        g2.add_edge(3, 4, 3);
        assert_eq!(pr.max_flow(&mut g2, 0, 4), 3);
    }

    #[test]
    fn invalidate_topology_allows_same_size_reuse() {
        // Two graphs with identical vertex/edge counts but different
        // shapes: the size-keyed cache cannot tell them apart, so the
        // caller invalidates between runs.
        let mut pr = ParallelPushRelabel::new(2);
        let mut g1 = FlowGraph::new(4);
        g1.add_edge(0, 1, 3);
        g1.add_edge(1, 3, 2);
        g1.add_edge(0, 2, 1);
        g1.add_edge(2, 3, 5);
        assert_eq!(pr.max_flow(&mut g1, 0, 3), 3);
        let mut g2 = FlowGraph::new(4);
        g2.add_edge(0, 2, 6);
        g2.add_edge(2, 1, 6);
        g2.add_edge(1, 3, 4);
        g2.add_edge(0, 3, 1);
        pr.invalidate_topology();
        pr.reset_excess(4);
        assert_eq!(pr.max_flow(&mut g2, 0, 3), 5);
    }

    #[test]
    fn stats_recorded() {
        let (mut g, s, t) = clrs();
        let mut pr = ParallelPushRelabel::new(2);
        pr.max_flow(&mut g, s, t);
        assert!(pr.last_run.parallel_pushes > 0);
    }
}
