//! Residual flow-graph arena in compressed-sparse-row (CSR) layout.
//!
//! Edges are stored in pairs: for every forward edge `e` added through
//! [`FlowGraph::add_edge`], the reverse (residual) edge is `e ^ 1`. The
//! reverse edge has capacity 0 and its flow mirrors the forward edge's flow
//! negated, so `residual(e ^ 1) == flow(e)`.
//!
//! Capacities are mutable after construction ([`FlowGraph::set_cap`]): the
//! integrated retrieval algorithms of the paper repeatedly *increase*
//! disk-edge capacities while keeping the flow computed so far, so the graph
//! is designed to keep flow and capacity as separate arrays rather than a
//! single residual-capacity array.
//!
//! # Layout
//!
//! All per-edge state lives in flat structure-of-arrays buffers owned by a
//! [`GraphArena`]: `head`/`cap`/`flow` indexed by edge slot, plus the CSR
//! adjacency pair `adj_index` (one offset per vertex, length `n + 1`) and
//! `adj_list` (edge slots grouped by owning vertex). A vertex's outgoing
//! slots are the contiguous range `adj_list[adj_index[v]..adj_index[v + 1]]`
//! — one cache-friendly slice instead of the former per-vertex `Vec`
//! (a heap allocation and pointer chase per vertex on every hot loop).
//!
//! Topology mutation ([`FlowGraph::add_edge`]) appends to the edge arrays
//! and marks the CSR index stale; [`FlowGraph::finalize`] rebuilds it with a
//! *stable* counting sort in `O(n + m)` using only reused buffers. Stability
//! matters: per-vertex slot order stays exactly the insertion order the old
//! `Vec<Vec<u32>>` layout produced, so every solver's traversal order — and
//! its operation counts — are unchanged. Solver entry points (which take
//! `&mut FlowGraph`) finalize automatically; [`FlowGraph::out_edges`] panics
//! on a stale index rather than returning stale adjacency.
//!
//! # Width
//!
//! The capacity/flow arrays are generic over an [`ArenaIndex`] width: `i64`
//! (the default, and the width of every public snapshot) or `i32` (the
//! *compact* layout — half the per-edge cache footprint, which the
//! graph_layout bench measures at ~1.25x on paper-scale instances). The
//! width is monomorphized — no dyn dispatch anywhere on the hot path — and
//! every accessor keeps an `i64` signature: values widen on load and narrow
//! (debug-checked) on store, so solver code is width-oblivious. Safety rests
//! on the invariants `0 <= flow(e) <= cap(e)` for forward slots and
//! `-cap(e ^ 1) <= flow(e) <= 0` for reverse slots: whenever every capacity
//! fits the width, every flow and residual does too. Callers pick the width
//! per instance from its capacity bound (see `rds-core`'s workspace) and
//! fall back to `i64`; [`FlowGraph::try_copy_from`] narrows checked, with a
//! typed [`WidthOverflow`] instead of a panic.

/// Index of a vertex in a [`FlowGraph`].
pub type VertexId = usize;

/// Index of a directed edge in a [`FlowGraph`]. The reverse edge of `e` is
/// always `e ^ 1`.
pub type EdgeId = usize;

mod sealed {
    pub trait Sealed {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

/// Storage width of a [`GraphArena`]'s capacity/flow arrays.
///
/// Sealed: exactly `i32` (compact) and `i64` (wide) implement it. The trait
/// exists only to monomorphize the arena — all arithmetic happens in `i64`
/// at the accessor boundary, so implementors just widen and narrow.
pub trait ArenaIndex:
    sealed::Sealed + Copy + Default + Ord + std::fmt::Debug + Send + Sync + 'static
{
    /// Width name for diagnostics ("i32" / "i64").
    const NAME: &'static str;
    /// Largest representable value, widened.
    const MAX: i64;
    /// Widens to `i64` (lossless).
    fn to_i64(self) -> i64;
    /// Narrows from `i64`. Debug-asserts the value fits; release builds
    /// truncate, which the width-selection rule (capacities bounded well
    /// under [`ArenaIndex::MAX`]) makes unreachable.
    fn from_i64(v: i64) -> Self;
    /// Checked narrowing; `None` when the value does not fit.
    fn try_from_i64(v: i64) -> Option<Self>;
}

impl ArenaIndex for i32 {
    const NAME: &'static str = "i32";
    const MAX: i64 = i32::MAX as i64;
    #[inline(always)]
    fn to_i64(self) -> i64 {
        self as i64
    }
    #[inline(always)]
    fn from_i64(v: i64) -> Self {
        debug_assert!(
            i32::try_from(v).is_ok(),
            "value {v} exceeds the compact (i32) arena width"
        );
        v as i32
    }
    #[inline(always)]
    fn try_from_i64(v: i64) -> Option<Self> {
        i32::try_from(v).ok()
    }
}

impl ArenaIndex for i64 {
    const NAME: &'static str = "i64";
    const MAX: i64 = i64::MAX;
    #[inline(always)]
    fn to_i64(self) -> i64 {
        self
    }
    #[inline(always)]
    fn from_i64(v: i64) -> Self {
        v
    }
    #[inline(always)]
    fn try_from_i64(v: i64) -> Option<Self> {
        Some(v)
    }
}

/// A capacity or flow value did not fit the destination width during a
/// checked cross-width operation ([`FlowGraph::try_copy_from`],
/// [`FlowGraph::try_restore_flows`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WidthOverflow {
    /// Edge slot holding the offending value.
    pub edge: EdgeId,
    /// The value that does not fit.
    pub value: i64,
    /// Name of the destination width (e.g. "i32").
    pub width: &'static str,
}

impl std::fmt::Display for WidthOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} on edge slot {} does not fit the {} arena width",
            self.value, self.edge, self.width
        )
    }
}

impl std::error::Error for WidthOverflow {}

/// The immutable half of a CSR arena: everything that describes the
/// network *shape* and nothing that a solve mutates.
///
/// `head`, `adj_index` and `adj_list` are width-free (`u32` regardless of
/// the capacity width), so one plane can back both the wide and the
/// compact arena. Planes are held behind an [`std::sync::Arc`] and shared
/// copy-on-write: [`FlowGraph::checkout_plane_from`] shares a finalized
/// plane in O(1), and any later topology mutation on either side
/// ([`FlowGraph::add_edge`], [`FlowGraph::reset`], [`FlowGraph::finalize`]
/// after new edges) detaches a private copy first — a detach counts as an
/// [`GraphArena::allocation_events`] event, which is how the serving
/// layers pin "the epoch plane was never invalidated in steady state".
#[derive(Clone, Debug, Default)]
pub struct TopologyPlane {
    /// `head[e]` is the target vertex of edge slot `e`. The owning (source)
    /// vertex of `e` is `head[e ^ 1]`.
    head: Vec<u32>,
    /// CSR offsets: vertex `v` owns `adj_list[adj_index[v]..adj_index[v+1]]`.
    adj_index: Vec<u32>,
    /// Edge slots grouped by owning vertex, insertion order within a vertex.
    adj_list: Vec<u32>,
}

/// Returns the plane for mutation, detaching a private copy first when it
/// is shared (copy-on-write). A detach is a real allocation, so it counts
/// as a growth event.
#[inline]
fn topo_mut<'a>(
    topo: &'a mut std::sync::Arc<TopologyPlane>,
    grows: &mut u64,
) -> &'a mut TopologyPlane {
    if std::sync::Arc::get_mut(topo).is_none() {
        *grows += 1;
    }
    std::sync::Arc::make_mut(topo)
}

/// The flat reusable buffers backing a [`FlowGraph`].
///
/// The arena is split into two planes: the topology plane
/// ([`TopologyPlane`]: `head`/`adj_index`/`adj_list`, immutable per epoch
/// and shareable across graphs of *either* width) and the per-query
/// capacity/flow plane (`cap`/`flow`, private to this arena and mutated by
/// every solve).
///
/// The arena never shrinks: [`FlowGraph::reset`] and
/// [`FlowGraph::copy_from`] clear lengths but keep capacity, so a rebuild of
/// similar size touches no allocator. [`GraphArena::allocation_events`]
/// counts the times any buffer actually grew — steady-state serving layers
/// assert it stays flat (see `rds-core`'s workspace). Detaching a shared
/// topology plane (copy-on-write) counts too: in a healthy epoch it never
/// happens.
#[derive(Clone, Debug, Default)]
pub struct GraphArena<W: ArenaIndex = i64> {
    /// The shared-or-private topology plane. `Clone` on the arena shares it
    /// (copy-on-write); deep copies go through [`FlowGraph::copy_from`].
    topo: std::sync::Arc<TopologyPlane>,
    /// Capacity of each edge slot. Reverse slots have capacity 0.
    cap: Vec<W>,
    /// Current flow on each edge slot; `flow[e ^ 1] == -flow[e]`.
    flow: Vec<W>,
    /// Counting-sort cursors, reused across [`FlowGraph::finalize`] calls.
    cursor: Vec<u32>,
    /// Number of buffer growth events since construction.
    grows: u64,
}

impl<W: ArenaIndex> GraphArena<W> {
    /// Number of times any backing buffer had to grow. Stable across
    /// steady-state rebuild/solve cycles once the arena has seen its
    /// high-water instance size.
    #[inline]
    pub fn allocation_events(&self) -> u64 {
        self.grows
    }

    /// Bytes currently reserved by the arena's buffers (the topology plane
    /// is counted in full even when it is shared with other arenas).
    pub fn reserved_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.topo.head.capacity() + self.topo.adj_index.capacity())
            .saturating_add(self.topo.adj_list.capacity() + self.cursor.capacity())
            * size_of::<u32>()
            + (self.cap.capacity() + self.flow.capacity()) * size_of::<W>()
    }
}

/// Issues a best-effort read prefetch for the cache line holding `*ptr`.
/// Purely a cache hint — no architectural side effects, so instrumented
/// operation counts and traversal digests are unchanged by its presence.
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// A directed flow network with mutable capacities and explicit flow state,
/// stored in a CSR residual arena.
///
/// The graph is append-only in topology (vertices and edges can be added,
/// never removed); capacities and flows are mutable. This matches the
/// retrieval workload: the network shape is fixed per query while disk-edge
/// capacities evolve during the budget search.
///
/// `W` selects the storage width of capacities and flows (see the module
/// docs); the default `i64` keeps every existing `FlowGraph` use unchanged.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph<W: ArenaIndex = i64> {
    arena: GraphArena<W>,
    /// Number of vertices (authoritative; `adj_index` tracks it lazily).
    n: usize,
    /// Whether `adj_index`/`adj_list` are stale relative to the edge arrays.
    dirty: bool,
}

impl<W: ArenaIndex> FlowGraph<W> {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        let mut g = FlowGraph::default();
        g.reset(n);
        g
    }

    /// Creates an empty graph with `n` vertices, reserving space for
    /// `edges` forward edges (twice that many edge slots).
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        let mut g = FlowGraph {
            arena: GraphArena {
                topo: std::sync::Arc::new(TopologyPlane {
                    head: Vec::with_capacity(2 * edges),
                    adj_index: Vec::with_capacity(n + 1),
                    adj_list: Vec::with_capacity(2 * edges),
                }),
                cap: Vec::with_capacity(2 * edges),
                flow: Vec::with_capacity(2 * edges),
                cursor: Vec::with_capacity(n),
                grows: 0,
            },
            n: 0,
            dirty: false,
        };
        g.reset(n);
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edge slots (twice the number of added edges).
    #[inline]
    pub fn num_edge_slots(&self) -> usize {
        self.arena.topo.head.len()
    }

    /// Number of forward edges added via [`FlowGraph::add_edge`].
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.arena.topo.head.len() / 2
    }

    /// The backing buffer arena (allocation telemetry).
    #[inline]
    pub fn arena(&self) -> &GraphArena<W> {
        &self.arena
    }

    /// Whether the CSR adjacency index is current. `false` after
    /// [`FlowGraph::add_edge`] until the next [`FlowGraph::finalize`].
    #[inline]
    pub fn is_finalized(&self) -> bool {
        !self.dirty
    }

    /// Adds a vertex and returns its id. Keeps the CSR index valid when it
    /// already is: a new vertex owns no edges, so its offset equals the
    /// running total.
    pub fn add_vertex(&mut self) -> VertexId {
        if !self.dirty {
            let a = &mut self.arena;
            let t = topo_mut(&mut a.topo, &mut a.grows);
            let end = *t.adj_index.last().expect("index has n+1 entries");
            track_grow(&mut a.grows, &mut t.adj_index, |idx| idx.push(end));
        }
        self.n += 1;
        self.n - 1
    }

    /// Pre-sizes the arena for at least `edges` forward edges (twice that
    /// many slots), so a cold build pays one allocation per array instead
    /// of doubling growth, and a steady-state rebuild under the bound pays
    /// none. Callers that know their topology ahead (the retrieval network
    /// builders do: `q` bucket arcs, at most `MAX_COPIES` replica arcs per
    /// bucket, one arc per disk) should call this right after
    /// [`FlowGraph::reset`].
    pub fn reserve_edges(&mut self, edges: usize) {
        let slots = edges * 2;
        let a = &mut self.arena;
        track_grow(&mut a.grows, &mut a.cap, |v| {
            v.reserve(slots.saturating_sub(v.len()))
        });
        track_grow(&mut a.grows, &mut a.flow, |v| {
            v.reserve(slots.saturating_sub(v.len()))
        });
        let t = topo_mut(&mut a.topo, &mut a.grows);
        track_grow(&mut a.grows, &mut t.head, |v| {
            v.reserve(slots.saturating_sub(v.len()))
        });
        track_grow(&mut a.grows, &mut t.adj_list, |v| {
            v.reserve(slots.saturating_sub(v.len()))
        });
    }

    /// Adds a forward edge `u -> v` with capacity `cap` and its paired
    /// reverse edge `v -> u` with capacity 0, and marks the CSR index stale
    /// (see [`FlowGraph::finalize`]). Returns the forward edge id (always
    /// even).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, cap: i64) -> EdgeId {
        assert!(u < self.n, "source vertex {u} out of range");
        assert!(v < self.n, "target vertex {v} out of range");
        assert!(cap >= 0, "negative capacity {cap}");
        let a = &mut self.arena;
        let t = topo_mut(&mut a.topo, &mut a.grows);
        let e = t.head.len();
        let before = t.head.capacity();
        t.head.push(v as u32);
        t.head.push(u as u32);
        a.grows += (t.head.capacity() != before) as u64;
        a.cap.push(W::from_i64(cap));
        a.cap.push(W::default());
        a.flow.push(W::default());
        a.flow.push(W::default());
        self.dirty = true;
        e
    }

    /// Rebuilds the CSR adjacency index after topology changes, preserving
    /// per-vertex insertion order (stable counting sort, `O(n + m)`, no
    /// allocations once the arena has grown to size). Idempotent and cheap
    /// when the index is already current.
    ///
    /// Solver entry points call this automatically; only callers that read
    /// [`FlowGraph::out_edges`] directly after [`FlowGraph::add_edge`] need
    /// to invoke it themselves.
    pub fn finalize(&mut self) {
        if !self.dirty {
            return;
        }
        let n = self.n;
        let a = &mut self.arena;
        let t = topo_mut(&mut a.topo, &mut a.grows);
        let m = t.head.len();
        let before = t.adj_index.capacity() + t.adj_list.capacity() + a.cursor.capacity();
        t.adj_index.clear();
        t.adj_index.resize(n + 1, 0);
        // Count slots per owning vertex; the owner of slot e is head[e ^ 1].
        for e in 0..m {
            t.adj_index[t.head[e ^ 1] as usize + 1] += 1;
        }
        for v in 0..n {
            t.adj_index[v + 1] += t.adj_index[v];
        }
        a.cursor.clear();
        a.cursor.extend_from_slice(&t.adj_index[..n]);
        // Stable placement pass: ascending slot id within each vertex. The
        // scattered writes go through spare capacity so the buffer is not
        // zeroed first — every position in `0..m` is written exactly once
        // (the per-vertex counts sum to `m`), which is what makes the
        // `set_len` below sound.
        t.adj_list.clear();
        t.adj_list.reserve(m);
        let spare = t.adj_list.spare_capacity_mut();
        for e in 0..m {
            let src = t.head[e ^ 1] as usize;
            let slot = a.cursor[src];
            spare[slot as usize].write(e as u32);
            a.cursor[src] = slot + 1;
        }
        // SAFETY: the placement pass above initialized all `m` entries.
        unsafe { t.adj_list.set_len(m) };
        a.grows +=
            (t.adj_index.capacity() + t.adj_list.capacity() + a.cursor.capacity() != before) as u64;
        self.dirty = false;
    }

    /// Target vertex of edge `e`.
    #[inline]
    pub fn target(&self, e: EdgeId) -> VertexId {
        self.arena.topo.head[e] as usize
    }

    /// Source vertex of edge `e` (the target of its reverse edge).
    #[inline]
    pub fn source(&self, e: EdgeId) -> VertexId {
        self.arena.topo.head[e ^ 1] as usize
    }

    /// Capacity of edge `e`.
    #[inline]
    pub fn cap(&self, e: EdgeId) -> i64 {
        self.arena.cap[e].to_i64()
    }

    /// Sets the capacity of edge `e`.
    ///
    /// The integrated algorithms only ever *raise* capacities while flow is
    /// conserved; lowering a capacity below the current flow leaves the
    /// stored flow infeasible, which callers must handle (the binary
    /// capacity-scaling driver restores a compatible flow snapshot first).
    #[inline]
    pub fn set_cap(&mut self, e: EdgeId, cap: i64) {
        debug_assert!(cap >= 0, "negative capacity {cap}");
        self.arena.cap[e] = W::from_i64(cap);
    }

    /// Current flow on edge `e` (negative on reverse edges).
    #[inline]
    pub fn flow(&self, e: EdgeId) -> i64 {
        self.arena.flow[e].to_i64()
    }

    /// Residual capacity of edge `e`: `cap(e) - flow(e)`.
    #[inline]
    pub fn residual(&self, e: EdgeId) -> i64 {
        self.arena.cap[e].to_i64() - self.arena.flow[e].to_i64()
    }

    /// Pushes `delta` units of flow along edge `e`, updating the paired
    /// reverse edge.
    ///
    /// # Panics
    ///
    /// Debug-panics if `delta` exceeds the residual capacity of `e`.
    #[inline]
    pub fn push(&mut self, e: EdgeId, delta: i64) {
        debug_assert!(
            delta <= self.residual(e),
            "push of {delta} exceeds residual {} on edge {e}",
            self.residual(e)
        );
        self.arena.flow[e] = W::from_i64(self.arena.flow[e].to_i64() + delta);
        self.arena.flow[e ^ 1] = W::from_i64(self.arena.flow[e ^ 1].to_i64() - delta);
    }

    /// Overwrites the raw flow value of a single edge slot *without*
    /// touching its pair. Used by the parallel solver to copy atomic flow
    /// state back into the graph; both slots of every pair must be written
    /// for the pairing invariant to hold afterwards.
    #[inline]
    pub fn set_flow_raw(&mut self, e: EdgeId, flow: i64) {
        self.arena.flow[e] = W::from_i64(flow);
    }

    /// Target vertex of edge `e`, without the release-mode bounds check.
    ///
    /// Internal fast path for solver inner loops. Callers must pass an edge
    /// id obtained from [`FlowGraph::out_edges`] of this graph (those are
    /// valid by construction); the `debug_assert!` checks the contract in
    /// debug builds, where every test suite runs.
    #[inline(always)]
    pub(crate) fn target_fast(&self, e: EdgeId) -> VertexId {
        debug_assert!(e < self.arena.topo.head.len(), "edge {e} out of range");
        // SAFETY: guarded by the documented contract + debug_assert above.
        unsafe { *self.arena.topo.head.get_unchecked(e) as usize }
    }

    /// Residual capacity of edge `e`, without release-mode bounds checks.
    /// Same contract as [`FlowGraph::target_fast`].
    #[inline(always)]
    pub(crate) fn residual_fast(&self, e: EdgeId) -> i64 {
        debug_assert!(e < self.arena.cap.len(), "edge {e} out of range");
        // SAFETY: guarded by the documented contract + debug_assert above.
        unsafe {
            self.arena.cap.get_unchecked(e).to_i64() - self.arena.flow.get_unchecked(e).to_i64()
        }
    }

    /// [`FlowGraph::push`] without release-mode bounds checks. Same contract
    /// as [`FlowGraph::target_fast`]; the residual-overflow `debug_assert!`
    /// of `push` applies unchanged.
    #[inline(always)]
    pub(crate) fn push_fast(&mut self, e: EdgeId, delta: i64) {
        debug_assert!(e < self.arena.flow.len(), "edge {e} out of range");
        debug_assert!(
            delta <= self.residual(e),
            "push of {delta} exceeds residual {} on edge {e}",
            self.residual(e)
        );
        // SAFETY: guarded by the documented contract + debug_assert above;
        // e ^ 1 is in range whenever e is, because slots come in pairs.
        unsafe {
            let f = self.arena.flow.get_unchecked(e).to_i64() + delta;
            *self.arena.flow.get_unchecked_mut(e) = W::from_i64(f);
            let r = self.arena.flow.get_unchecked(e ^ 1).to_i64() - delta;
            *self.arena.flow.get_unchecked_mut(e ^ 1) = W::from_i64(r);
        }
    }

    /// Adjacency bounds of vertex `v` as absolute `adj_list` positions
    /// `[lo, hi)`, without release-mode bounds checks.
    ///
    /// Solver inner loops hoist this pair once per vertex visit and then
    /// walk slots with [`FlowGraph::adj_slot`]: topology is frozen for the
    /// whole solve, so the bounds cannot move, and re-deriving the
    /// `out_edges` slice per arc would re-pay the staleness check and two
    /// index loads each time. Same contract as [`FlowGraph::target_fast`]
    /// (finalized graph, `v` in range), checked by `debug_assert!` where
    /// every test suite runs.
    #[inline(always)]
    pub(crate) fn adj_bounds(&self, v: VertexId) -> (u32, u32) {
        debug_assert!(!self.dirty, "adj_bounds on stale topology: call finalize()");
        debug_assert!(
            v + 1 < self.arena.topo.adj_index.len(),
            "vertex {v} out of range"
        );
        // SAFETY: guarded by the documented contract + debug_assert above.
        unsafe {
            (
                *self.arena.topo.adj_index.get_unchecked(v),
                *self.arena.topo.adj_index.get_unchecked(v + 1),
            )
        }
    }

    /// Edge id stored at absolute adjacency position `pos`, without
    /// release-mode bounds checks. `pos` must lie inside a `[lo, hi)` pair
    /// returned by [`FlowGraph::adj_bounds`] on this (still finalized)
    /// graph.
    #[inline(always)]
    pub(crate) fn adj_slot(&self, pos: u32) -> EdgeId {
        debug_assert!(!self.dirty, "adj_slot on stale topology: call finalize()");
        debug_assert!(
            (pos as usize) < self.arena.topo.adj_list.len(),
            "adjacency position {pos} out of range"
        );
        // SAFETY: guarded by the documented contract + debug_assert above.
        unsafe { *self.arena.topo.adj_list.get_unchecked(pos as usize) as EdgeId }
    }

    /// Prefetches the per-edge state (`head`/`cap`/`flow`) of the edge a
    /// few adjacency positions ahead of `pos`, hiding the dependent-load
    /// latency of `adj_list[pos] -> edge arrays` in the discharge and
    /// global-relabel walks. `hi` is the walk bound from
    /// [`FlowGraph::adj_bounds`]. Purely a cache hint (see
    /// [`prefetch_read`]); a no-op on non-x86_64 targets.
    #[inline(always)]
    pub(crate) fn prefetch_adj(&self, pos: u32, hi: u32) {
        const DIST: u32 = 16;
        let p = pos.wrapping_add(DIST);
        if p < hi {
            debug_assert!((p as usize) < self.arena.topo.adj_list.len());
            // SAFETY: p < hi <= adj_list.len() per the adj_bounds contract.
            let e = unsafe { *self.arena.topo.adj_list.get_unchecked(p as usize) } as usize;
            prefetch_read(self.arena.cap.as_ptr().wrapping_add(e));
            prefetch_read(self.arena.flow.as_ptr().wrapping_add(e));
            prefetch_read(self.arena.topo.head.as_ptr().wrapping_add(e));
        }
    }

    /// [`FlowGraph::prefetch_adj`] for walks that test the *target* before
    /// touching edge state (the lowest-neighbour scan): fetches only the
    /// `head` word, keeping the cap/flow lines out of the way of scans
    /// that will reject most edges on height alone.
    #[inline(always)]
    pub(crate) fn prefetch_adj_head(&self, pos: u32, hi: u32) {
        const DIST: u32 = 16;
        let p = pos.wrapping_add(DIST);
        if p < hi {
            debug_assert!((p as usize) < self.arena.topo.adj_list.len());
            // SAFETY: p < hi <= adj_list.len() per the adj_bounds contract.
            let e = unsafe { *self.arena.topo.adj_list.get_unchecked(p as usize) } as usize;
            prefetch_read(self.arena.topo.head.as_ptr().wrapping_add(e));
        }
    }

    /// Outgoing edge ids of vertex `v` (both forward and reverse slots), in
    /// insertion order — one contiguous CSR slice.
    ///
    /// # Panics
    ///
    /// Panics if the CSR index is stale (topology changed since the last
    /// [`FlowGraph::finalize`]); returning stale adjacency would be a silent
    /// wrong answer.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[u32] {
        assert!(!self.dirty, "out_edges on stale topology: call finalize()");
        let lo = self.arena.topo.adj_index[v] as usize;
        let hi = self.arena.topo.adj_index[v + 1] as usize;
        &self.arena.topo.adj_list[lo..hi]
    }

    /// Out-degree counting only *forward* edges (even ids), i.e. edges added
    /// explicitly with `v` as the source. Works on stale topology (falls
    /// back to an edge-array scan).
    pub fn forward_out_degree(&self, v: VertexId) -> usize {
        if self.dirty {
            return self
                .forward_edges()
                .filter(|&e| self.source(e) == v)
                .count();
        }
        self.out_edges(v).iter().filter(|&&e| e % 2 == 0).count()
    }

    /// In-degree counting only forward edges pointing at `v`. This is the
    /// `in_degree` used by the paper's `IncrementMinCost` (Algorithm 3): for
    /// a disk vertex it equals the number of query buckets stored on the
    /// disk. Works on stale topology (falls back to an edge-array scan).
    pub fn forward_in_degree(&self, v: VertexId) -> usize {
        if self.dirty {
            return self
                .forward_edges()
                .filter(|&e| self.target(e) == v)
                .count();
        }
        self.out_edges(v).iter().filter(|&&e| e % 2 == 1).count()
    }

    /// Resets all flow values to zero, keeping topology and capacities.
    pub fn zero_flows(&mut self) {
        self.arena.flow.iter_mut().for_each(|f| *f = W::default());
    }

    /// Snapshot of the current flow state (for `StoreFlows`, Algorithm 6).
    /// Always widened to `i64` so snapshots are width-portable.
    ///
    /// Allocates a fresh vector; steady-state callers use
    /// [`FlowGraph::store_flows_into`] with a reused buffer instead.
    pub fn store_flows(&self) -> Vec<i64> {
        self.arena.flow.iter().map(|f| f.to_i64()).collect()
    }

    /// Writes the current flow state into `buf`, reusing its allocation —
    /// the allocation-free counterpart of [`FlowGraph::store_flows`] for
    /// callers that snapshot repeatedly (the binary capacity-scaling
    /// driver stores state on every failed probe).
    pub fn store_flows_into(&self, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend(self.arena.flow.iter().map(|f| f.to_i64()));
    }

    /// Makes `self` a copy of `other`, reusing existing allocations
    /// (including the CSR adjacency buffers) instead of allocating a fresh
    /// graph as `clone` would. Copies the finalization state too: copying a
    /// finalized graph yields a finalized graph.
    pub fn copy_from(&mut self, other: &FlowGraph<W>) {
        let (a, b) = (&mut self.arena, &other.arena);
        track_grow(&mut a.grows, &mut a.cap, |v| v.clone_from(&b.cap));
        track_grow(&mut a.grows, &mut a.flow, |v| v.clone_from(&b.flow));
        // A plane already shared with the source is bit-identical by the
        // copy-on-write invariant — skip the deep topology copy.
        if !std::sync::Arc::ptr_eq(&a.topo, &b.topo) {
            let t = topo_mut(&mut a.topo, &mut a.grows);
            track_grow(&mut a.grows, &mut t.head, |v| v.clone_from(&b.topo.head));
            track_grow(&mut a.grows, &mut t.adj_index, |v| {
                v.clone_from(&b.topo.adj_index)
            });
            track_grow(&mut a.grows, &mut t.adj_list, |v| {
                v.clone_from(&b.topo.adj_list)
            });
        }
        self.n = other.n;
        self.dirty = other.dirty;
    }

    /// Cross-width [`FlowGraph::copy_from`]: makes `self` a copy of a graph
    /// of a (possibly) different width, narrowing checked. On
    /// [`WidthOverflow`] `self` is left untouched — the validation pass runs
    /// before any buffer is written — so callers can fall back to the wide
    /// layout cleanly. Allocation-free once `self` has grown to size.
    pub fn try_copy_from<V: ArenaIndex>(
        &mut self,
        other: &FlowGraph<V>,
    ) -> Result<(), WidthOverflow> {
        if W::MAX < V::MAX {
            for (e, (c, f)) in other.arena.cap.iter().zip(&other.arena.flow).enumerate() {
                for value in [c.to_i64(), f.to_i64()] {
                    if W::try_from_i64(value).is_none() {
                        return Err(WidthOverflow {
                            edge: e,
                            value,
                            width: W::NAME,
                        });
                    }
                }
            }
        }
        let (a, b) = (&mut self.arena, &other.arena);
        track_grow(&mut a.grows, &mut a.cap, |v| {
            v.clear();
            v.extend(b.cap.iter().map(|c| W::from_i64(c.to_i64())));
        });
        track_grow(&mut a.grows, &mut a.flow, |v| {
            v.clear();
            v.extend(b.flow.iter().map(|f| W::from_i64(f.to_i64())));
        });
        // Cross-width copies still deep-copy the (width-free) topology
        // unless it is already shared, same as `copy_from`.
        if !std::sync::Arc::ptr_eq(&a.topo, &b.topo) {
            let t = topo_mut(&mut a.topo, &mut a.grows);
            track_grow(&mut a.grows, &mut t.head, |v| v.clone_from(&b.topo.head));
            track_grow(&mut a.grows, &mut t.adj_index, |v| {
                v.clone_from(&b.topo.adj_index)
            });
            track_grow(&mut a.grows, &mut t.adj_list, |v| {
                v.clone_from(&b.topo.adj_list)
            });
        }
        self.n = other.n;
        self.dirty = other.dirty;
        Ok(())
    }

    /// Clears the graph to `n` isolated vertices in place, keeping every
    /// arena buffer allocated so a rebuild of similar size is
    /// allocation-free. The cleared graph is finalized (no edges to index).
    pub fn reset(&mut self, n: usize) {
        let a = &mut self.arena;
        a.cap.clear();
        a.flow.clear();
        // A shared topology plane is about to be invalidated: detach to a
        // fresh private plane instead of deep-cloning contents we would
        // clear anyway. The detach (epoch invalidation) counts as a growth
        // event; an unshared plane keeps its buffers as before.
        if std::sync::Arc::get_mut(&mut a.topo).is_none() {
            a.topo = std::sync::Arc::new(TopologyPlane::default());
            a.grows += 1;
        }
        let t = std::sync::Arc::get_mut(&mut a.topo).expect("plane is private here");
        t.head.clear();
        t.adj_list.clear();
        track_grow(&mut a.grows, &mut t.adj_index, |idx| {
            idx.clear();
            idx.resize(n + 1, 0);
        });
        self.n = n;
        self.dirty = false;
    }

    /// Restores a flow snapshot taken with [`FlowGraph::store_flows`]
    /// (`RestoreFlows`, Algorithm 6). Snapshots are `i64` regardless of the
    /// graph width; values are narrowed debug-checked (snapshots taken from
    /// a graph of this width always fit — use
    /// [`FlowGraph::try_restore_flows`] when that is not known).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the edge count.
    pub fn restore_flows(&mut self, snapshot: &[i64]) {
        assert_eq!(
            snapshot.len(),
            self.arena.flow.len(),
            "flow snapshot does not match graph topology"
        );
        for (dst, &src) in self.arena.flow.iter_mut().zip(snapshot) {
            *dst = W::from_i64(src);
        }
    }

    /// Checked [`FlowGraph::restore_flows`]: fails with a typed
    /// [`WidthOverflow`] (leaving the stored flows untouched) when a
    /// snapshot value does not fit this graph's width — the case a cached
    /// warm-start snapshot hits after its stream outgrew the compact bound.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the edge count.
    pub fn try_restore_flows(&mut self, snapshot: &[i64]) -> Result<(), WidthOverflow> {
        assert_eq!(
            snapshot.len(),
            self.arena.flow.len(),
            "flow snapshot does not match graph topology"
        );
        for (e, &src) in snapshot.iter().enumerate() {
            if W::try_from_i64(src).is_none() {
                return Err(WidthOverflow {
                    edge: e,
                    value: src,
                    width: W::NAME,
                });
            }
        }
        for (dst, &src) in self.arena.flow.iter_mut().zip(snapshot) {
            *dst = W::from_i64(src);
        }
        Ok(())
    }

    /// Net flow into vertex `v` over forward edges; for the sink this is the
    /// flow value. Works on stale topology (falls back to an edge-array
    /// scan: every slot targeting `v` contributes its flow — forward slots
    /// count inflow positively, reverse slots carry the paired outflow
    /// negated).
    pub fn net_inflow(&self, v: VertexId) -> i64 {
        if self.dirty {
            let v = v as u32;
            return self
                .arena
                .topo
                .head
                .iter()
                .zip(&self.arena.flow)
                .filter(|&(&h, _)| h == v)
                .map(|(_, f)| f.to_i64())
                .sum();
        }
        self.out_edges(v)
            .iter()
            .map(|&e| {
                let e = e as usize;
                if e % 2 == 1 {
                    // reverse slot: the paired forward edge points at v
                    self.arena.flow[e ^ 1].to_i64()
                } else {
                    -self.arena.flow[e].to_i64()
                }
            })
            .sum()
    }

    /// Iterator over all forward edge ids.
    pub fn forward_edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.arena.topo.head.len()).step_by(2)
    }

    /// Raw CSR offset array (`n + 1` entries). Internal view letting the
    /// parallel engine snapshot topology with flat memcpys.
    #[inline]
    pub(crate) fn csr_index(&self) -> &[u32] {
        assert!(!self.dirty, "csr_index on stale topology: call finalize()");
        &self.arena.topo.adj_index
    }

    /// Raw CSR adjacency array (edge slots grouped by owner). Same contract
    /// as [`FlowGraph::csr_index`].
    #[inline]
    pub(crate) fn csr_list(&self) -> &[u32] {
        assert!(!self.dirty, "csr_list on stale topology: call finalize()");
        &self.arena.topo.adj_list
    }

    /// Raw edge-target array, indexed by edge slot.
    #[inline]
    pub(crate) fn heads(&self) -> &[u32] {
        &self.arena.topo.head
    }

    /// Whether `self` and `other` currently share one topology plane (the
    /// widths may differ — the plane is width-free). Shared planes are
    /// bit-identical by construction: any mutation detaches first.
    pub fn shares_topology_with<V: ArenaIndex>(&self, other: &FlowGraph<V>) -> bool {
        std::sync::Arc::ptr_eq(&self.arena.topo, &other.arena.topo)
    }

    /// Checks out `other`'s finalized topology plane by reference (an O(1)
    /// `Arc` share — no head/adjacency copy) and copies only its
    /// capacity/flow planes, width-checked. This is the per-query staging
    /// path of the epoch-shared arena: the shape is borrowed from the
    /// epoch's instance, the mutable planes are private to this graph.
    ///
    /// On [`WidthOverflow`] `self` is left untouched (validation runs
    /// before any write), exactly like [`FlowGraph::try_copy_from`].
    /// Allocation-free once the capacity/flow buffers have grown to size
    /// and the plane is already shared from a previous checkout.
    ///
    /// # Panics
    ///
    /// Panics if `other` has a stale CSR index — an unfinalized plane is
    /// not shareable (its adjacency is not built yet).
    pub fn checkout_plane_from<V: ArenaIndex>(
        &mut self,
        other: &FlowGraph<V>,
    ) -> Result<(), WidthOverflow> {
        assert!(
            other.is_finalized(),
            "checkout_plane_from on stale topology: call finalize()"
        );
        if W::MAX < V::MAX {
            for (e, (c, f)) in other.arena.cap.iter().zip(&other.arena.flow).enumerate() {
                for value in [c.to_i64(), f.to_i64()] {
                    if W::try_from_i64(value).is_none() {
                        return Err(WidthOverflow {
                            edge: e,
                            value,
                            width: W::NAME,
                        });
                    }
                }
            }
        }
        let (a, b) = (&mut self.arena, &other.arena);
        if !std::sync::Arc::ptr_eq(&a.topo, &b.topo) {
            a.topo = std::sync::Arc::clone(&b.topo);
        }
        track_grow(&mut a.grows, &mut a.cap, |v| {
            v.clear();
            v.extend(b.cap.iter().map(|c| W::from_i64(c.to_i64())));
        });
        track_grow(&mut a.grows, &mut a.flow, |v| {
            v.clear();
            v.extend(b.flow.iter().map(|f| W::from_i64(f.to_i64())));
        });
        self.n = other.n;
        self.dirty = false;
        Ok(())
    }
}

/// Runs `f` on `buf` and counts one growth event if its capacity changed.
#[inline]
fn track_grow<T>(grows: &mut u64, buf: &mut Vec<T>, f: impl FnOnce(&mut Vec<T>)) {
    let before = buf.capacity();
    f(buf);
    *grows += (buf.capacity() != before) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FlowGraph {
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g.finalize();
        g
    }

    #[test]
    fn edge_pairing_invariants() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        for e in g.forward_edges() {
            assert_eq!(g.source(e), g.target(e ^ 1));
            assert_eq!(g.target(e), g.source(e ^ 1));
            assert_eq!(g.cap(e ^ 1), 0);
        }
    }

    #[test]
    fn push_updates_both_directions() {
        let mut g = diamond();
        g.push(0, 2);
        assert_eq!(g.flow(0), 2);
        assert_eq!(g.flow(1), -2);
        assert_eq!(g.residual(0), 1);
        assert_eq!(g.residual(1), 2); // reverse residual equals pushed flow
    }

    #[test]
    #[should_panic(expected = "exceeds residual")]
    #[cfg(debug_assertions)]
    fn push_over_residual_panics_in_debug() {
        let mut g = diamond();
        g.push(0, 4);
    }

    #[test]
    fn degrees_count_forward_edges_only() {
        let g = diamond();
        assert_eq!(g.forward_out_degree(0), 2);
        assert_eq!(g.forward_in_degree(0), 0);
        assert_eq!(g.forward_in_degree(3), 2);
        assert_eq!(g.forward_out_degree(3), 0);
        assert_eq!(g.forward_in_degree(1), 1);
        assert_eq!(g.forward_out_degree(1), 1);
    }

    #[test]
    fn degrees_work_on_stale_topology() {
        let mut g = diamond();
        g.add_edge(0, 3, 1);
        assert!(!g.is_finalized());
        assert_eq!(g.forward_out_degree(0), 3);
        assert_eq!(g.forward_in_degree(3), 3);
        g.finalize();
        assert_eq!(g.forward_out_degree(0), 3);
        assert_eq!(g.forward_in_degree(3), 3);
    }

    #[test]
    fn store_restore_round_trip() {
        let mut g = diamond();
        g.push(0, 1);
        g.push(4, 1);
        let snap = g.store_flows();
        g.push(2, 1);
        g.restore_flows(&snap);
        assert_eq!(g.flow(0), 1);
        assert_eq!(g.flow(4), 1);
        assert_eq!(g.flow(2), 0);
    }

    #[test]
    fn net_inflow_tracks_flow_value() {
        let mut g = diamond();
        g.push(0, 2); // s -> 1
        g.push(4, 2); // 1 -> t
        assert_eq!(g.net_inflow(3), 2);
        assert_eq!(g.net_inflow(1), 0);
        assert_eq!(g.net_inflow(0), -2);
    }

    #[test]
    fn zero_flows_resets() {
        let mut g = diamond();
        g.push(0, 2);
        g.zero_flows();
        assert_eq!(g.flow(0), 0);
        assert_eq!(g.flow(1), 0);
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = diamond();
        let v = g.add_vertex();
        assert_eq!(v, 4);
        // A fresh vertex on a finalized graph keeps the index valid.
        assert!(g.is_finalized());
        assert!(g.out_edges(v).is_empty());
        let e = g.add_edge(3, v, 5);
        g.finalize();
        assert_eq!(g.target(e), v);
        assert_eq!(g.residual(e), 5);
        assert_eq!(g.out_edges(v), &[(e + 1) as u32]);
    }

    #[test]
    fn set_cap_changes_residual() {
        let mut g = diamond();
        g.push(0, 3);
        assert_eq!(g.residual(0), 0);
        g.set_cap(0, 5);
        assert_eq!(g.residual(0), 2);
    }

    #[test]
    fn store_flows_into_matches_store_flows() {
        let mut g = diamond();
        g.push(0, 2);
        g.push(4, 1);
        let mut buf = vec![99i64; 3];
        g.store_flows_into(&mut buf);
        assert_eq!(buf, g.store_flows());
    }

    #[test]
    fn copy_from_replicates_everything() {
        let src = diamond();
        let mut dst = FlowGraph::new(2);
        dst.add_edge(0, 1, 7);
        dst.copy_from(&src);
        assert_eq!(dst.num_vertices(), src.num_vertices());
        assert_eq!(dst.num_edges(), src.num_edges());
        for e in src.forward_edges() {
            assert_eq!(dst.cap(e), src.cap(e));
            assert_eq!(dst.target(e), src.target(e));
            assert_eq!(dst.flow(e), src.flow(e));
        }
        for v in 0..src.num_vertices() {
            assert_eq!(dst.out_edges(v), src.out_edges(v));
        }
    }

    #[test]
    fn reset_clears_topology_in_place() {
        let mut g = diamond();
        g.push(0, 1);
        g.reset(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        for v in 0..3 {
            assert!(g.out_edges(v).is_empty());
        }
        // The graph is fully usable after a reset.
        let e = g.add_edge(0, 2, 4);
        g.push(e, 4);
        assert_eq!(g.net_inflow(2), 4);
        g.finalize();
        assert_eq!(g.out_edges(0), &[e as u32]);
    }

    #[test]
    #[should_panic(expected = "stale topology")]
    fn out_edges_panics_on_stale_index() {
        let mut g = diamond();
        g.add_edge(0, 3, 1);
        let _ = g.out_edges(0);
    }

    #[test]
    fn finalize_preserves_insertion_order() {
        // Interleave edges so several vertices own non-contiguous slots;
        // per-vertex order must still be ascending slot id (the order the
        // legacy Vec<Vec> layout appended them in).
        let mut g: FlowGraph = FlowGraph::new(5);
        g.add_edge(0, 1, 1); // slots 0/1
        g.add_edge(2, 0, 1); // slots 2/3
        g.add_edge(0, 3, 1); // slots 4/5
        g.add_edge(3, 0, 1); // slots 6/7
        g.add_edge(0, 4, 1); // slots 8/9
        g.finalize();
        assert_eq!(g.out_edges(0), &[0, 3, 4, 7, 8]);
        assert_eq!(g.out_edges(3), &[5, 6]);
        // Finalize is idempotent.
        g.finalize();
        assert_eq!(g.out_edges(0), &[0, 3, 4, 7, 8]);
    }

    #[test]
    fn steady_state_rebuild_is_allocation_free() {
        let build = |g: &mut FlowGraph| {
            g.reset(4);
            g.add_edge(0, 1, 3);
            g.add_edge(0, 2, 2);
            g.add_edge(1, 3, 2);
            g.add_edge(2, 3, 3);
            g.finalize();
        };
        let mut g: FlowGraph = FlowGraph::new(0);
        build(&mut g);
        let events = g.arena().allocation_events();
        for _ in 0..10 {
            build(&mut g);
        }
        assert_eq!(
            g.arena().allocation_events(),
            events,
            "steady-state rebuilds must not touch the allocator"
        );
        assert!(g.arena().reserved_bytes() > 0);
    }

    #[test]
    fn copy_from_into_sized_arena_is_allocation_free() {
        let src = diamond();
        let mut dst = FlowGraph::new(0);
        dst.copy_from(&src);
        let events = dst.arena().allocation_events();
        for _ in 0..10 {
            dst.copy_from(&src);
        }
        assert_eq!(dst.arena().allocation_events(), events);
    }

    #[test]
    fn compact_width_behaves_identically() {
        let mut wide = diamond();
        let mut compact = FlowGraph::<i32>::new(4);
        compact.add_edge(0, 1, 3);
        compact.add_edge(0, 2, 2);
        compact.add_edge(1, 3, 2);
        compact.add_edge(2, 3, 3);
        compact.finalize();
        for v in 0..4 {
            assert_eq!(compact.out_edges(v), wide.out_edges(v));
        }
        wide.push(0, 2);
        compact.push(0, 2);
        wide.push(4, 2);
        compact.push(4, 2);
        for e in 0..wide.num_edge_slots() {
            assert_eq!(compact.flow(e), wide.flow(e));
            assert_eq!(compact.residual(e), wide.residual(e));
        }
        assert_eq!(compact.net_inflow(3), wide.net_inflow(3));
        assert_eq!(compact.store_flows(), wide.store_flows());
    }

    #[test]
    fn try_copy_from_narrows_and_reports_overflow() {
        let mut wide = diamond();
        wide.push(0, 2);
        let mut compact = FlowGraph::<i32>::new(0);
        compact.try_copy_from(&wide).expect("small values fit i32");
        assert_eq!(compact.store_flows(), wide.store_flows());
        assert_eq!(compact.out_edges(0), wide.out_edges(0));

        // A capacity past the i32 bound must be rejected with the offending
        // slot, and the destination must keep its previous (valid) state.
        let big = i32::MAX as i64 + 1;
        wide.set_cap(2, big);
        let err = compact.try_copy_from(&wide).unwrap_err();
        assert_eq!(
            err,
            WidthOverflow {
                edge: 2,
                value: big,
                width: "i32",
            }
        );
        assert_eq!(compact.cap(2), 2, "failed copy must not corrupt dst");
        assert!(err.to_string().contains("i32"));

        // Widening the other way always succeeds.
        let mut back = FlowGraph::<i64>::new(0);
        back.try_copy_from(&compact).expect("widening is lossless");
        assert_eq!(back.store_flows(), compact.store_flows());
    }

    #[test]
    fn try_restore_flows_reports_overflow() {
        let mut compact = FlowGraph::<i32>::new(2);
        compact.add_edge(0, 1, 5);
        compact.finalize();
        compact.push(0, 3);
        let mut snap = compact.store_flows();
        snap[0] = i32::MAX as i64 + 7;
        let err = compact.try_restore_flows(&snap).unwrap_err();
        assert_eq!(err.edge, 0);
        assert_eq!(err.value, i32::MAX as i64 + 7);
        assert_eq!(compact.flow(0), 3, "failed restore must keep flows");
        snap[0] = 1;
        compact.try_restore_flows(&snap).expect("fits");
        assert_eq!(compact.flow(0), 1);
    }

    #[test]
    fn plane_checkout_shares_topology_and_copies_values() {
        let mut src = diamond();
        src.push(0, 2);
        let mut ws: FlowGraph = FlowGraph::new(0);
        ws.checkout_plane_from(&src).expect("same width fits");
        assert!(ws.shares_topology_with(&src));
        assert_eq!(ws.store_flows(), src.store_flows());
        for v in 0..src.num_vertices() {
            assert_eq!(ws.out_edges(v), src.out_edges(v));
        }
        // The capacity/flow planes are private: mutating them must not
        // leak into the source or detach the shared topology.
        ws.set_cap(0, 9);
        ws.push(4, 1);
        assert_eq!(src.cap(0), 3);
        assert_eq!(src.flow(4), 0);
        assert!(ws.shares_topology_with(&src));
    }

    #[test]
    fn plane_checkout_works_across_widths() {
        let src = diamond();
        let mut compact = FlowGraph::<i32>::new(0);
        compact.checkout_plane_from(&src).expect("small caps fit");
        assert!(compact.shares_topology_with(&src));
        assert_eq!(compact.out_edges(0), src.out_edges(0));
        assert_eq!(compact.store_flows(), src.store_flows());

        // An overflowing capacity is rejected before anything is written.
        let mut big = diamond();
        big.set_cap(2, i32::MAX as i64 + 1);
        let err = compact.checkout_plane_from(&big).unwrap_err();
        assert_eq!(err.edge, 2);
        assert!(
            compact.shares_topology_with(&src),
            "failed checkout must not swap planes"
        );
    }

    #[test]
    fn topology_mutation_detaches_shared_plane() {
        let mut src = diamond();
        let mut ws: FlowGraph = FlowGraph::new(0);
        ws.checkout_plane_from(&src).unwrap();
        let ws_events = ws.arena().allocation_events();

        // Structural change on the source: the source detaches (one COW
        // event), the checked-out graph keeps the old epoch's plane.
        let src_events = src.arena().allocation_events();
        src.add_edge(0, 3, 1);
        src.finalize();
        assert!(!ws.shares_topology_with(&src));
        assert!(src.arena().allocation_events() > src_events);
        assert_eq!(ws.arena().allocation_events(), ws_events);
        assert_eq!(ws.num_edges(), 4);
        assert_eq!(src.num_edges(), 5);

        // A reset invalidates the epoch the same way.
        let mut ws2: FlowGraph = FlowGraph::new(0);
        ws2.checkout_plane_from(&src).unwrap();
        src.reset(2);
        assert!(!ws2.shares_topology_with(&src));
        assert_eq!(ws2.num_edges(), 5);
    }

    #[test]
    fn steady_state_plane_checkout_is_allocation_free() {
        let src = diamond();
        let mut ws: FlowGraph = FlowGraph::new(0);
        ws.checkout_plane_from(&src).unwrap();
        let events = ws.arena().allocation_events();
        for _ in 0..10 {
            ws.checkout_plane_from(&src).unwrap();
        }
        assert_eq!(
            ws.arena().allocation_events(),
            events,
            "re-checkout from the same epoch must not touch the allocator"
        );
    }

    #[test]
    fn copy_from_skips_deep_copy_of_a_shared_plane() {
        let src = diamond();
        let mut ws: FlowGraph = FlowGraph::new(0);
        ws.checkout_plane_from(&src).unwrap();
        ws.copy_from(&src);
        // The deep-copy path keeps the shared plane when it is already
        // bit-identical (ptr-equal) rather than detaching it.
        assert!(ws.shares_topology_with(&src));
        assert_eq!(ws.out_edges(0), src.out_edges(0));
    }

    #[test]
    fn width_constants() {
        assert_eq!(<i32 as ArenaIndex>::MAX, i32::MAX as i64);
        assert_eq!(<i64 as ArenaIndex>::MAX, i64::MAX);
        assert_eq!(<i32 as ArenaIndex>::NAME, "i32");
        assert_eq!(<i64 as ArenaIndex>::NAME, "i64");
        assert_eq!(i32::try_from_i64(i32::MAX as i64), Some(i32::MAX));
        assert_eq!(i32::try_from_i64(i32::MAX as i64 + 1), None);
        assert_eq!(i32::try_from_i64(i32::MIN as i64 - 1), None);
    }
}
