//! Residual flow-graph arena.
//!
//! Edges are stored in pairs: for every forward edge `e` added through
//! [`FlowGraph::add_edge`], the reverse (residual) edge is `e ^ 1`. The
//! reverse edge has capacity 0 and its flow mirrors the forward edge's flow
//! negated, so `residual(e ^ 1) == flow(e)`.
//!
//! Capacities are mutable after construction ([`FlowGraph::set_cap`]): the
//! integrated retrieval algorithms of the paper repeatedly *increase*
//! disk-edge capacities while keeping the flow computed so far, so the graph
//! is designed to keep flow and capacity as separate arrays rather than a
//! single residual-capacity array.

/// Index of a vertex in a [`FlowGraph`].
pub type VertexId = usize;

/// Index of a directed edge in a [`FlowGraph`]. The reverse edge of `e` is
/// always `e ^ 1`.
pub type EdgeId = usize;

/// A directed flow network with mutable capacities and explicit flow state.
///
/// The graph is append-only in topology (vertices and edges can be added,
/// never removed); capacities and flows are mutable. This matches the
/// retrieval workload: the network shape is fixed per query while disk-edge
/// capacities evolve during the budget search.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    /// `head[e]` is the target vertex of edge `e`.
    head: Vec<u32>,
    /// Capacity of each edge. Reverse edges have capacity 0.
    cap: Vec<i64>,
    /// Current flow on each edge; `flow[e ^ 1] == -flow[e]`.
    flow: Vec<i64>,
    /// Outgoing edge ids (forward and reverse) per vertex.
    adj: Vec<Vec<u32>>,
}

impl FlowGraph {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            head: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates an empty graph with `n` vertices, reserving space for
    /// `edges` forward edges (twice that many edge slots).
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        let mut g = FlowGraph {
            head: Vec::with_capacity(2 * edges),
            cap: Vec::with_capacity(2 * edges),
            flow: Vec::with_capacity(2 * edges),
            adj: Vec::with_capacity(n),
        };
        g.adj.resize(n, Vec::new());
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edge slots (twice the number of added edges).
    #[inline]
    pub fn num_edge_slots(&self) -> usize {
        self.head.len()
    }

    /// Number of forward edges added via [`FlowGraph::add_edge`].
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.head.len() / 2
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a forward edge `u -> v` with capacity `cap` and its paired
    /// reverse edge `v -> u` with capacity 0. Returns the forward edge id
    /// (always even).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `cap < 0`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, cap: i64) -> EdgeId {
        assert!(u < self.adj.len(), "source vertex {u} out of range");
        assert!(v < self.adj.len(), "target vertex {v} out of range");
        assert!(cap >= 0, "negative capacity {cap}");
        let e = self.head.len();
        self.head.push(v as u32);
        self.cap.push(cap);
        self.flow.push(0);
        self.head.push(u as u32);
        self.cap.push(0);
        self.flow.push(0);
        self.adj[u].push(e as u32);
        self.adj[v].push((e + 1) as u32);
        e
    }

    /// Target vertex of edge `e`.
    #[inline]
    pub fn target(&self, e: EdgeId) -> VertexId {
        self.head[e] as usize
    }

    /// Source vertex of edge `e` (the target of its reverse edge).
    #[inline]
    pub fn source(&self, e: EdgeId) -> VertexId {
        self.head[e ^ 1] as usize
    }

    /// Capacity of edge `e`.
    #[inline]
    pub fn cap(&self, e: EdgeId) -> i64 {
        self.cap[e]
    }

    /// Sets the capacity of edge `e`.
    ///
    /// The integrated algorithms only ever *raise* capacities while flow is
    /// conserved; lowering a capacity below the current flow leaves the
    /// stored flow infeasible, which callers must handle (the binary
    /// capacity-scaling driver restores a compatible flow snapshot first).
    #[inline]
    pub fn set_cap(&mut self, e: EdgeId, cap: i64) {
        debug_assert!(cap >= 0, "negative capacity {cap}");
        self.cap[e] = cap;
    }

    /// Current flow on edge `e` (negative on reverse edges).
    #[inline]
    pub fn flow(&self, e: EdgeId) -> i64 {
        self.flow[e]
    }

    /// Residual capacity of edge `e`: `cap(e) - flow(e)`.
    #[inline]
    pub fn residual(&self, e: EdgeId) -> i64 {
        self.cap[e] - self.flow[e]
    }

    /// Pushes `delta` units of flow along edge `e`, updating the paired
    /// reverse edge.
    ///
    /// # Panics
    ///
    /// Debug-panics if `delta` exceeds the residual capacity of `e`.
    #[inline]
    pub fn push(&mut self, e: EdgeId, delta: i64) {
        debug_assert!(
            delta <= self.residual(e),
            "push of {delta} exceeds residual {} on edge {e}",
            self.residual(e)
        );
        self.flow[e] += delta;
        self.flow[e ^ 1] -= delta;
    }

    /// Overwrites the raw flow value of a single edge slot *without*
    /// touching its pair. Used by the parallel solver to copy atomic flow
    /// state back into the graph; both slots of every pair must be written
    /// for the pairing invariant to hold afterwards.
    #[inline]
    pub fn set_flow_raw(&mut self, e: EdgeId, flow: i64) {
        self.flow[e] = flow;
    }

    /// Outgoing edge ids of vertex `v` (both forward and reverse slots).
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[u32] {
        &self.adj[v]
    }

    /// Out-degree counting only *forward* edges (even ids), i.e. edges added
    /// explicitly with `v` as the source.
    pub fn forward_out_degree(&self, v: VertexId) -> usize {
        self.adj[v].iter().filter(|&&e| e % 2 == 0).count()
    }

    /// In-degree counting only forward edges pointing at `v`. This is the
    /// `in_degree` used by the paper's `IncrementMinCost` (Algorithm 3): for
    /// a disk vertex it equals the number of query buckets stored on the
    /// disk.
    pub fn forward_in_degree(&self, v: VertexId) -> usize {
        self.adj[v].iter().filter(|&&e| e % 2 == 1).count()
    }

    /// Resets all flow values to zero, keeping topology and capacities.
    pub fn zero_flows(&mut self) {
        self.flow.iter_mut().for_each(|f| *f = 0);
    }

    /// Snapshot of the current flow state (for `StoreFlows`, Algorithm 6).
    pub fn store_flows(&self) -> Vec<i64> {
        self.flow.clone()
    }

    /// Writes the current flow state into `buf`, reusing its allocation —
    /// the allocation-free counterpart of [`FlowGraph::store_flows`] for
    /// callers that snapshot repeatedly (the binary capacity-scaling
    /// driver stores state on every failed probe).
    pub fn store_flows_into(&self, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend_from_slice(&self.flow);
    }

    /// Makes `self` a copy of `other`, reusing existing allocations
    /// (including the per-vertex adjacency buffers) instead of allocating
    /// a fresh graph as `clone` would.
    pub fn copy_from(&mut self, other: &FlowGraph) {
        self.head.clone_from(&other.head);
        self.cap.clone_from(&other.cap);
        self.flow.clone_from(&other.flow);
        self.adj.clone_from(&other.adj);
    }

    /// Clears the graph to `n` isolated vertices in place, keeping the
    /// edge arrays and the inner adjacency buffers allocated so a rebuild
    /// of similar size is allocation-free.
    pub fn reset(&mut self, n: usize) {
        self.head.clear();
        self.cap.clear();
        self.flow.clear();
        for a in &mut self.adj {
            a.clear();
        }
        self.adj.resize_with(n, Vec::new);
    }

    /// Restores a flow snapshot taken with [`FlowGraph::store_flows`]
    /// (`RestoreFlows`, Algorithm 6).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the edge count.
    pub fn restore_flows(&mut self, snapshot: &[i64]) {
        assert_eq!(
            snapshot.len(),
            self.flow.len(),
            "flow snapshot does not match graph topology"
        );
        self.flow.copy_from_slice(snapshot);
    }

    /// Net flow into vertex `v` over forward edges; for the sink this is the
    /// flow value.
    pub fn net_inflow(&self, v: VertexId) -> i64 {
        self.adj[v]
            .iter()
            .map(|&e| {
                let e = e as usize;
                if e % 2 == 1 {
                    // reverse slot: the paired forward edge points at v
                    self.flow[e ^ 1]
                } else {
                    -self.flow[e]
                }
            })
            .sum()
    }

    /// Iterator over all forward edge ids.
    pub fn forward_edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.head.len()).step_by(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FlowGraph {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g
    }

    #[test]
    fn edge_pairing_invariants() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        for e in g.forward_edges() {
            assert_eq!(g.source(e), g.target(e ^ 1));
            assert_eq!(g.target(e), g.source(e ^ 1));
            assert_eq!(g.cap(e ^ 1), 0);
        }
    }

    #[test]
    fn push_updates_both_directions() {
        let mut g = diamond();
        g.push(0, 2);
        assert_eq!(g.flow(0), 2);
        assert_eq!(g.flow(1), -2);
        assert_eq!(g.residual(0), 1);
        assert_eq!(g.residual(1), 2); // reverse residual equals pushed flow
    }

    #[test]
    #[should_panic(expected = "exceeds residual")]
    #[cfg(debug_assertions)]
    fn push_over_residual_panics_in_debug() {
        let mut g = diamond();
        g.push(0, 4);
    }

    #[test]
    fn degrees_count_forward_edges_only() {
        let g = diamond();
        assert_eq!(g.forward_out_degree(0), 2);
        assert_eq!(g.forward_in_degree(0), 0);
        assert_eq!(g.forward_in_degree(3), 2);
        assert_eq!(g.forward_out_degree(3), 0);
        assert_eq!(g.forward_in_degree(1), 1);
        assert_eq!(g.forward_out_degree(1), 1);
    }

    #[test]
    fn store_restore_round_trip() {
        let mut g = diamond();
        g.push(0, 1);
        g.push(4, 1);
        let snap = g.store_flows();
        g.push(2, 1);
        g.restore_flows(&snap);
        assert_eq!(g.flow(0), 1);
        assert_eq!(g.flow(4), 1);
        assert_eq!(g.flow(2), 0);
    }

    #[test]
    fn net_inflow_tracks_flow_value() {
        let mut g = diamond();
        g.push(0, 2); // s -> 1
        g.push(4, 2); // 1 -> t
        assert_eq!(g.net_inflow(3), 2);
        assert_eq!(g.net_inflow(1), 0);
        assert_eq!(g.net_inflow(0), -2);
    }

    #[test]
    fn zero_flows_resets() {
        let mut g = diamond();
        g.push(0, 2);
        g.zero_flows();
        assert_eq!(g.flow(0), 0);
        assert_eq!(g.flow(1), 0);
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = diamond();
        let v = g.add_vertex();
        assert_eq!(v, 4);
        let e = g.add_edge(3, v, 5);
        assert_eq!(g.target(e), v);
        assert_eq!(g.residual(e), 5);
    }

    #[test]
    fn set_cap_changes_residual() {
        let mut g = diamond();
        g.push(0, 3);
        assert_eq!(g.residual(0), 0);
        g.set_cap(0, 5);
        assert_eq!(g.residual(0), 2);
    }

    #[test]
    fn store_flows_into_matches_store_flows() {
        let mut g = diamond();
        g.push(0, 2);
        g.push(4, 1);
        let mut buf = vec![99i64; 3];
        g.store_flows_into(&mut buf);
        assert_eq!(buf, g.store_flows());
    }

    #[test]
    fn copy_from_replicates_everything() {
        let src = diamond();
        let mut dst = FlowGraph::new(2);
        dst.add_edge(0, 1, 7);
        dst.copy_from(&src);
        assert_eq!(dst.num_vertices(), src.num_vertices());
        assert_eq!(dst.num_edges(), src.num_edges());
        for e in src.forward_edges() {
            assert_eq!(dst.cap(e), src.cap(e));
            assert_eq!(dst.target(e), src.target(e));
            assert_eq!(dst.flow(e), src.flow(e));
        }
        for v in 0..src.num_vertices() {
            assert_eq!(dst.out_edges(v), src.out_edges(v));
        }
    }

    #[test]
    fn reset_clears_topology_in_place() {
        let mut g = diamond();
        g.push(0, 1);
        g.reset(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        for v in 0..3 {
            assert!(g.out_edges(v).is_empty());
        }
        // The graph is fully usable after a reset.
        let e = g.add_edge(0, 2, 4);
        g.push(e, 4);
        assert_eq!(g.net_inflow(2), 4);
    }
}
