//! Minimum-cost flow on the residual arena.
//!
//! Two algorithms over the same [`FlowGraph`] — no new graph types, the
//! CSR residual arena of `graph.rs` is the only substrate:
//!
//! * [`min_cost_max_flow`] — successive shortest paths with vertex
//!   potentials (Dijkstra over reduced costs). Classic min-cost max-flow
//!   for *static* per-edge costs; used in this workspace as the oracle
//!   that cross-checks the refiner.
//! * [`CycleCanceler`] — negative-cycle canceling against *marginal*
//!   costs. It takes a graph that already carries a feasible flow and
//!   repeatedly cancels one unit around a cost-negative residual cycle
//!   until none remains. Because cycles carry no s-t excess, the flow
//!   value is invariant — only *which* arcs carry the flow changes.
//!
//! Costs are supplied through the [`ArcCost`] trait as the marginal cost
//! of the *k*-th unit on a forward edge. Constant marginals give ordinary
//! linear arc costs; marginals non-decreasing in `k` model piecewise
//! convex congestion penalties (e.g. a per-disk load penalty that grows
//! with every additional bucket), for which one-unit cancellation is
//! exactly what makes the refiner terminate at a global optimum.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-unit arc costs, queried at the margin.
///
/// `marginal(e, k)` is the cost of sending the `k`-th unit (1-based)
/// along *forward* edge `e` (an even [`EdgeId`]). Implementations must be
/// non-decreasing in `k` for the same edge — that convexity is what lets
/// [`CycleCanceler`] price the residual network one unit at a time.
pub trait ArcCost {
    /// Cost of the `k`-th unit on forward edge `e`; `k >= 1`.
    fn marginal(&self, e: EdgeId, k: i64) -> i64;
}

/// Affine marginal costs indexed by forward edge slot:
/// `marginal(e, k) = base[e] + slope[e] * (k - 1)`.
///
/// `slope[e] == 0` everywhere degenerates to plain linear arc costs;
/// `slope[e] > 0` makes edge `e` convex (each extra unit costs more).
/// Entries at odd slots are ignored.
#[derive(Clone, Copy, Debug)]
pub struct AffineCosts<'a> {
    /// Cost of the first unit on each forward edge slot.
    pub base: &'a [i64],
    /// Increase per additional unit on each forward edge slot; must be
    /// non-negative.
    pub slope: &'a [i64],
}

impl ArcCost for AffineCosts<'_> {
    #[inline]
    fn marginal(&self, e: EdgeId, k: i64) -> i64 {
        debug_assert!(e.is_multiple_of(2) && k >= 1);
        debug_assert!(self.slope[e] >= 0, "convexity requires slope >= 0");
        self.base[e] + self.slope[e] * (k - 1)
    }
}

/// Constant per-unit costs indexed by forward edge slot (odd slots
/// ignored) — the static-cost special case used by
/// [`min_cost_max_flow`].
#[derive(Clone, Copy, Debug)]
pub struct LinearCosts<'a>(pub &'a [i64]);

impl ArcCost for LinearCosts<'_> {
    #[inline]
    fn marginal(&self, e: EdgeId, _k: i64) -> i64 {
        debug_assert!(e.is_multiple_of(2));
        self.0[e]
    }
}

/// Marginal cost of pushing one more unit through residual slot `e`.
///
/// A forward slot prices its next unit; a reverse slot *refunds* the most
/// recently sent unit of its partner — the standard residual-cost rule,
/// evaluated at the margin so convex costs price correctly.
#[inline]
fn slot_cost<W: ArenaIndex, C: ArcCost>(g: &FlowGraph<W>, costs: &C, e: EdgeId) -> i64 {
    if e.is_multiple_of(2) {
        costs.marginal(e, g.flow(e) + 1)
    } else {
        -costs.marginal(e ^ 1, g.flow(e ^ 1))
    }
}

/// Cost of the `delta`-th unit canceled around `cycle`: forward slots
/// price their `flow + delta`-th unit, reverse slots refund their
/// partner's `flow − delta + 1`-th. Non-decreasing in `delta` for
/// convex marginals.
fn cycle_unit_cost<W: ArenaIndex, C: ArcCost>(
    g: &FlowGraph<W>,
    costs: &C,
    cycle: &[EdgeId],
    delta: i64,
) -> i64 {
    cycle
        .iter()
        .map(|&e| {
            if e.is_multiple_of(2) {
                costs.marginal(e, g.flow(e) + delta)
            } else {
                -costs.marginal(e ^ 1, g.flow(e ^ 1) - delta + 1)
            }
        })
        .sum()
}

/// Total cost of the flow currently stored in `g`: each forward edge
/// contributes `sum_{k=1..flow(e)} marginal(e, k)`.
pub fn flow_cost<W: ArenaIndex, C: ArcCost>(g: &FlowGraph<W>, costs: &C) -> i64 {
    let mut total = 0;
    for e in g.forward_edges() {
        let f = g.flow(e);
        for k in 1..=f {
            total += costs.marginal(e, k);
        }
    }
    total
}

/// What one [`CycleCanceler::refine`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Negative cycles canceled.
    pub cycles: u64,
    /// Unit-arc moves: units canceled times cycle length, summed over
    /// all cycles.
    pub moved: u64,
    /// Cycle searches run (Bellman-Ford sweeps), including the final
    /// one that proves no negative cycle remains.
    pub searches: u64,
}

/// Negative-cycle canceling refiner with reusable scratch buffers.
///
/// Operates in place on a graph that already holds a feasible flow:
/// each round runs a level-synchronous Bellman-Ford from a virtual
/// super-source (all distances start at zero, so every vertex is a
/// root) over the residual arcs priced by [`ArcCost`] marginals — after
/// the first full edge scan, each level only relaxes the out-edges of
/// the vertices whose distance changed in the previous level, so a
/// converged (cycle-free) check costs little more than one edge scan.
/// A surviving relaxation after `n+1` levels proves a negative cycle;
/// it is extracted from the predecessor chain and canceled by the
/// largest unit count for which every unit still has strictly negative
/// marginal cost around the cycle. Under convex ([`ArcCost`]) marginals
/// that per-unit cost is non-decreasing in the units moved, so stopping
/// at the break-even point loses nothing and each canceled unit is a
/// strict improvement.
///
/// The scratch vectors grow to the largest instance seen and are reused
/// across calls, so steady-state refinement allocates nothing.
#[derive(Debug, Default)]
pub struct CycleCanceler {
    dist: Vec<i64>,
    parent: Vec<u32>,
    cycle: Vec<EdgeId>,
    stamp: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    sources: Vec<(i64, u32)>,
    closers: Vec<(i64, u32)>,
    round: u32,
}

impl CycleCanceler {
    /// A canceler with empty scratch.
    pub fn new() -> CycleCanceler {
        CycleCanceler::default()
    }

    /// Cancels negative residual cycles until none remains or `max_cycles`
    /// have been canceled (a safety valve against mis-specified,
    /// non-convex cost functions). The stored flow stays feasible and its
    /// s-t value is unchanged.
    pub fn refine<W: ArenaIndex, C: ArcCost>(
        &mut self,
        g: &mut FlowGraph<W>,
        costs: &C,
        max_cycles: u64,
    ) -> RefineStats {
        let mut stats = RefineStats::default();
        while stats.cycles < max_cycles && self.cancel_one(g, costs, &mut stats) {}
        stats
    }

    /// Like [`refine`](CycleCanceler::refine), but exploits a structural
    /// promise: **every arc with a nonzero marginal cost is incident to
    /// `hub`**. Then every cost-negative residual cycle passes through
    /// `hub`, and every arc of the residual graph that touches neither
    /// endpoint of `hub` costs zero — so shortest distances from `hub`
    /// collapse to "cheapest first hop that reaches you": sort the
    /// hub's out-arcs by cost and grow one zero-cost BFS per arc in
    /// that order, settling each vertex at first touch. No Bellman-Ford
    /// levels, no re-relaxation. Each search then closes cycles through
    /// the arcs back into `hub`, most negative first; after each
    /// cancellation the remaining candidate cycles are re-priced
    /// against the updated flows (a short path walk) and canceled while
    /// still negative, so one search typically cancels many cycles.
    ///
    /// The promise is the caller's to keep; it is debug-asserted on
    /// every interior arc the search crosses. Retrieval networks
    /// satisfy it with `hub` = sink (costs live only on disk→sink
    /// arcs).
    pub fn refine_via_hub<W: ArenaIndex, C: ArcCost>(
        &mut self,
        g: &mut FlowGraph<W>,
        costs: &C,
        hub: VertexId,
        max_cycles: u64,
    ) -> RefineStats {
        let mut stats = RefineStats::default();
        while stats.cycles < max_cycles
            && self.cancel_via_hub(g, costs, hub, &mut stats, max_cycles)
        {}
        stats
    }

    /// One hub search: shortest distances from `hub` (cheapest-first-hop
    /// BFS, valid because interior arcs cost zero under the hub
    /// promise), then cancel the negative cycles the closing arcs
    /// expose. Returns `false` when no negative cycle through `hub`
    /// remains.
    fn cancel_via_hub<W: ArenaIndex, C: ArcCost>(
        &mut self,
        g: &mut FlowGraph<W>,
        costs: &C,
        hub: VertexId,
        stats: &mut RefineStats,
        max_cycles: u64,
    ) -> bool {
        let n = g.num_vertices();
        stats.searches += 1;

        // Cheapest opening and closing prices over the hub's residual
        // arcs. Under the hub promise any negative cycle decomposes
        // into hub-to-hub segments — a first hop, zero-cost interior
        // arcs, a closing arc — each costing at least
        // `min_open + min_close`, so a non-negative sum proves
        // cycle-optimality right here: one scan of the hub's adjacency,
        // no arrays touched, no BFS. That scan is the entire
        // steady-state cost of re-verifying an already-optimal flow.
        let mut min_open = i64::MAX;
        let mut min_close = i64::MAX;
        for &slot in g.out_edges(hub) {
            let e = slot as EdgeId;
            if g.residual(e) > 0 {
                min_open = min_open.min(slot_cost(g, costs, e));
            }
            let p = e ^ 1;
            if g.residual(p) > 0 {
                min_close = min_close.min(slot_cost(g, costs, p));
            }
        }
        if min_open == i64::MAX || min_close == i64::MAX || min_open + min_close >= 0 {
            return false;
        }

        self.dist.clear();
        self.dist.resize(n, i64::MAX);
        self.parent.clear();
        self.parent.resize(n, u32::MAX);
        self.dist[hub] = 0;

        // First hops worth exploring: a hop of cost `c` can only open a
        // negative segment if `c + min_close < 0`.
        self.sources.clear();
        for &slot in g.out_edges(hub) {
            let e = slot as EdgeId;
            if g.residual(e) > 0 {
                let c = slot_cost(g, costs, e);
                if c + min_close < 0 {
                    self.sources.push((c, e as u32));
                }
            }
        }

        // First hops, cheapest first. Interior arcs all cost zero, so a
        // vertex's shortest distance from `hub` is the cost of the
        // cheapest first hop from which it is residually reachable —
        // grow one zero-cost BFS per first hop in ascending cost order
        // and settle every vertex at first touch (the Dijkstra argument
        // with zero-weight interior arcs).
        self.sources.sort_unstable();
        let mut si = 0;
        while si < self.sources.len() {
            let (c, first) = self.sources[si];
            si += 1;
            let v0 = g.target(first as EdgeId);
            if self.dist[v0] != i64::MAX {
                continue;
            }
            self.dist[v0] = c;
            self.parent[v0] = first;
            self.frontier.clear();
            self.frontier.push(v0 as u32);
            let mut i = 0;
            while i < self.frontier.len() {
                let u = self.frontier[i] as usize;
                i += 1;
                for &slot in g.out_edges(u) {
                    let e = slot as EdgeId;
                    let v = g.target(e);
                    if v == hub || g.residual(e) <= 0 || self.dist[v] != i64::MAX {
                        continue;
                    }
                    debug_assert_eq!(
                        slot_cost(g, costs, e),
                        0,
                        "refine_via_hub: nonzero cost on an arc not incident to the hub"
                    );
                    self.dist[v] = c;
                    self.parent[v] = e as u32;
                    self.frontier.push(v as u32);
                }
            }
        }

        // Closing arcs: residual arcs into the hub, i.e. the partners of
        // the hub's out-slots. A negative closing sum is a negative
        // cycle: hub →(tree path)→ u →(arc)→ hub.
        self.closers.clear();
        for &slot in g.out_edges(hub) {
            let p = (slot as EdgeId) ^ 1;
            let u = g.source(p);
            if g.residual(p) <= 0 || self.dist[u] == i64::MAX {
                continue;
            }
            let total = self.dist[u] + slot_cost(g, costs, p);
            if total < 0 {
                self.closers.push((total, p as u32));
            }
        }
        if self.closers.is_empty() {
            return false;
        }
        self.closers.sort_unstable();

        // Sweep the candidates, re-pricing each cycle against the
        // *current* flows (earlier cancellations this search may have
        // moved them): a candidate is canceled only while its first
        // unit is still strictly negative and every arc still has
        // residual. Sweeps repeat until a sweep cancels nothing —
        // path walks are a few arcs, far cheaper than another search.
        let mut canceled = false;
        loop {
            let mut progress = false;
            for ci in 0..self.closers.len() {
                let p = self.closers[ci].1 as EdgeId;
                if stats.cycles >= max_cycles {
                    return canceled;
                }
                self.cycle.clear();
                self.cycle.push(p);
                let mut v = g.source(p);
                let mut broken = false;
                while v != hub {
                    let e = self.parent[v];
                    if e == u32::MAX {
                        broken = true;
                        break;
                    }
                    self.cycle.push(e as EdgeId);
                    v = g.source(e as EdgeId);
                }
                if broken
                    || self.cycle.iter().any(|&e| g.residual(e) <= 0)
                    || cycle_unit_cost(g, costs, &self.cycle, 1) >= 0
                {
                    continue;
                }
                self.cancel_extracted(g, costs, stats);
                progress = true;
                canceled = true;
            }
            if !progress {
                return canceled;
            }
        }
    }

    /// Finds one negative cycle and cancels as many units around it as
    /// stay strictly improving. Returns `false` when the flow is
    /// already cycle-optimal.
    fn cancel_one<W: ArenaIndex, C: ArcCost>(
        &mut self,
        g: &mut FlowGraph<W>,
        costs: &C,
        stats: &mut RefineStats,
    ) -> bool {
        let n = g.num_vertices();
        let m = g.num_edge_slots();
        stats.searches += 1;
        self.dist.clear();
        self.dist.resize(n, 0);
        self.parent.clear();
        self.parent.resize(n, u32::MAX);
        self.stamp.clear();
        self.stamp.resize(n, 0);

        // Level-synchronous Bellman-Ford with an implicit super-source:
        // dist starts at 0 everywhere, so a cycle anywhere in the
        // residual graph is found. Level 0 scans every residual arc;
        // each later level relaxes only the out-edges of the previous
        // level's frontier — the same relaxations the classic all-edges
        // rounds would perform, without rescanning settled regions.
        // n+1 levels cover the virtual source hop; a relaxation
        // surviving into the final level proves a negative cycle.
        self.round += 1;
        self.next.clear();
        for e in 0..m {
            if g.residual(e) <= 0 {
                continue;
            }
            let u = g.source(e);
            let v = g.target(e);
            let nd = self.dist[u] + slot_cost(g, costs, e);
            if nd < self.dist[v] {
                self.dist[v] = nd;
                self.parent[v] = e as u32;
                if self.stamp[v] != self.round {
                    self.stamp[v] = self.round;
                    self.next.push(v as u32);
                }
            }
        }
        for _level in 1..=n {
            if self.next.is_empty() {
                return false;
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            self.next.clear();
            self.round += 1;
            let mut i = 0;
            while i < self.frontier.len() {
                let u = self.frontier[i] as usize;
                i += 1;
                for &slot in g.out_edges(u) {
                    let e = slot as EdgeId;
                    if g.residual(e) <= 0 {
                        continue;
                    }
                    let v = g.target(e);
                    let nd = self.dist[u] + slot_cost(g, costs, e);
                    if nd < self.dist[v] {
                        self.dist[v] = nd;
                        self.parent[v] = e as u32;
                        if self.stamp[v] != self.round {
                            self.stamp[v] = self.round;
                            self.next.push(v as u32);
                        }
                    }
                }
            }
        }
        let Some(&w) = self.next.last() else {
            return false;
        };
        let witness = w as usize;

        // Walk the predecessor chain from the witness until a vertex
        // repeats — that vertex closes a cycle in the parent graph, and
        // any such cycle has negative total (marginal) cost.
        self.round += 1;
        let mut cur = witness;
        loop {
            if self.parent[cur] == u32::MAX {
                return false;
            }
            if self.stamp[cur] == self.round {
                break;
            }
            self.stamp[cur] = self.round;
            cur = g.source(self.parent[cur] as EdgeId);
        }
        self.cycle.clear();
        let start = cur;
        loop {
            let e = self.parent[cur] as EdgeId;
            self.cycle.push(e);
            cur = g.source(e);
            if cur == start {
                break;
            }
        }
        self.cancel_extracted(g, costs, stats);
        true
    }

    /// Cancels the cycle currently in `self.cycle` by the break-even
    /// unit count: the u-th unit around the cycle costs
    /// Σ marginal(e, flow+u) − Σ marginal(partner, flow−u+1),
    /// non-decreasing in u under convex marginals — so grow u while the
    /// next unit is still strictly negative (the first is, by the
    /// negative-cycle guarantee) and the residual bottleneck allows it.
    fn cancel_extracted<W: ArenaIndex, C: ArcCost>(
        &mut self,
        g: &mut FlowGraph<W>,
        costs: &C,
        stats: &mut RefineStats,
    ) {
        let mut bottleneck = i64::MAX;
        for &e in &self.cycle {
            bottleneck = bottleneck.min(g.residual(e));
        }
        debug_assert!(
            cycle_unit_cost(g, costs, &self.cycle, 1) < 0,
            "extracted cycle must be negative"
        );
        let mut delta = 1i64;
        while delta < bottleneck && cycle_unit_cost(g, costs, &self.cycle, delta + 1) < 0 {
            delta += 1;
        }
        for &e in &self.cycle {
            g.push(e, delta);
        }
        stats.cycles += 1;
        stats.moved += self.cycle.len() as u64 * delta as u64;
    }
}

/// Result of [`min_cost_max_flow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinCostFlow {
    /// Maximum flow value reached.
    pub flow: i64,
    /// Total cost of that flow under the supplied linear costs.
    pub cost: i64,
}

/// Successive shortest paths with vertex potentials: computes a maximum
/// s-t flow of minimum total cost under static per-unit costs (`costs`
/// indexed by forward edge slot, non-negative; odd slots ignored).
///
/// Each iteration runs Dijkstra over reduced costs
/// `cost(e) + pot(u) - pot(v)` — non-negative by the potential invariant
/// — then augments along the shortest path by its bottleneck residual.
/// The graph must be finalized; existing flow is zeroed first.
pub fn min_cost_max_flow<W: ArenaIndex>(
    g: &mut FlowGraph<W>,
    s: VertexId,
    t: VertexId,
    costs: &[i64],
) -> MinCostFlow {
    g.zero_flows();
    let n = g.num_vertices();
    let lin = LinearCosts(costs);
    let mut pot = vec![0i64; n];
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    let mut out = MinCostFlow::default();

    loop {
        dist.iter_mut().for_each(|d| *d = i64::MAX);
        parent.iter_mut().for_each(|p| *p = u32::MAX);
        dist[s] = 0;
        heap.clear();
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &slot in g.out_edges(u) {
                let e = slot as EdgeId;
                if g.residual(e) <= 0 {
                    continue;
                }
                let v = g.target(e);
                let rc = slot_cost(g, &lin, e) + pot[u] - pot[v];
                debug_assert!(rc >= 0, "reduced cost must be non-negative");
                let nd = d + rc;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = e as u32;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        if dist[t] == i64::MAX {
            return out;
        }
        for v in 0..n {
            if dist[v] < i64::MAX {
                pot[v] += dist[v];
            }
        }
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let e = parent[v] as EdgeId;
            bottleneck = bottleneck.min(g.residual(e));
            v = g.source(e);
        }
        let mut v = t;
        while v != s {
            let e = parent[v] as EdgeId;
            out.cost += bottleneck * slot_cost(g, &lin, e);
            g.push(e, bottleneck);
            v = g.source(e);
        }
        out.flow += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_relabel::PushRelabel;
    use crate::validate::validate_flow;

    /// s -> {a, b} -> t with unequal path costs; SSP must route along
    /// the cheap path first.
    fn diamond(cap: i64) -> (FlowGraph, Vec<i64>) {
        let mut g: FlowGraph = FlowGraph::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        let sa = g.add_edge(s, a, cap);
        let sb = g.add_edge(s, b, cap);
        let at = g.add_edge(a, t, cap);
        let bt = g.add_edge(b, t, cap);
        g.finalize();
        let mut costs = vec![0i64; g.num_edge_slots()];
        costs[sa] = 1;
        costs[sb] = 4;
        costs[at] = 1;
        costs[bt] = 4;
        (g, costs)
    }

    #[test]
    fn ssp_finds_min_cost_max_flow() {
        let (mut g, costs) = diamond(2);
        let r = min_cost_max_flow(&mut g, 0, 3, &costs);
        assert_eq!(r.flow, 4);
        // 2 units at cost 2 each + 2 units at cost 8 each.
        assert_eq!(r.cost, 20);
        assert_eq!(flow_cost(&g, &LinearCosts(&costs)), 20);
        validate_flow(&g, 0, 3).unwrap();
    }

    #[test]
    fn canceler_matches_ssp_on_linear_costs() {
        // Max-flow first (cost-oblivious), then cancel cycles: total cost
        // must land exactly on the SSP optimum.
        let (mut g, costs) = diamond(3);
        let mut pr = PushRelabel::new();
        assert_eq!(pr.max_flow(&mut g, 0, 3), 6);
        let lin = LinearCosts(&costs);
        let mut canceler = CycleCanceler::new();
        canceler.refine(&mut g, &lin, u64::MAX);
        let refined = flow_cost(&g, &lin);

        let (mut g2, costs2) = diamond(3);
        let oracle = min_cost_max_flow(&mut g2, 0, 3, &costs2);
        assert_eq!(refined, oracle.cost);
        validate_flow(&g, 0, 3).unwrap();
    }

    #[test]
    fn canceler_balances_convex_parallel_arcs() {
        // Two identical convex arcs a->t; start with all 4 units on one.
        let mut g: FlowGraph = FlowGraph::new(3);
        let (s, a, t) = (0, 1, 2);
        let sa = g.add_edge(s, a, 4);
        let e1 = g.add_edge(a, t, 4);
        let e2 = g.add_edge(a, t, 4);
        g.finalize();
        g.push(sa, 4);
        g.push(e1, 4);
        let mut base = vec![0i64; g.num_edge_slots()];
        let mut slope = vec![0i64; g.num_edge_slots()];
        base[e1] = 1;
        base[e2] = 1;
        slope[e1] = 1;
        slope[e2] = 1;
        let costs = AffineCosts {
            base: &base,
            slope: &slope,
        };
        let before = flow_cost(&g, &costs);
        let mut canceler = CycleCanceler::new();
        let stats = canceler.refine(&mut g, &costs, u64::MAX);
        // 1+2+3+4 = 10 on one arc vs 2*(1+2) = 6 split evenly; both
        // improving units move in one cancellation (break-even delta).
        assert_eq!(before, 10);
        assert_eq!(flow_cost(&g, &costs), 6);
        assert_eq!(g.flow(e1), 2);
        assert_eq!(g.flow(e2), 2);
        assert_eq!(stats.cycles, 1);
        assert_eq!(stats.moved, 4);
        validate_flow(&g, s, t).unwrap();
        assert_eq!(g.net_inflow(t), 4);
    }

    #[test]
    fn hub_refiner_matches_generic_refiner() {
        // Convex costs only on the arcs into t: the hub promise holds
        // with hub = t, and the hub refiner must land on the same
        // optimal cost as the generic canceler from the same start.
        let build = || {
            let mut g: FlowGraph = FlowGraph::new(4);
            let (s, a, b, t) = (0, 1, 2, 3);
            g.add_edge(s, a, 5);
            g.add_edge(s, b, 5);
            let at = g.add_edge(a, t, 5);
            let bt = g.add_edge(b, t, 5);
            let ab = g.add_edge(a, b, 5);
            g.finalize();
            let mut base = vec![0i64; g.num_edge_slots()];
            let mut slope = vec![0i64; g.num_edge_slots()];
            base[at] = 1;
            slope[at] = 3;
            base[bt] = 2;
            slope[bt] = 1;
            let _ = ab;
            (g, base, slope)
        };
        let (mut g1, base1, slope1) = build();
        let mut pr = PushRelabel::new();
        let flow = pr.max_flow(&mut g1, 0, 3);
        let (mut g2, ..) = build();
        g2.restore_flows(&g1.store_flows());

        let c1 = AffineCosts {
            base: &base1,
            slope: &slope1,
        };
        let mut generic = CycleCanceler::new();
        generic.refine(&mut g1, &c1, u64::MAX);
        let mut hubbed = CycleCanceler::new();
        hubbed.refine_via_hub(&mut g2, &c1, 3, u64::MAX);
        assert_eq!(flow_cost(&g2, &c1), flow_cost(&g1, &c1));
        validate_flow(&g2, 0, 3).unwrap();
        assert_eq!(g2.net_inflow(3), flow);
        // Re-running finds nothing: the hub refiner reached the optimum.
        let again = hubbed.refine_via_hub(&mut g2, &c1, 3, u64::MAX);
        assert_eq!((again.cycles, again.moved, again.searches), (0, 0, 1));
    }

    #[test]
    fn canceler_is_idempotent_at_optimum() {
        let (mut g, costs) = diamond(2);
        min_cost_max_flow(&mut g, 0, 3, &costs);
        let lin = LinearCosts(&costs);
        let mut canceler = CycleCanceler::new();
        let stats = canceler.refine(&mut g, &lin, u64::MAX);
        assert_eq!((stats.cycles, stats.moved), (0, 0));
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn max_cycles_bounds_the_work() {
        let (mut g, costs) = diamond(3);
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, 0, 3);
        let mut canceler = CycleCanceler::new();
        let stats = canceler.refine(&mut g, &LinearCosts(&costs), 0);
        assert_eq!(stats.cycles, 0);
        validate_flow(&g, 0, 3).unwrap();
    }
}
