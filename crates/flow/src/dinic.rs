//! Dinic's blocking-flow maximum-flow algorithm.
//!
//! Used throughout the workspace as an *independent oracle*: every other
//! max-flow implementation (Ford-Fulkerson, sequential push-relabel,
//! parallel push-relabel) is cross-validated against Dinic on randomized
//! networks. Dinic is also a practical fallback solver in its own right.

use crate::graph::{ArenaIndex, FlowGraph, VertexId};

/// Reusable Dinic solver state (level graph + current-arc pointers).
#[derive(Clone, Debug, Default)]
pub struct Dinic {
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: Vec<u32>,
}

impl Dinic {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a maximum flow from `s` to `t` on top of whatever flow is
    /// already present in `g` (existing flow is conserved). Returns the net
    /// inflow at `t` after completion.
    pub fn max_flow<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        s: VertexId,
        t: VertexId,
    ) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.finalize();
        let n = g.num_vertices();
        self.level.resize(n, -1);
        self.iter.resize(n, 0);
        loop {
            if !self.build_levels(g, s, t) {
                break;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            while self.block(g, s, t, i64::MAX) > 0 {}
        }
        g.net_inflow(t)
    }

    /// BFS over the residual graph assigning levels; returns true if `t` is
    /// reachable.
    fn build_levels<W: ArenaIndex>(&mut self, g: &FlowGraph<W>, s: VertexId, t: VertexId) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push(s as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            let (lo, hi) = g.adj_bounds(v);
            for pos in lo..hi {
                // Level-first rejection: most edges point at vertices the
                // BFS already reached, so only the `head` word is needed —
                // prefetch just that line and leave cap/flow alone.
                g.prefetch_adj_head(pos, hi);
                let e = g.adj_slot(pos);
                let w = g.target_fast(e);
                if self.level[w] < 0 && g.residual_fast(e) > 0 {
                    self.level[w] = self.level[v] + 1;
                    self.queue.push(w as u32);
                }
            }
        }
        self.level[t] >= 0
    }

    /// DFS pushing up to `limit` units along level-increasing edges.
    fn block<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        v: VertexId,
        t: VertexId,
        limit: i64,
    ) -> i64 {
        if v == t {
            return limit;
        }
        let (lo, hi) = g.adj_bounds(v);
        while lo + (self.iter[v] as u32) < hi {
            let pos = lo + self.iter[v] as u32;
            // The DFS tests residual before level, so it needs the full
            // per-edge state of upcoming slots.
            g.prefetch_adj(pos, hi);
            let e = g.adj_slot(pos);
            let w = g.target_fast(e);
            if g.residual_fast(e) > 0 && self.level[w] == self.level[v] + 1 {
                let pushed = self.block(g, w, t, limit.min(g.residual_fast(e)));
                if pushed > 0 {
                    g.push(e, pushed);
                    return pushed;
                }
            }
            self.iter[v] += 1;
        }
        // Dead end: prune this vertex for the rest of the phase.
        self.level[v] = -1;
        0
    }
}

/// Convenience wrapper running [`Dinic`] from a zero flow.
pub fn max_flow<W: ArenaIndex>(g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
    g.zero_flows();
    Dinic::new().max_flow(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ford_fulkerson::ford_fulkerson;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn clrs_max_flow() {
        let (mut g, s, t) = clrs();
        assert_eq!(max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn agrees_with_ford_fulkerson_on_random_graphs() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(4..20);
            let m = rng.gen_range(n..4 * n);
            let mut g: FlowGraph = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..20));
                }
            }
            let mut g2 = g.clone();
            let d = max_flow(&mut g, 0, n - 1);
            let f = ford_fulkerson(&mut g2, 0, n - 1);
            assert_eq!(d, f);
        }
    }

    #[test]
    fn resumes_on_existing_flow() {
        let (mut g, s, t) = clrs();
        g.push(0, 5); // partial flow s -> v1
        g.push(4, 5); // v1 -> v3
        g.push(12, 5); // v3 -> t
        assert_eq!(Dinic::new().max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn zero_capacity_network() {
        let mut g: FlowGraph = FlowGraph::new(2);
        g.add_edge(0, 1, 0);
        assert_eq!(max_flow(&mut g, 0, 1), 0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g: FlowGraph = FlowGraph::new(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(max_flow(&mut g, 0, 1), 7);
    }
}
