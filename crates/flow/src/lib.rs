//! # rds-flow
//!
//! A self-contained maximum-flow substrate, built from scratch as a
//! replacement for the LEDA graph library used by the original paper
//! (Altiparmak & Tosun, ICPP 2012).
//!
//! The crate provides:
//!
//! * [`graph::FlowGraph`] — a compact residual-graph arena with paired
//!   forward/reverse edges and mutable capacities, designed so that flow
//!   state can be conserved while capacities change between solver runs
//!   (the *integrated* usage pattern at the heart of the paper).
//! * [`ford_fulkerson`] — DFS- and BFS-based augmenting-path maximum flow
//!   (Ford-Fulkerson / Edmonds-Karp).
//! * [`dinic`] — Dinic's blocking-flow algorithm, used in this workspace as
//!   an independent cross-validation oracle.
//! * [`push_relabel`] — FIFO push-relabel (Goldberg-Tarjan) with the
//!   global-relabeling ("exact height") and gap heuristics of
//!   Cherkassky-Goldberg, plus a `resume` entry point that conserves
//!   previously computed flows after capacity increases.
//! * [`parallel`] — a lock-free multithreaded push-relabel in the style of
//!   Hong & He (IEEE TPDS 2011), using only atomic read-modify-write
//!   operations (no locks, no barriers).
//! * [`mincost`] — minimum-cost flow on the same residual arena:
//!   successive shortest paths with potentials, plus a negative-cycle
//!   canceling refiner that rebalances an existing flow under linear or
//!   convex marginal arc costs without changing its value.
//! * [`validate`] — flow validation helpers shared by tests and property
//!   tests.
//!
//! All algorithms operate on the same [`graph::FlowGraph`] so results are
//! directly comparable.
//!
//! ## Example
//!
//! ```
//! use rds_flow::graph::FlowGraph;
//! use rds_flow::push_relabel::PushRelabel;
//!
//! // A diamond: s -> a -> t and s -> b -> t, all capacity 1.
//! let mut g: FlowGraph = FlowGraph::new(4);
//! let (s, a, b, t) = (0, 1, 2, 3);
//! g.add_edge(s, a, 1);
//! g.add_edge(s, b, 1);
//! g.add_edge(a, t, 1);
//! g.add_edge(b, t, 1);
//!
//! let mut pr = PushRelabel::new();
//! assert_eq!(pr.max_flow(&mut g, s, t), 2);
//! ```

pub mod decompose;
pub mod dinic;
pub mod ford_fulkerson;
pub mod graph;
pub mod highest_label;
pub mod incremental;
pub mod min_cut;
pub mod mincost;
pub mod mpmc;
pub mod parallel;
pub mod push_relabel;
pub mod validate;

pub use graph::{ArenaIndex, EdgeId, FlowGraph, VertexId, WidthOverflow};
pub use incremental::IncrementalMaxFlow;
pub use mincost::{ArcCost, CycleCanceler, RefineStats};
pub use parallel::WorkerPool;
