//! Highest-label push-relabel — the other classic vertex-selection rule.
//!
//! The paper's Algorithm 4 uses FIFO selection ("we use the FIFO ordering
//! for selecting vertices ... suggested by \[19\]"); Cherkassky and
//! Goldberg's study also evaluates the highest-label rule, which achieves
//! the better `O(V²·√E)` bound. This implementation exists as an ablation
//! point: `cargo bench -p rds-bench` compares it against the FIFO engine
//! on retrieval networks, grounding the paper's choice empirically.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};

/// Sentinel for empty intrusive-list slots.
const NONE: u32 = u32::MAX;

/// Highest-label push-relabel solver (from-scratch solves only — the
/// integrated drivers use the FIFO engine, matching the paper).
#[derive(Clone, Debug, Default)]
pub struct HighestLabelPushRelabel {
    height: Vec<u32>,
    excess: Vec<i64>,
    cur_arc: Vec<u32>,
    /// Intrusive per-height bucket stacks over two flat arrays:
    /// `bucket_head[h]` is the most recently activated vertex at height `h`
    /// and `bucket_next[v]` the vertex activated before it (both [`NONE`]
    /// terminated). Push/pop at the head preserve the LIFO order of the
    /// former `Vec<Vec<u32>>` buckets without a heap allocation per height.
    bucket_head: Vec<u32>,
    bucket_next: Vec<u32>,
    in_bucket: Vec<bool>,
    /// Gap-heuristic counters.
    height_count: Vec<u32>,
}

impl HighestLabelPushRelabel {
    /// Creates a solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a maximum flow from scratch. Returns the flow value. The
    /// solver state is reused across calls; repeat solves of same-sized
    /// graphs perform no allocations.
    pub fn max_flow<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        s: VertexId,
        t: VertexId,
    ) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.finalize();
        let n = g.num_vertices();
        g.zero_flows();
        self.height.clear();
        self.height.resize(n, 0);
        self.excess.clear();
        self.excess.resize(n, 0);
        self.cur_arc.clear();
        self.cur_arc.resize(n, 0);
        self.in_bucket.clear();
        self.in_bucket.resize(n, false);
        self.bucket_next.clear();
        self.bucket_next.resize(n, NONE);
        self.bucket_head.clear();
        self.bucket_head.resize(2 * n + 2, NONE);
        self.height_count.clear();
        self.height_count.resize(2 * n + 2, 0);
        self.height[s] = n as u32;
        self.height_count[0] = (n - 1) as u32;
        self.height_count[n] += 1;

        // Saturate source edges.
        for i in 0..g.out_edges(s).len() {
            let e = g.out_edges(s)[i] as EdgeId;
            if !e.is_multiple_of(2) {
                continue;
            }
            let delta = g.residual(e);
            if delta > 0 {
                let v = g.target(e);
                g.push(e, delta);
                self.excess[v] += delta;
            }
        }
        let mut highest = 0usize;
        for v in 0..n {
            if v != s && v != t && self.excess[v] > 0 {
                self.activate(v, &mut highest);
            }
        }

        // Main loop: always discharge an active vertex of maximal height.
        loop {
            // Find the highest non-empty bucket at or below `highest`.
            while highest > 0 && self.bucket_head[highest] == NONE {
                highest -= 1;
            }
            let v = self.bucket_head[highest];
            if v == NONE {
                break;
            }
            let v = v as usize;
            self.bucket_head[highest] = self.bucket_next[v];
            self.in_bucket[v] = false;
            self.discharge(g, v, s, t, &mut highest);
        }
        self.excess[t]
    }

    fn activate(&mut self, v: VertexId, highest: &mut usize) {
        if !self.in_bucket[v] {
            self.in_bucket[v] = true;
            let h = self.height[v] as usize;
            self.bucket_next[v] = self.bucket_head[h];
            self.bucket_head[h] = v as u32;
            *highest = (*highest).max(h);
        }
    }

    fn discharge<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        v: VertexId,
        s: VertexId,
        t: VertexId,
        highest: &mut usize,
    ) {
        let n = g.num_vertices() as u32;
        // Hoist the adjacency bounds once: topology is frozen for the whole
        // solve, so the bounds cannot move (see `FlowGraph::adj_bounds`).
        let (lo, hi) = g.adj_bounds(v);
        while self.excess[v] > 0 {
            let pos = lo + self.cur_arc[v];
            if pos >= hi {
                if !self.relabel(g, v, n) {
                    break;
                }
                if self.height[v] >= 2 * n {
                    break;
                }
                continue;
            }
            g.prefetch_adj(pos, hi);
            let e = g.adj_slot(pos);
            let w = g.target_fast(e);
            if g.residual_fast(e) > 0 && self.height[v] == self.height[w] + 1 {
                let delta = self.excess[v].min(g.residual_fast(e));
                g.push_fast(e, delta);
                self.excess[v] -= delta;
                self.excess[w] += delta;
                if w != s && w != t {
                    self.activate(w, highest);
                }
            } else {
                self.cur_arc[v] += 1;
            }
        }
    }

    fn relabel<W: ArenaIndex>(&mut self, g: &FlowGraph<W>, v: VertexId, n: u32) -> bool {
        let mut min_h = u32::MAX;
        let (lo, hi) = g.adj_bounds(v);
        for pos in lo..hi {
            // The min-scan touches every edge's residual, so fetch the full
            // per-edge state (cap/flow/head) ahead of the walk.
            g.prefetch_adj(pos, hi);
            let e = g.adj_slot(pos);
            if g.residual_fast(e) > 0 {
                min_h = min_h.min(self.height[g.target_fast(e)]);
            }
        }
        if min_h == u32::MAX {
            return false;
        }
        let old = self.height[v];
        let new = min_h + 1;
        self.height[v] = new;
        self.cur_arc[v] = 0;
        self.height_count[old as usize] -= 1;
        self.height_count[new as usize] += 1;
        // Gap heuristic.
        if self.height_count[old as usize] == 0 && old < n {
            for u in 0..self.height.len() {
                let h = self.height[u];
                if h > old && h < n {
                    self.height_count[h as usize] -= 1;
                    self.height[u] = n + 1;
                    self.height_count[(n + 1) as usize] += 1;
                    self.cur_arc[u] = 0;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;

    #[test]
    fn clrs_max_flow() {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        assert_eq!(HighestLabelPushRelabel::new().max_flow(&mut g, 0, 5), 23);
        crate::validate::assert_valid_flow(&g, 0, 5);
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(123);
        for case in 0..60 {
            let n = rng.gen_range(4..22);
            let m = rng.gen_range(n..5 * n);
            let mut g: FlowGraph = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..25));
                }
            }
            let mut oracle = g.clone();
            let want = dinic::max_flow(&mut oracle, 0, n - 1);
            let got = HighestLabelPushRelabel::new().max_flow(&mut g, 0, n - 1);
            assert_eq!(got, want, "case {case}");
            crate::validate::assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn disconnected_network() {
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(2, 3, 3);
        assert_eq!(HighestLabelPushRelabel::new().max_flow(&mut g, 0, 3), 0);
    }

    #[test]
    fn reusable_across_graphs() {
        let mut solver = HighestLabelPushRelabel::new();
        let mut g1: FlowGraph = FlowGraph::new(2);
        g1.add_edge(0, 1, 9);
        assert_eq!(solver.max_flow(&mut g1, 0, 1), 9);
        let mut g2: FlowGraph = FlowGraph::new(3);
        g2.add_edge(0, 1, 4);
        g2.add_edge(1, 2, 2);
        assert_eq!(solver.max_flow(&mut g2, 0, 2), 2);
    }
}
