//! Flow decomposition: express an s-t flow as a sum of source-to-sink
//! paths (plus any circulation cycles).
//!
//! Used to explain retrieval schedules (each unit path is one bucket's
//! route `s → bucket → disk → t`) and as a verification aid: the path
//! amounts must sum to the flow value.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};

/// One component of a decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathFlow {
    /// Forward edges from `s` to `t` (or around a cycle).
    pub edges: Vec<EdgeId>,
    /// Amount of flow carried.
    pub amount: i64,
    /// True if this component is a cycle (carries no s-t value).
    pub is_cycle: bool,
}

/// Decomposes the flow stored in `g` into s-t paths and cycles.
///
/// The graph is not modified (the walk uses a scratch copy of the flow
/// values). Path amounts sum to the net inflow at `t`; cycle amounts are
/// circulation that contributes nothing to the flow value.
pub fn decompose<W: ArenaIndex>(g: &FlowGraph<W>, s: VertexId, t: VertexId) -> Vec<PathFlow> {
    let mut flow: Vec<i64> = (0..g.num_edge_slots()).map(|e| g.flow(e)).collect();
    let mut out = Vec::new();
    let n = g.num_vertices();

    // Walk scratch, shared across every path/cycle extraction: `visited_at`
    // is generation-stamped so clearing it between walks is O(1), and `walk`
    // keeps its buffer (only the extracted edges are copied into the output).
    let mut visit_gen: Vec<u64> = vec![0; n];
    let mut visit_pos: Vec<usize> = vec![0; n];
    let mut walk: Vec<EdgeId> = Vec::new();
    let mut generation = 0u64;

    // Repeatedly walk positive-flow forward edges from s; detect cycles by
    // tracking the walk's visit order.
    loop {
        // Find an outgoing saturated edge at s.
        let start = g
            .out_edges(s)
            .iter()
            .map(|&e| e as EdgeId)
            .find(|&e| e % 2 == 0 && flow[e] > 0);
        let Some(first) = start else { break };
        generation += 1;
        walk.clear();
        walk.push(first);
        visit_gen[s] = generation;
        visit_pos[s] = 0;
        let mut cur = g.target(first);
        loop {
            if cur == t {
                // Path found; bottleneck and subtract.
                let amount = walk.iter().map(|&e| flow[e]).min().expect("non-empty");
                for &e in &walk {
                    flow[e] -= amount;
                    flow[e ^ 1] += amount;
                }
                out.push(PathFlow {
                    edges: walk.clone(),
                    amount,
                    is_cycle: false,
                });
                break;
            }
            if visit_gen[cur] == generation {
                // Cycle: cancel the looping suffix, keep the prefix for a
                // future walk (simplest: restart from scratch).
                let cycle: Vec<EdgeId> = walk.split_off(visit_pos[cur]);
                let amount = cycle.iter().map(|&e| flow[e]).min().expect("non-empty");
                for &e in &cycle {
                    flow[e] -= amount;
                    flow[e ^ 1] += amount;
                }
                out.push(PathFlow {
                    edges: cycle,
                    amount,
                    is_cycle: true,
                });
                break;
            }
            visit_gen[cur] = generation;
            visit_pos[cur] = walk.len();
            let next = g
                .out_edges(cur)
                .iter()
                .map(|&e| e as EdgeId)
                .find(|&e| e % 2 == 0 && flow[e] > 0)
                .unwrap_or_else(|| {
                    panic!("flow conservation violated at vertex {cur} during decomposition")
                });
            walk.push(next);
            cur = g.target(next);
        }
    }

    // Remaining positive flow (disconnected circulations not reachable
    // from s): cancel them as cycles.
    loop {
        let seed = (0..g.num_edge_slots()).step_by(2).find(|&e| flow[e] > 0);
        let Some(first) = seed else { break };
        let origin = g.source(first);
        generation += 1;
        visit_gen[origin] = generation;
        visit_pos[origin] = 0;
        walk.clear();
        walk.push(first);
        let mut cur = g.target(first);
        loop {
            if visit_gen[cur] == generation {
                let cycle: Vec<EdgeId> = walk.split_off(visit_pos[cur]);
                let amount = cycle.iter().map(|&e| flow[e]).min().expect("non-empty");
                for &e in &cycle {
                    flow[e] -= amount;
                    flow[e ^ 1] += amount;
                }
                out.push(PathFlow {
                    edges: cycle,
                    amount,
                    is_cycle: true,
                });
                break;
            }
            visit_gen[cur] = generation;
            visit_pos[cur] = walk.len();
            let next = g
                .out_edges(cur)
                .iter()
                .map(|&e| e as EdgeId)
                .find(|&e| e % 2 == 0 && flow[e] > 0)
                .unwrap_or_else(|| {
                    panic!("flow conservation violated at vertex {cur} during decomposition")
                });
            walk.push(next);
            cur = g.target(next);
        }
    }
    out
}

/// Sum of the s-t path amounts in a decomposition.
pub fn path_value(decomposition: &[PathFlow]) -> i64 {
    decomposition
        .iter()
        .filter(|p| !p.is_cycle)
        .map(|p| p.amount)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_relabel::PushRelabel;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn decomposition_value_matches_flow() {
        let (mut g, s, t) = clrs();
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        let d = decompose(&g, s, t);
        assert_eq!(path_value(&d), value);
        for p in &d {
            assert!(p.amount > 0);
            if !p.is_cycle {
                assert_eq!(g.source(p.edges[0]), s);
                assert_eq!(g.target(*p.edges.last().unwrap()), t);
            }
        }
    }

    #[test]
    fn paths_are_edge_consistent() {
        let (mut g, s, t) = clrs();
        PushRelabel::new().max_flow(&mut g, s, t);
        for p in decompose(&g, s, t) {
            for w in p.edges.windows(2) {
                assert_eq!(g.target(w[0]), g.source(w[1]));
            }
        }
    }

    #[test]
    fn zero_flow_decomposes_to_nothing() {
        let (mut g, s, t) = clrs();
        g.finalize();
        assert!(decompose(&g, s, t).is_empty());
    }

    #[test]
    fn pure_cycle_is_detected() {
        let mut g: FlowGraph = FlowGraph::new(4);
        // s and t disconnected from a 2-cycle carrying circulation.
        let a = g.add_edge(2, 3, 5);
        let b = g.add_edge(3, 2, 5);
        g.finalize();
        g.push(a, 3);
        g.push(b, 3);
        let d = decompose(&g, 0, 1);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_cycle);
        assert_eq!(d[0].amount, 3);
        assert_eq!(path_value(&d), 0);
    }

    /// A circulation reachable from `s` exercises the *first* loop's cycle
    /// branch (`walk.split_off`): the walk from `s` enters the cycle
    /// `a -> b -> c -> a` before it can take `a -> t`, because `a -> b` was
    /// inserted first and adjacency preserves insertion order. The cycle is
    /// cancelled as its own component and the s-t unit survives as a path.
    #[test]
    fn cycle_reachable_from_source_is_split_off_the_walk() {
        let mut g: FlowGraph = FlowGraph::new(5);
        let (s, a, b, c, t) = (0, 1, 2, 3, 4);
        let sa = g.add_edge(s, a, 1);
        let ab = g.add_edge(a, b, 1); // cycle entry sorts before a -> t
        let at = g.add_edge(a, t, 1);
        let bc = g.add_edge(b, c, 1);
        let ca = g.add_edge(c, a, 1);
        g.finalize();
        for e in [sa, at] {
            g.push(e, 1);
        }
        for e in [ab, bc, ca] {
            g.push(e, 1);
        }
        let d = decompose(&g, s, t);
        assert_eq!(d.len(), 2);
        let cycle = d.iter().find(|p| p.is_cycle).expect("cycle component");
        assert_eq!(cycle.edges, vec![ab, bc, ca]);
        assert_eq!(cycle.amount, 1);
        let path = d.iter().find(|p| !p.is_cycle).expect("path component");
        assert_eq!(path.edges, vec![sa, at]);
        assert_eq!(path_value(&d), 1);
    }

    #[test]
    fn unit_retrieval_paths_have_length_three() {
        // A retrieval-shaped network: s -> b1,b2 -> d1,d2 -> t.
        let mut g: FlowGraph = FlowGraph::new(6);
        let (s, b1, b2, d1, d2, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, b1, 1);
        g.add_edge(s, b2, 1);
        g.add_edge(b1, d1, 1);
        g.add_edge(b2, d2, 1);
        g.add_edge(d1, t, 1);
        g.add_edge(d2, t, 1);
        let v = PushRelabel::new().max_flow(&mut g, s, t);
        assert_eq!(v, 2);
        let d = decompose(&g, s, t);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|p| p.edges.len() == 3 && p.amount == 1));
    }
}
