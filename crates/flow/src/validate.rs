//! Flow-validity checks shared by unit, integration and property tests.

use crate::graph::{ArenaIndex, FlowGraph, VertexId};

/// Errors detected by [`validate_flow`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// `flow(e) > cap(e)` or `flow(e) < -cap(e ^ 1)` for some edge.
    CapacityViolation { edge: usize, flow: i64, cap: i64 },
    /// Net flow out of an intermediate vertex is nonzero.
    ConservationViolation { vertex: VertexId, net: i64 },
    /// Paired edges do not carry opposite flows.
    PairingViolation { edge: usize },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::CapacityViolation { edge, flow, cap } => {
                write!(f, "edge {edge}: flow {flow} exceeds capacity {cap}")
            }
            FlowError::ConservationViolation { vertex, net } => {
                write!(f, "vertex {vertex}: net outflow {net} != 0")
            }
            FlowError::PairingViolation { edge } => {
                write!(f, "edge {edge}: paired flows are not opposite")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Checks that the flow stored in `g` is a feasible s-t flow: paired edges
/// carry opposite flows, no capacity is exceeded, and flow is conserved at
/// every vertex except `s` and `t`.
pub fn validate_flow<W: ArenaIndex>(
    g: &FlowGraph<W>,
    s: VertexId,
    t: VertexId,
) -> Result<(), FlowError> {
    for e in g.forward_edges() {
        if g.flow(e) != -g.flow(e ^ 1) {
            return Err(FlowError::PairingViolation { edge: e });
        }
        if g.flow(e) > g.cap(e) || g.flow(e) < -g.cap(e ^ 1) {
            return Err(FlowError::CapacityViolation {
                edge: e,
                flow: g.flow(e),
                cap: g.cap(e),
            });
        }
    }
    for v in 0..g.num_vertices() {
        if v == s || v == t {
            continue;
        }
        let net = g.net_inflow(v);
        if net != 0 {
            return Err(FlowError::ConservationViolation { vertex: v, net });
        }
    }
    Ok(())
}

/// Panicking wrapper around [`validate_flow`] for use in tests.
pub fn assert_valid_flow<W: ArenaIndex>(g: &FlowGraph<W>, s: VertexId, t: VertexId) {
    if let Err(e) = validate_flow(g, s, t) {
        panic!("invalid flow: {e}");
    }
}

/// Returns the flow value (net inflow at `t`), asserting validity first.
pub fn checked_flow_value<W: ArenaIndex>(g: &FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
    assert_valid_flow(g, s, t);
    g.net_inflow(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_flow_passes() {
        let mut g: FlowGraph = FlowGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 2);
        g.push(0, 2);
        g.push(2, 2);
        assert_eq!(validate_flow(&g, 0, 2), Ok(()));
        assert_eq!(checked_flow_value(&g, 0, 2), 2);
    }

    #[test]
    fn conservation_violation_detected() {
        let mut g: FlowGraph = FlowGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 2);
        g.push(0, 2); // inflow to 1 with no outflow
        assert!(matches!(
            validate_flow(&g, 0, 2),
            Err(FlowError::ConservationViolation { vertex: 1, net: 2 })
        ));
    }

    #[test]
    fn capacity_violation_detected() {
        let mut g: FlowGraph = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 5);
        g.push(e, 5);
        g.set_cap(e, 3); // lower capacity below current flow
        assert!(matches!(
            validate_flow(&g, 0, 1),
            Err(FlowError::CapacityViolation { .. })
        ));
    }

    #[test]
    fn error_messages_render() {
        let err = FlowError::CapacityViolation {
            edge: 3,
            flow: 9,
            cap: 5,
        };
        assert!(err.to_string().contains("edge 3"));
    }
}
