//! A bounded lock-free multi-producer multi-consumer queue.
//!
//! Replaces `crossbeam::queue::SegQueue` in the parallel push-relabel
//! engine so the crate has no external dependencies. The design is
//! Vyukov's bounded MPMC ring: every slot carries a sequence number that
//! encodes whether it is ready to be written (`seq == pos`) or read
//! (`seq == pos + 1`), and producers/consumers claim positions with a
//! single compare-exchange each — no locks anywhere.
//!
//! The parallel engine enqueues each vertex at most once (a `queued` flag
//! is claimed by CAS before every push), so a capacity of one slot per
//! vertex can never overflow. [`BoundedQueue::push`] still reports
//! overflow rather than trusting callers.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot {
    /// `pos` when empty and writable by the producer claiming `pos`;
    /// `pos + 1` when holding the value pushed at `pos`.
    seq: AtomicUsize,
    val: UnsafeCell<u32>,
}

/// A fixed-capacity lock-free MPMC queue of `u32` values.
pub struct BoundedQueue {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next position to push (producers race on this).
    tail: AtomicUsize,
    /// Next position to pop (consumers race on this).
    head: AtomicUsize,
}

impl std::fmt::Debug for BoundedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.slots.len())
            .finish_non_exhaustive()
    }
}

// The UnsafeCell is only written by the producer that claimed the slot's
// sequence number and only read by the consumer that subsequently claimed
// it; the seq acquire/release pair orders those accesses.
unsafe impl Sync for BoundedQueue {}
unsafe impl Send for BoundedQueue {}

impl BoundedQueue {
    /// Creates a queue holding at least `capacity` values.
    pub fn with_capacity(capacity: usize) -> BoundedQueue {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(0),
            })
            .collect();
        BoundedQueue {
            slots,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Enqueues `value`; `Err(value)` if the queue is full.
    ///
    /// "Full" is the ring's lap-behind check (`seq < pos`), not an
    /// occupancy count: a consumer that claimed a slot but has not yet
    /// released it makes a push that laps the ring fail even though
    /// fewer than `capacity` values are logically enqueued. Callers that
    /// bound occupancy externally (one slot per key) must therefore
    /// treat `Err` as transient and retry — the stalled consumer's
    /// release store always lands.
    pub fn push(&self, value: u32) -> Result<(), u32> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free at this position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { *slot.val.get() = value };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // The slot still holds a value from a full lap ago.
                return Err(value);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues a value, `None` if the queue is empty.
    pub fn pop(&self) -> Option<u32> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let ready = pos.wrapping_add(1);
            if seq == ready {
                match self.head.compare_exchange_weak(
                    pos,
                    ready,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { *slot.val.get() };
                        // Mark writable for the producer one lap ahead.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < ready {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = BoundedQueue::with_capacity(4);
        assert_eq!(q.pop(), None);
        for v in 0..4 {
            q.push(v).unwrap();
        }
        assert!(q.push(99).is_err(), "queue is full");
        for v in 0..4 {
            assert_eq!(q.pop(), Some(v));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = BoundedQueue::with_capacity(3); // rounds up to 4
        for lap in 0..100u32 {
            q.push(lap).unwrap();
            q.push(lap + 1000).unwrap();
            assert_eq!(q.pop(), Some(lap));
            assert_eq!(q.pop(), Some(lap + 1000));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_err_is_transient_at_full_occupancy() {
        // Rotation at exactly `capacity` resident values: each thread
        // pops one value and pushes it straight back, so every push
        // races the ring's lap-behind full check against consumers that
        // are mid-claim. `Err` must always clear on retry — this is the
        // contract the parallel push-relabel engine relies on instead of
        // panicking (a panicking worker used to livelock its peers).
        let q = Arc::new(BoundedQueue::with_capacity(4));
        for v in 0..4 {
            q.push(v).unwrap();
        }
        let rotated = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let rotated = Arc::clone(&rotated);
                s.spawn(move || {
                    for _ in 0..50_000 {
                        if let Some(v) = q.pop() {
                            let mut spins = 0u64;
                            while q.push(v).is_err() {
                                spins += 1;
                                assert!(spins < 1_000_000_000, "push never cleared");
                                std::hint::spin_loop();
                            }
                            rotated.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(rotated.load(Ordering::Relaxed) > 0);
        // All four values survive the churn exactly once.
        let mut seen: Vec<u32> = (0..4).map(|_| q.pop().unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let n: u32 = 20_000;
        let threads = 4;
        let q = Arc::new(BoundedQueue::with_capacity(n as usize * threads));
        let sum = Arc::new(AtomicUsize::new(0));
        let popped = Arc::new(AtomicUsize::new(0));
        let total = n as usize * threads;
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for v in 0..n {
                        q.push(v + (t as u32) * n).unwrap();
                    }
                });
            }
            for _ in 0..threads {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                let popped = Arc::clone(&popped);
                s.spawn(move || loop {
                    if popped.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v as usize, Ordering::Relaxed);
                        popped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        let expect: usize = (0..(n as usize * threads)).sum();
        assert_eq!(popped.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }
}
