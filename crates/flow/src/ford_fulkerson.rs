//! Augmenting-path maximum flow: Ford-Fulkerson (DFS) and Edmonds-Karp
//! (BFS).
//!
//! The DFS variant mirrors the `DFS(G, v, t, caps, flow, path)` primitive of
//! the paper's Algorithms 1 and 2: it searches the *residual* graph for a
//! path between two arbitrary vertices and, on success, augments one unit
//! (or the bottleneck) of flow along it. Unlike the paper's pseudocode we do
//! not physically reverse edges — the paired-edge residual representation
//! makes `reverse_edge`/`fixReversedEdges` unnecessary while computing the
//! identical augmentations.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};

/// Reusable state for augmenting-path searches.
///
/// Keeping the scratch buffers in a struct avoids reallocating the `visited`
/// and `path` vectors for every augmentation, which matters because the
/// retrieval algorithms perform `O(|Q|)` searches per query.
#[derive(Clone, Debug, Default)]
pub struct AugmentingPath {
    visited: Vec<u32>,
    /// Generation counter: `visited[v] == generation` means v was seen in
    /// the current search. Avoids clearing the vector between searches.
    generation: u32,
    path: Vec<EdgeId>,
    stack: Vec<(VertexId, usize)>,
    /// BFS scratch: parent edge per vertex and an indexed queue, reused so
    /// Edmonds-Karp searches allocate nothing after warm-up.
    parent: Vec<EdgeId>,
    queue: Vec<u32>,
}

impl AugmentingPath {
    /// Creates an empty search state.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.generation = 1;
        }
    }

    /// Depth-first search for a residual path `from -> to`.
    ///
    /// Returns the edges of a residual path if one exists. The path is not
    /// yet augmented; call [`AugmentingPath::augment`] or use
    /// [`AugmentingPath::dfs_augment`].
    pub fn dfs<W: ArenaIndex>(
        &mut self,
        g: &FlowGraph<W>,
        from: VertexId,
        to: VertexId,
    ) -> Option<&[EdgeId]> {
        self.dfs_avoiding(g, from, to, None)
    }

    /// Like [`AugmentingPath::dfs`] but never enters `blocked`.
    ///
    /// The paper's per-bucket search (Algorithms 1 and 2) runs from a
    /// bucket vertex to the sink with the *source excluded*: the residual
    /// reverse edges into the source would otherwise let the search
    /// "unroute" the current bucket and route a different one instead.
    pub fn dfs_avoiding<W: ArenaIndex>(
        &mut self,
        g: &FlowGraph<W>,
        from: VertexId,
        to: VertexId,
        blocked: Option<VertexId>,
    ) -> Option<&[EdgeId]> {
        self.begin(g.num_vertices());
        self.path.clear();
        self.stack.clear();
        if from == to {
            return Some(&self.path);
        }
        if let Some(b) = blocked {
            self.visited[b] = self.generation;
        }
        self.visited[from] = self.generation;
        self.stack.push((from, 0));
        while let Some(&mut (v, ref mut idx)) = self.stack.last_mut() {
            let edges = g.out_edges(v);
            let mut advanced = false;
            while *idx < edges.len() {
                let e = edges[*idx] as EdgeId;
                *idx += 1;
                let w = g.target_fast(e);
                if g.residual_fast(e) > 0 && self.visited[w] != self.generation {
                    self.visited[w] = self.generation;
                    self.path.push(e);
                    if w == to {
                        return Some(&self.path);
                    }
                    self.stack.push((w, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.stack.pop();
                self.path.pop();
            }
        }
        None
    }

    /// Breadth-first (shortest) residual path `from -> to`, as used by the
    /// Edmonds-Karp variant.
    pub fn bfs<W: ArenaIndex>(
        &mut self,
        g: &FlowGraph<W>,
        from: VertexId,
        to: VertexId,
    ) -> Option<Vec<EdgeId>> {
        self.begin(g.num_vertices());
        let n = g.num_vertices();
        self.parent.clear();
        self.parent.resize(n, usize::MAX);
        self.queue.clear();
        self.visited[from] = self.generation;
        self.queue.push(from as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            for &e in g.out_edges(v) {
                let e = e as EdgeId;
                let w = g.target_fast(e);
                if g.residual_fast(e) > 0 && self.visited[w] != self.generation {
                    self.visited[w] = self.generation;
                    self.parent[w] = e;
                    if w == to {
                        let mut path = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let pe = self.parent[cur];
                            path.push(pe);
                            cur = g.source(pe);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    self.queue.push(w as u32);
                }
            }
        }
        None
    }

    /// Augments flow along `path` by the bottleneck residual capacity and
    /// returns the amount pushed.
    pub fn augment<W: ArenaIndex>(g: &mut FlowGraph<W>, path: &[EdgeId]) -> i64 {
        let bottleneck = path.iter().map(|&e| g.residual(e)).min().unwrap_or(0);
        if bottleneck > 0 {
            for &e in path {
                g.push(e, bottleneck);
            }
        }
        bottleneck
    }

    /// Augments flow along `path` by exactly `amount` units.
    ///
    /// The retrieval algorithms always push a single unit per bucket, so the
    /// bottleneck is known to be at least 1.
    pub fn augment_by<W: ArenaIndex>(g: &mut FlowGraph<W>, path: &[EdgeId], amount: i64) {
        for &e in path {
            g.push(e, amount);
        }
    }

    /// One DFS search-and-augment step: finds a residual path and pushes the
    /// bottleneck along it. Returns the amount pushed (0 if no path).
    pub fn dfs_augment<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        from: VertexId,
        to: VertexId,
    ) -> i64 {
        self.dfs_augment_avoiding(g, from, to, None)
    }

    /// Search-and-augment variant of [`AugmentingPath::dfs_avoiding`].
    pub fn dfs_augment_avoiding<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        from: VertexId,
        to: VertexId,
        blocked: Option<VertexId>,
    ) -> i64 {
        g.finalize();
        if self.dfs_avoiding(g, from, to, blocked).is_some() {
            let path = std::mem::take(&mut self.path);
            let pushed = Self::augment(g, &path);
            self.path = path;
            pushed
        } else {
            0
        }
    }
}

/// Maximum flow via repeated DFS augmentation (Ford-Fulkerson).
///
/// Flow already present in `g` is conserved: the function only adds
/// augmenting paths on top of it, so it can be used in integrated mode.
/// Returns the *total* net inflow at `t` after augmentation.
pub fn ford_fulkerson<W: ArenaIndex>(g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
    g.finalize();
    let mut search = AugmentingPath::new();
    while search.dfs_augment(g, s, t) > 0 {}
    g.net_inflow(t)
}

/// Maximum flow via repeated shortest-path augmentation (Edmonds-Karp).
pub fn edmonds_karp<W: ArenaIndex>(g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
    g.finalize();
    let mut search = AugmentingPath::new();
    while let Some(path) = search.bfs(g, s, t) {
        let pushed = AugmentingPath::augment(g, &path);
        if pushed == 0 {
            break;
        }
    }
    g.net_inflow(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic CLRS example network, max flow 23.
    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        g.finalize();
        (g, s, t)
    }

    #[test]
    fn clrs_max_flow_dfs() {
        let (mut g, s, t) = clrs();
        assert_eq!(ford_fulkerson(&mut g, s, t), 23);
    }

    #[test]
    fn clrs_max_flow_bfs() {
        let (mut g, s, t) = clrs();
        assert_eq!(edmonds_karp(&mut g, s, t), 23);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut g: FlowGraph = FlowGraph::new(3);
        g.add_edge(0, 1, 5);
        assert_eq!(ford_fulkerson(&mut g, 0, 2), 0);
    }

    #[test]
    fn conserves_existing_flow() {
        let (mut g, s, t) = clrs();
        // Pre-push 4 units along s -> v2 -> v4 -> t.
        g.push(2, 4);
        g.push(8, 4);
        g.push(16, 4);
        assert_eq!(ford_fulkerson(&mut g, s, t), 23);
    }

    #[test]
    fn dfs_uses_residual_back_edges() {
        // s -> a -> t with cap 1, s -> b, b -> a forces rerouting.
        let mut g: FlowGraph = FlowGraph::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 1);
        g.add_edge(a, t, 1);
        g.add_edge(s, b, 1);
        g.add_edge(b, t, 1);
        g.add_edge(a, b, 1);
        assert_eq!(ford_fulkerson(&mut g, s, t), 2);
    }

    #[test]
    fn path_between_intermediate_vertices() {
        let (g, _, _) = clrs();
        let mut search = AugmentingPath::new();
        // v1 -> t exists through v3.
        assert!(search.dfs(&g, 1, 5).is_some());
        // t has no outgoing residual edges initially.
        assert!(search.dfs(&g, 5, 0).is_none());
    }

    #[test]
    fn augment_returns_bottleneck() {
        let (mut g, s, t) = clrs();
        let mut search = AugmentingPath::new();
        let path: Vec<_> = search.bfs(&g, s, t).unwrap();
        let pushed = AugmentingPath::augment(&mut g, &path);
        assert!(pushed > 0);
        assert_eq!(g.net_inflow(t), pushed);
    }

    #[test]
    fn dfs_avoiding_blocks_vertex() {
        // s -> a -> t; a path from a to t through s is blocked.
        let mut g: FlowGraph = FlowGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.finalize();
        g.push(0, 1); // saturate s -> a, creating residual a -> s
        let mut search = AugmentingPath::new();
        // Unblocked: a -> s -> t exists via the residual back edge.
        assert!(search.dfs_avoiding(&g, 1, 2, None).is_some());
        // Blocking s removes the only route.
        assert!(search.dfs_avoiding(&g, 1, 2, Some(0)).is_none());
    }

    #[test]
    fn generation_counter_survives_many_searches() {
        let (mut g, s, t) = clrs();
        let mut search = AugmentingPath::new();
        for _ in 0..10_000 {
            let _ = search.dfs(&g, s, t);
        }
        assert_eq!(ford_fulkerson(&mut g, s, t), 23);
    }
}
