//! FIFO push-relabel maximum flow (Goldberg-Tarjan) with the
//! Cherkassky-Goldberg heuristics, plus a flow-conserving [`PushRelabel::resume`]
//! entry point used by the paper's integrated algorithms.
//!
//! The implementation follows the paper's Algorithm 4:
//!
//! * vertices are selected in **FIFO** order,
//! * the **exact height** (global relabeling) heuristic of Cherkassky and
//!   Goldberg recomputes distance labels by reverse BFS periodically,
//! * a **gap** heuristic lifts stranded vertices above the source height.
//!
//! The algorithm is run in a single combined phase: excess that cannot reach
//! the sink is returned to the source, so on termination every vertex except
//! the source and sink has zero excess — exactly the invariant the paper's
//! Algorithm 5 relies on when it conserves flows between runs.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};
use std::collections::VecDeque;

/// Operation counters, exposed for benchmarks and ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrStats {
    /// Number of push operations performed.
    pub pushes: u64,
    /// Number of (local) relabel operations performed.
    pub relabels: u64,
    /// Number of global relabeling passes.
    pub global_relabels: u64,
    /// Number of gap-heuristic activations.
    pub gaps: u64,
}

/// Reusable FIFO push-relabel solver.
///
/// The solver owns all per-vertex state (heights, excesses, queue) so that
/// the integrated retrieval algorithms can call [`PushRelabel::resume`]
/// repeatedly without reallocating, conserving both the graph's flow values
/// and the sink's accumulated excess between runs.
#[derive(Clone, Debug)]
pub struct PushRelabel {
    height: Vec<u32>,
    excess: Vec<i64>,
    cur_arc: Vec<u32>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    /// `height_count[h]` = number of vertices at height `h` (gap heuristic).
    height_count: Vec<u32>,
    /// BFS scratch for global relabeling.
    bfs_queue: Vec<u32>,
    work: u64,
    /// Enable periodic global relabeling (the paper's "exact height
    /// calculation heuristics suggested by \[19\]"). On by default.
    pub enable_global_relabel: bool,
    /// Enable the gap heuristic. On by default.
    pub enable_gap: bool,
    /// Operation counters for the most recent run(s); reset manually.
    pub stats: PrStats,
}

impl Default for PushRelabel {
    fn default() -> Self {
        Self::new()
    }
}

/// Amount of edge-scan work between global relabeling passes, as a multiple
/// of the edge count (Cherkassky-Goldberg recommend a small constant).
const GLOBAL_RELABEL_WORK_FACTOR: u64 = 6;

impl PushRelabel {
    /// Creates a solver with both heuristics enabled.
    pub fn new() -> Self {
        PushRelabel {
            height: Vec::new(),
            excess: Vec::new(),
            cur_arc: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            height_count: Vec::new(),
            bfs_queue: Vec::new(),
            work: 0,
            enable_global_relabel: true,
            enable_gap: true,
            stats: PrStats::default(),
        }
    }

    /// Creates a solver with all heuristics disabled (the textbook FIFO
    /// algorithm). Useful for ablation benchmarks.
    pub fn plain() -> Self {
        PushRelabel {
            enable_global_relabel: false,
            enable_gap: false,
            ..Self::new()
        }
    }

    /// Current excess of vertex `v` (0 if the solver has not run yet).
    pub fn excess(&self, v: VertexId) -> i64 {
        self.excess.get(v).copied().unwrap_or(0)
    }

    /// Overrides the excess of vertex `v`.
    ///
    /// The binary capacity-scaling driver (Algorithm 6) restores the sink
    /// excess together with a flow snapshot after a failed probe.
    pub fn set_excess(&mut self, v: VertexId, x: i64) {
        self.ensure(v + 1);
        self.excess[v] = x;
    }

    /// Current height of vertex `v`.
    pub fn height(&self, v: VertexId) -> u32 {
        self.height.get(v).copied().unwrap_or(0)
    }

    /// Cumulative `(pushes, relabels)` since construction. Inherent (not
    /// just on [`crate::incremental::IncrementalMaxFlow`]) so graph-less
    /// call sites need no width annotation.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.stats.pushes, self.stats.relabels)
    }

    /// Zeroes the excesses of vertices `0..n` (see
    /// [`crate::incremental::IncrementalMaxFlow::reset_excess`]).
    pub fn reset_excess(&mut self, n: usize) {
        self.ensure(n);
        for e in self.excess.iter_mut().take(n) {
            *e = 0;
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.height.len() < n {
            self.height.resize(n, 0);
            self.excess.resize(n, 0);
            self.cur_arc.resize(n, 0);
            self.in_queue.resize(n, false);
            self.height_count.resize(2 * n + 1, 0);
        }
        if self.height_count.len() < 2 * n + 1 {
            self.height_count.resize(2 * n + 1, 0);
        }
    }

    /// Computes a maximum flow from scratch: zeroes the graph's flows and
    /// the solver's excesses, then runs FIFO push-relabel. Returns the flow
    /// value (`excess[t]`).
    pub fn max_flow<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        s: VertexId,
        t: VertexId,
    ) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.zero_flows();
        self.ensure(g.num_vertices());
        self.excess.iter_mut().for_each(|e| *e = 0);
        self.resume(g, s, t)
    }

    /// Runs push-relabel **conserving** the flow currently stored in `g` and
    /// the excesses accumulated in the solver (in particular `excess[t]`).
    ///
    /// This is the integrated entry point (paper Algorithm 5, lines 3-16):
    ///
    /// 1. the FIFO queue is cleared;
    /// 2. every source out-edge with positive residual `δ = cap - flow` is
    ///    saturated, adding `δ` to the target's excess and queueing it;
    /// 3. all heights are reset to zero except `height[s] = |V|`;
    /// 4. `excess[s]` is reset to zero;
    /// 5. push/relabel operations run until no active vertex remains.
    ///
    /// Returns `excess[t]`, the total flow value.
    pub fn resume<W: ArenaIndex>(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        g.finalize();
        let n = g.num_vertices();
        self.ensure(n);
        self.queue.clear();
        self.in_queue.iter_mut().for_each(|b| *b = false);

        // Saturate source edges that gained residual capacity (Alg. 5
        // l.4-10) and cancel any flow *into* the source. Inflow at s can
        // only be circulation through s (t-to-s components would need
        // outflow at t, which push-relabel never creates); cancelling it
        // keeps the zero-height relabeling valid and frees capacity that
        // a resume after capacity increases may need.
        for i in 0..g.out_edges(s).len() {
            let e = g.out_edges(s)[i] as EdgeId;
            let delta = g.residual(e);
            if e.is_multiple_of(2) {
                if delta > 0 {
                    let v = g.target(e);
                    g.push(e, delta);
                    self.excess[v] += delta;
                }
            } else if delta > 0 {
                // Reverse slot: its pair is a forward edge (v -> s)
                // carrying `delta` units; push them back onto v.
                let v = g.target(e);
                g.push(e, delta);
                self.excess[v] += delta;
            }
        }
        // Heights reset (Alg. 5 l.11-13); excess[s] cleared (l.14).
        self.height.iter_mut().for_each(|h| *h = 0);
        self.height[s] = n as u32;
        self.excess[s] = 0;
        self.cur_arc.iter_mut().for_each(|a| *a = 0);
        self.height_count.iter_mut().for_each(|c| *c = 0);
        self.height_count[0] = (n - 1) as u32;
        self.height_count[n] += 1;

        // Queue every active vertex (not only the freshly saturated ones:
        // restored flow snapshots may leave other vertices with excess).
        for v in 0..n {
            if v != s && v != t && self.excess[v] > 0 {
                self.queue.push_back(v as u32);
                self.in_queue[v] = true;
            }
        }

        if self.enable_global_relabel && !self.queue.is_empty() {
            self.global_relabel(g, s, t);
        }
        self.work = 0;

        let m = g.num_edge_slots() as u64;
        let relabel_threshold = GLOBAL_RELABEL_WORK_FACTOR * m.max(n as u64);
        while let Some(v) = self.queue.pop_front() {
            let v = v as usize;
            self.in_queue[v] = false;
            self.discharge(g, v, s, t);
            if self.enable_global_relabel && self.work >= relabel_threshold {
                self.work = 0;
                self.global_relabel(g, s, t);
            }
        }
        self.excess[t]
    }

    /// Fully discharges vertex `v`: pushes its excess to admissible
    /// neighbours, relabeling when the current-arc list is exhausted.
    fn discharge<W: ArenaIndex>(
        &mut self,
        g: &mut FlowGraph<W>,
        v: VertexId,
        s: VertexId,
        t: VertexId,
    ) {
        let n = g.num_vertices() as u32;
        // Topology is frozen during a solve, so the CSR bounds of `v` are
        // loaded once; the loop then walks `adj_list` by absolute position
        // (`cur_arc` stays a relative offset so relabels still reset it
        // to 0). `v`'s own excess, height, and arc cursor live in locals
        // across the loop: a push never targets `v` itself (admissibility
        // requires `height[v] == height[w] + 1`), and `relabel` — the one
        // call that can move them (`apply_gap` may lift `v` again) — is
        // followed by a reload.
        let (lo, hi) = g.adj_bounds(v);
        let mut ev = self.excess[v];
        let mut hv = self.height[v];
        let mut cur = self.cur_arc[v];
        while ev > 0 {
            let pos = lo + cur;
            if pos >= hi {
                // Arc list exhausted: relabel.
                if !self.relabel(g, v, n) {
                    break; // no residual edges at all: stranded (cannot happen
                           // for vertices with excess, but stay safe)
                }
                hv = self.height[v];
                cur = self.cur_arc[v];
                if hv > 2 * n {
                    break;
                }
                continue;
            }
            g.prefetch_adj(pos, hi);
            let e = g.adj_slot(pos);
            self.work += 1;
            let w = g.target_fast(e);
            if g.residual_fast(e) > 0 && hv == self.height[w] + 1 {
                let delta = ev.min(g.residual_fast(e));
                g.push_fast(e, delta);
                ev -= delta;
                self.excess[w] += delta;
                self.stats.pushes += 1;
                if w != s && w != t && !self.in_queue[w] {
                    self.queue.push_back(w as u32);
                    self.in_queue[w] = true;
                }
            } else {
                cur += 1;
            }
        }
        self.excess[v] = ev;
        self.cur_arc[v] = cur;
    }

    /// Relabels `v` to one more than the minimum height of its residual
    /// neighbours. Returns false if `v` has no residual out-edges.
    fn relabel<W: ArenaIndex>(&mut self, g: &FlowGraph<W>, v: VertexId, n: u32) -> bool {
        let mut min_h = u32::MAX;
        let (lo, hi) = g.adj_bounds(v);
        // The whole arc list is scanned unconditionally, so the work
        // counter can be bulk-charged up front (only the total is ever
        // compared against the relabel threshold).
        self.work += (hi - lo) as u64;
        for pos in lo..hi {
            g.prefetch_adj(pos, hi);
            let e = g.adj_slot(pos);
            if g.residual_fast(e) > 0 {
                min_h = min_h.min(self.height[g.target_fast(e)]);
            }
        }
        if min_h == u32::MAX {
            return false;
        }
        let old = self.height[v];
        let new = min_h + 1;
        self.stats.relabels += 1;
        self.height[v] = new;
        self.cur_arc[v] = 0;
        // Gap heuristic bookkeeping.
        self.height_count[old as usize] -= 1;
        if (new as usize) < self.height_count.len() {
            self.height_count[new as usize] += 1;
        }
        if self.enable_gap && self.height_count[old as usize] == 0 && old < n {
            self.apply_gap(old, n);
        }
        true
    }

    /// Gap heuristic: no vertex remains at height `gap` (< n), so every
    /// vertex with height in `(gap, n)` can never reach the sink again and
    /// is lifted to `n + 1` so its excess drains back to the source.
    fn apply_gap(&mut self, gap: u32, n: u32) {
        self.stats.gaps += 1;
        for v in 0..self.height.len() {
            let h = self.height[v];
            if h > gap && h < n {
                self.height_count[h as usize] -= 1;
                self.height[v] = n + 1;
                self.height_count[(n + 1) as usize] += 1;
                self.cur_arc[v] = 0;
            }
        }
    }

    /// Global relabeling ("exact height") heuristic: reverse BFS from the
    /// sink assigns each vertex its exact residual distance to `t`; vertices
    /// that cannot reach `t` get `n +` their residual distance to `s`
    /// (so their excess flows back to the source). Unreachable-from-both
    /// vertices get height `2n` (they carry no excess by flow conservation).
    fn global_relabel<W: ArenaIndex>(&mut self, g: &FlowGraph<W>, s: VertexId, t: VertexId) {
        self.stats.global_relabels += 1;
        let n = g.num_vertices();
        const UNSEEN: u32 = u32::MAX;
        self.height.iter_mut().for_each(|h| *h = UNSEEN);

        // Reverse BFS from t: vertex u is at distance d+1 from t if some
        // residual edge (u, w) exists with w at distance d. Out-slot `e` of
        // w pointing at u corresponds to edge `e ^ 1` from u to w.
        self.bfs_queue.clear();
        self.height[t] = 0;
        self.bfs_queue.push(t as u32);
        let mut head = 0;
        while head < self.bfs_queue.len() {
            let w = self.bfs_queue[head] as usize;
            head += 1;
            let dw = self.height[w];
            let (lo, hi) = g.adj_bounds(w);
            for pos in lo..hi {
                g.prefetch_adj(pos, hi);
                let e = g.adj_slot(pos);
                let u = g.target_fast(e);
                if self.height[u] == UNSEEN && g.residual_fast(e ^ 1) > 0 && u != s {
                    self.height[u] = dw + 1;
                    self.bfs_queue.push(u as u32);
                }
            }
        }
        // Reverse BFS from s for the rest.
        let base = n as u32;
        self.bfs_queue.clear();
        let s_seen = self.height[s] != UNSEEN; // s is excluded above, so no
        debug_assert!(!s_seen);
        self.height[s] = base;
        self.bfs_queue.push(s as u32);
        head = 0;
        while head < self.bfs_queue.len() {
            let w = self.bfs_queue[head] as usize;
            head += 1;
            let dw = self.height[w];
            let (lo, hi) = g.adj_bounds(w);
            for pos in lo..hi {
                g.prefetch_adj(pos, hi);
                let e = g.adj_slot(pos);
                let u = g.target_fast(e);
                if self.height[u] == UNSEEN && g.residual_fast(e ^ 1) > 0 {
                    self.height[u] = dw + 1;
                    self.bfs_queue.push(u as u32);
                }
            }
        }
        for h in self.height.iter_mut() {
            if *h == UNSEEN {
                *h = 2 * base;
            }
        }
        // Rebuild gap counters and reset current arcs.
        self.height_count.iter_mut().for_each(|c| *c = 0);
        for v in 0..n {
            let h = self.height[v] as usize;
            if h < self.height_count.len() {
                self.height_count[h] += 1;
            }
        }
        self.cur_arc.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;

    fn clrs() -> (FlowGraph, VertexId, VertexId) {
        let mut g: FlowGraph = FlowGraph::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 4, 14);
        g.add_edge(3, 2, 9);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 3, 7);
        g.add_edge(4, 5, 4);
        (g, 0, 5)
    }

    #[test]
    fn clrs_max_flow() {
        let (mut g, s, t) = clrs();
        assert_eq!(PushRelabel::new().max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn clrs_max_flow_plain() {
        let (mut g, s, t) = clrs();
        assert_eq!(PushRelabel::plain().max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn excess_zero_everywhere_but_endpoints() {
        let (mut g, s, t) = clrs();
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, s, t);
        for v in 0..g.num_vertices() {
            if v != s && v != t {
                assert_eq!(pr.excess(v), 0, "vertex {v} retained excess");
            }
        }
        assert_eq!(pr.excess(t), 23);
    }

    #[test]
    fn final_flow_is_valid() {
        let (mut g, s, t) = clrs();
        PushRelabel::new().max_flow(&mut g, s, t);
        crate::validate::assert_valid_flow(&g, s, t);
    }

    #[test]
    fn resume_after_capacity_increase_conserves_flow() {
        // Bottleneck network: raising the bottleneck lets resume() extend
        // the previous flow without recomputing it from zero.
        let mut g: FlowGraph = FlowGraph::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 10);
        let bottleneck = g.add_edge(a, b, 3);
        g.add_edge(b, t, 10);
        let _ = a;
        let mut pr = PushRelabel::new();
        assert_eq!(pr.max_flow(&mut g, s, t), 3);
        g.set_cap(bottleneck, 7);
        assert_eq!(pr.resume(&mut g, s, t), 7);
        crate::validate::assert_valid_flow(&g, s, t);
    }

    #[test]
    fn resume_accumulates_sink_excess() {
        let mut g: FlowGraph = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 100);
        let mut pr = PushRelabel::new();
        assert_eq!(pr.max_flow(&mut g, 0, 2), 1);
        for want in 2..20 {
            g.set_cap(e0, want);
            assert_eq!(pr.resume(&mut g, 0, 2), want);
        }
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(42);
        for case in 0..80 {
            let n = rng.gen_range(4..24);
            let m = rng.gen_range(n..5 * n);
            let mut g: FlowGraph = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..25));
                }
            }
            let mut g2 = g.clone();
            let want = dinic::max_flow(&mut g2, 0, n - 1);
            let got = PushRelabel::new().max_flow(&mut g, 0, n - 1);
            assert_eq!(got, want, "case {case}");
            crate::validate::assert_valid_flow(&g, 0, n - 1);
        }
    }

    #[test]
    fn plain_agrees_with_heuristic_version() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(13);
        for _ in 0..30 {
            let n = rng.gen_range(4..16);
            let m = rng.gen_range(n..4 * n);
            let mut g: FlowGraph = FlowGraph::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.gen_range(0..10));
                }
            }
            let mut g2 = g.clone();
            let a = PushRelabel::new().max_flow(&mut g, 0, n - 1);
            let b = PushRelabel::plain().max_flow(&mut g2, 0, n - 1);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn incremental_capacity_ramp_matches_from_scratch() {
        // Simulates the integrated usage: capacities on sink edges grow one
        // by one and resume() must always match a from-scratch solve.
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(99);
        let n = 12;
        let mut g: FlowGraph = FlowGraph::new(n);
        let mut sink_edges = Vec::new();
        for v in 1..n - 1 {
            g.add_edge(0, v, rng.gen_range(1..4));
            sink_edges.push(g.add_edge(v, n - 1, 0));
        }
        for _ in 0..20 {
            let u = rng.gen_range(1..n - 1);
            let v = rng.gen_range(1..n - 1);
            if u != v {
                g.add_edge(u, v, rng.gen_range(0..3));
            }
        }
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, 0, n - 1);
        for round in 0..15 {
            let e = sink_edges[rng.gen_range(0..sink_edges.len())];
            g.set_cap(e, g.cap(e) + 1);
            let got = pr.resume(&mut g, 0, n - 1);
            let mut fresh = g.clone();
            let want = dinic::max_flow(&mut fresh, 0, n - 1);
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let (mut g, s, t) = clrs();
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, s, t);
        assert!(pr.stats.pushes > 0);
    }

    #[test]
    fn single_edge_graph() {
        let mut g: FlowGraph = FlowGraph::new(2);
        g.add_edge(0, 1, 5);
        assert_eq!(PushRelabel::new().max_flow(&mut g, 0, 1), 5);
    }

    #[test]
    fn no_path_to_sink() {
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(PushRelabel::new().max_flow(&mut g, 0, 3), 0);
    }
}
