//! The incremental max-flow interface shared by the sequential and parallel
//! push-relabel solvers.
//!
//! The paper's integrated retrieval algorithms (Algorithms 5 and 6) are
//! drivers around a max-flow engine that can **conserve flow between runs**
//! while edge capacities grow. This trait captures exactly the operations
//! those drivers need, so the drivers in `rds-core` are generic over the
//! engine and the sequential/parallel variants share one implementation.

use crate::graph::{FlowGraph, VertexId};

/// A max-flow engine whose state (excesses, and the flow stored in the
/// graph) survives between runs.
pub trait IncrementalMaxFlow {
    /// Computes a maximum flow from scratch (zeroing any existing flow).
    /// Returns the flow value.
    fn max_flow(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64;

    /// Re-runs the engine **conserving** the flow currently in `g` and the
    /// engine's accumulated excesses. Callers must only have *increased*
    /// capacities since the previous run (or restored a compatible flow
    /// snapshot). Returns the new flow value.
    fn resume(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64;

    /// Accumulated excess at `v`; `excess(t)` is the current flow value.
    fn excess(&self, v: VertexId) -> i64;

    /// Overrides the excess at `v` (used when restoring flow snapshots).
    fn set_excess(&mut self, v: VertexId, x: i64);

    /// Snapshot of the excesses of vertices `0..n`, paired with
    /// `FlowGraph::store_flows` by drivers that roll state back
    /// (`StoreFlows`/`RestoreFlows` of the paper's Algorithm 6). Engines
    /// that leave excess trapped at stranded vertices (the parallel
    /// phase-1 engine) rely on the full vector being restored, not just
    /// the sink's entry.
    fn excess_snapshot(&self, n: usize) -> Vec<i64> {
        (0..n).map(|v| self.excess(v)).collect()
    }

    /// Writes the excesses of vertices `0..n` into `buf`, reusing its
    /// allocation — the allocation-free counterpart of
    /// [`IncrementalMaxFlow::excess_snapshot`] for drivers that snapshot
    /// on every failed probe.
    fn excess_snapshot_into(&self, n: usize, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend((0..n).map(|v| self.excess(v)));
    }

    /// Restores a snapshot taken with
    /// [`IncrementalMaxFlow::excess_snapshot`].
    fn restore_excess(&mut self, snap: &[i64]) {
        for (v, &x) in snap.iter().enumerate() {
            self.set_excess(v, x);
        }
    }

    /// Cumulative `(pushes, relabels)` performed by this engine since
    /// construction. Monotonically non-decreasing across runs, so drivers
    /// attribute work to a phase by differencing before/after. Engines
    /// without operation counters return `(0, 0)`.
    fn op_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Zeroes the excesses of vertices `0..n`, preparing a reused engine
    /// for an unrelated problem that starts from a zero-flow graph via
    /// [`IncrementalMaxFlow::resume`]. Without this, excess left at the
    /// sink by the previous solve would be double-counted.
    fn reset_excess(&mut self, n: usize) {
        for v in 0..n {
            self.set_excess(v, 0);
        }
    }
}

impl IncrementalMaxFlow for crate::push_relabel::PushRelabel {
    fn max_flow(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::max_flow(self, g, s, t)
    }

    fn resume(&mut self, g: &mut FlowGraph, s: VertexId, t: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::resume(self, g, s, t)
    }

    fn excess(&self, v: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::excess(self, v)
    }

    fn set_excess(&mut self, v: VertexId, x: i64) {
        crate::push_relabel::PushRelabel::set_excess(self, v, x)
    }

    fn op_counts(&self) -> (u64, u64) {
        (self.stats.pushes, self.stats.relabels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelPushRelabel;
    use crate::push_relabel::PushRelabel;

    fn generic_roundtrip<E: IncrementalMaxFlow>(mut engine: E) {
        let mut g = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 10);
        assert_eq!(engine.max_flow(&mut g, 0, 2), 2);
        assert_eq!(engine.excess(2), 2);
        g.set_cap(e0, 5);
        assert_eq!(engine.resume(&mut g, 0, 2), 5);
        let mut buf = Vec::new();
        engine.excess_snapshot_into(3, &mut buf);
        assert_eq!(buf, engine.excess_snapshot(3));
        engine.set_excess(2, 0);
        assert_eq!(engine.excess(2), 0);
        // A reset engine solves a fresh zero-flow problem via resume as if
        // it were new.
        engine.reset_excess(3);
        g.zero_flows();
        assert_eq!(engine.resume(&mut g, 0, 2), 5);
    }

    #[test]
    fn sequential_implements_trait() {
        generic_roundtrip(PushRelabel::new());
    }

    #[test]
    fn parallel_implements_trait() {
        generic_roundtrip(ParallelPushRelabel::new(2));
    }
}
