//! The incremental max-flow interface shared by the sequential and parallel
//! push-relabel solvers.
//!
//! The paper's integrated retrieval algorithms (Algorithms 5 and 6) are
//! drivers around a max-flow engine that can **conserve flow between runs**
//! while edge capacities grow. This trait captures exactly the operations
//! those drivers need, so the drivers in `rds-core` are generic over the
//! engine and the sequential/parallel variants share one implementation.

use crate::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};

/// A max-flow engine whose state (excesses, and the flow stored in the
/// graph) survives between runs.
///
/// Generic over the arena width `W` so one engine type serves both the
/// compact and the wide layout; excesses stay `i64` regardless (they are
/// sums over edge flows and belong to the engine, not the arena).
pub trait IncrementalMaxFlow<W: ArenaIndex = i64> {
    /// Computes a maximum flow from scratch (zeroing any existing flow).
    /// Returns the flow value.
    fn max_flow(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64;

    /// Re-runs the engine **conserving** the flow currently in `g` and the
    /// engine's accumulated excesses. Callers must only have *increased*
    /// capacities since the previous run (or restored a compatible flow
    /// snapshot). Returns the new flow value.
    fn resume(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64;

    /// Accumulated excess at `v`; `excess(t)` is the current flow value.
    fn excess(&self, v: VertexId) -> i64;

    /// Overrides the excess at `v` (used when restoring flow snapshots).
    fn set_excess(&mut self, v: VertexId, x: i64);

    /// Snapshot of the excesses of vertices `0..n`, paired with
    /// `FlowGraph::store_flows` by drivers that roll state back
    /// (`StoreFlows`/`RestoreFlows` of the paper's Algorithm 6). Engines
    /// that leave excess trapped at stranded vertices (the parallel
    /// phase-1 engine) rely on the full vector being restored, not just
    /// the sink's entry.
    fn excess_snapshot(&self, n: usize) -> Vec<i64> {
        (0..n).map(|v| self.excess(v)).collect()
    }

    /// Writes the excesses of vertices `0..n` into `buf`, reusing its
    /// allocation — the allocation-free counterpart of
    /// [`IncrementalMaxFlow::excess_snapshot`] for drivers that snapshot
    /// on every failed probe.
    fn excess_snapshot_into(&self, n: usize, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend((0..n).map(|v| self.excess(v)));
    }

    /// Restores a snapshot taken with
    /// [`IncrementalMaxFlow::excess_snapshot`].
    fn restore_excess(&mut self, snap: &[i64]) {
        for (v, &x) in snap.iter().enumerate() {
            self.set_excess(v, x);
        }
    }

    /// Cumulative `(pushes, relabels)` performed by this engine since
    /// construction. Monotonically non-decreasing across runs, so drivers
    /// attribute work to a phase by differencing before/after. Engines
    /// without operation counters return `(0, 0)`.
    fn op_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Zeroes the excesses of vertices `0..n`, preparing a reused engine
    /// for an unrelated problem that starts from a zero-flow graph via
    /// [`IncrementalMaxFlow::resume`]. Without this, excess left at the
    /// sink by the previous solve would be double-counted.
    fn reset_excess(&mut self, n: usize) {
        for v in 0..n {
            self.set_excess(v, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Residual-network surgery
//
// Delta drivers patch a warm graph from one problem instance to the next
// instead of rebuilding it. The primitives below keep the (flow, excess)
// pair a valid preflow at every step, so a subsequent
// [`IncrementalMaxFlow::resume`] — which re-queues every vertex holding
// excess — legally redistributes whatever the surgery displaced.
// ---------------------------------------------------------------------------

/// Appends a forward arc `u -> v` with the given capacity. Topology is
/// append-only, so "adding a node" to a warm network means attaching fresh
/// arcs to an existing vertex slot; the counterpart of removal is
/// cap-zeroing (see [`cancel_path`] + [`FlowGraph::set_cap`]).
pub fn attach_arc<W: ArenaIndex>(
    g: &mut FlowGraph<W>,
    u: VertexId,
    v: VertexId,
    cap: i64,
) -> EdgeId {
    g.add_edge(u, v, cap)
}

/// Retargets `e`'s capacity to `new_cap` (up or down) while a flow is
/// loaded. If the current flow exceeds the new capacity, the overflow is
/// cancelled off the edge and left as excess on the edge's source vertex —
/// a valid preflow for the next `resume`, which drains it forward or back
/// to the source. Returns the amount drained.
pub fn retarget_capacity<W: ArenaIndex, E: IncrementalMaxFlow<W> + ?Sized>(
    engine: &mut E,
    g: &mut FlowGraph<W>,
    e: EdgeId,
    new_cap: i64,
) -> i64 {
    let drained = (g.flow(e) - new_cap).max(0);
    if drained > 0 {
        let u = g.target(e ^ 1);
        let v = g.target(e);
        g.push(e ^ 1, drained);
        engine.set_excess(u, engine.excess(u) + drained);
        engine.set_excess(v, engine.excess(v) - drained);
    }
    g.set_cap(e, new_cap);
    drained
}

/// Cancels `delta` units of flow along a chain of consecutive forward
/// edges (each edge's target is the next edge's source). Interior vertices
/// lose one inflow and one outflow, so only the chain's endpoints change
/// excess: the first vertex gains `delta`, the last loses `delta`. For a
/// full source→sink chain this is exactly "send the unit back to the
/// source": the sink's excess (the flow value) drops by `delta`.
pub fn cancel_path<W: ArenaIndex, E: IncrementalMaxFlow<W> + ?Sized>(
    engine: &mut E,
    g: &mut FlowGraph<W>,
    path: &[EdgeId],
    delta: i64,
) {
    if delta <= 0 || path.is_empty() {
        return;
    }
    for &e in path {
        debug_assert!(g.flow(e) >= delta, "cancel_path exceeds flow on edge {e}");
        g.push(e ^ 1, delta);
    }
    let first = g.target(path[0] ^ 1);
    let last = g.target(path[path.len() - 1]);
    engine.set_excess(first, engine.excess(first) + delta);
    engine.set_excess(last, engine.excess(last) - delta);
}

/// Detaches vertex `v` from a loaded network: every unit of flow routed
/// through `v` is cancelled back along its own path to `s` and forward to
/// `t`, then the capacities of `v`'s forward out-arcs are zeroed so no new
/// flow can route through it. Returns `(units cancelled, arcs zeroed)`.
///
/// Requires the loaded flow to be acyclic (true for layered retrieval
/// networks); path discovery follows flow-carrying arcs greedily.
pub fn detach_vertex<W: ArenaIndex, E: IncrementalMaxFlow<W> + ?Sized>(
    engine: &mut E,
    g: &mut FlowGraph<W>,
    v: VertexId,
    s: VertexId,
    t: VertexId,
) -> (i64, usize) {
    g.finalize();
    let mut cancelled = 0;
    // Cancel throughput one unit-path at a time. Each iteration strictly
    // reduces the flow mass through `v`, so this terminates.
    while let Some(first) = flow_arc_out(g, v) {
        let mut path = vec![first];
        // Forward to t.
        let mut u = g.target(first);
        while u != t {
            let e = flow_arc_out(g, u).expect("flow conservation: interior vertex must forward");
            path.push(e);
            u = g.target(e);
        }
        // Backward to s. `flow_arc_in` returns the odd reverse slot; its
        // pair `e ^ 1` is the inbound forward edge and the odd slot's own
        // target is the feeding vertex.
        let mut u = v;
        while u != s {
            let e = flow_arc_in(g, u).expect("flow conservation: interior vertex must be fed");
            path.insert(0, e ^ 1);
            u = g.target(e);
        }
        let delta = path.iter().map(|&e| g.flow(e)).min().unwrap_or(0).max(1);
        cancel_path(engine, g, &path, delta);
        cancelled += delta;
    }
    let mut zeroed = 0;
    for idx in 0..g.out_edges(v).len() {
        let e = g.out_edges(v)[idx] as EdgeId;
        if e.is_multiple_of(2) && g.cap(e) > 0 {
            g.set_cap(e, 0);
            zeroed += 1;
        }
    }
    (cancelled, zeroed)
}

fn flow_arc_out<W: ArenaIndex>(g: &FlowGraph<W>, v: VertexId) -> Option<EdgeId> {
    g.out_edges(v)
        .iter()
        .map(|&e| e as EdgeId)
        .find(|&e| e % 2 == 0 && g.flow(e) > 0)
}

fn flow_arc_in<W: ArenaIndex>(g: &FlowGraph<W>, v: VertexId) -> Option<EdgeId> {
    // An odd slot out of `v` with positive flow on its pair is an inbound
    // forward edge currently feeding `v`.
    g.out_edges(v)
        .iter()
        .map(|&e| e as EdgeId)
        .find(|&e| e % 2 == 1 && g.flow(e ^ 1) > 0)
}

impl<W: ArenaIndex> IncrementalMaxFlow<W> for crate::push_relabel::PushRelabel {
    fn max_flow(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::max_flow(self, g, s, t)
    }

    fn resume(&mut self, g: &mut FlowGraph<W>, s: VertexId, t: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::resume(self, g, s, t)
    }

    fn excess(&self, v: VertexId) -> i64 {
        crate::push_relabel::PushRelabel::excess(self, v)
    }

    fn set_excess(&mut self, v: VertexId, x: i64) {
        crate::push_relabel::PushRelabel::set_excess(self, v, x)
    }

    fn op_counts(&self) -> (u64, u64) {
        (self.stats.pushes, self.stats.relabels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelPushRelabel;
    use crate::push_relabel::PushRelabel;

    fn generic_roundtrip<E: IncrementalMaxFlow>(mut engine: E) {
        let mut g: FlowGraph = FlowGraph::new(3);
        let e0 = g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 10);
        assert_eq!(engine.max_flow(&mut g, 0, 2), 2);
        assert_eq!(engine.excess(2), 2);
        g.set_cap(e0, 5);
        assert_eq!(engine.resume(&mut g, 0, 2), 5);
        let mut buf = Vec::new();
        engine.excess_snapshot_into(3, &mut buf);
        assert_eq!(buf, engine.excess_snapshot(3));
        engine.set_excess(2, 0);
        assert_eq!(engine.excess(2), 0);
        // A reset engine solves a fresh zero-flow problem via resume as if
        // it were new.
        engine.reset_excess(3);
        g.zero_flows();
        assert_eq!(engine.resume(&mut g, 0, 2), 5);
    }

    #[test]
    fn sequential_implements_trait() {
        generic_roundtrip(PushRelabel::new());
    }

    #[test]
    fn parallel_implements_trait() {
        generic_roundtrip(ParallelPushRelabel::new(2));
    }

    /// A small layered network shaped like a retrieval instance:
    /// s -> {1,2} -> {3,4} -> t, unit arcs on the first two layers and
    /// adjustable sink-side capacities.
    fn layered() -> (FlowGraph, Vec<EdgeId>, Vec<EdgeId>) {
        let mut g: FlowGraph = FlowGraph::new(6);
        let src = vec![g.add_edge(0, 1, 1), g.add_edge(0, 2, 1)];
        g.add_edge(1, 3, 1);
        g.add_edge(1, 4, 1);
        g.add_edge(2, 4, 1);
        let sink = vec![g.add_edge(3, 5, 2), g.add_edge(4, 5, 2)];
        (g, src, sink)
    }

    fn surgery_retarget_resolves_overflow<E: IncrementalMaxFlow>(mut engine: E) {
        let (mut g, _src, sink) = layered();
        assert_eq!(engine.max_flow(&mut g, 0, 5), 2);
        // Both units could be on disk 4; force them apart by capping it.
        let drained = super::retarget_capacity(&mut engine, &mut g, sink[1], 1);
        assert!(drained <= 1);
        assert_eq!(engine.resume(&mut g, 0, 5), 2, "still feasible at cap 1");
        assert!(g.flow(sink[0]) <= 2 && g.flow(sink[1]) <= 1);
        // Cap below total supply: one unit must return to the source.
        super::retarget_capacity(&mut engine, &mut g, sink[0], 0);
        super::retarget_capacity(&mut engine, &mut g, sink[1], 1);
        assert_eq!(engine.resume(&mut g, 0, 5), 1);
        crate::validate::assert_valid_flow(&g, 0, 5);
    }

    #[test]
    fn retarget_capacity_sequential() {
        surgery_retarget_resolves_overflow(PushRelabel::new());
    }

    #[test]
    fn retarget_capacity_parallel() {
        surgery_retarget_resolves_overflow(ParallelPushRelabel::new(2));
    }

    fn surgery_detach_matches_fresh<E: IncrementalMaxFlow>(mut engine: E) {
        let (mut g, src, _sink) = layered();
        assert_eq!(engine.max_flow(&mut g, 0, 5), 2);
        // Remove "bucket" 1 (and its supply arc): only bucket 2 remains.
        let (cancelled, zeroed) = super::detach_vertex(&mut engine, &mut g, 1, 0, 5);
        assert_eq!(cancelled, 1);
        assert_eq!(zeroed, 2);
        g.set_cap(src[0], 0);
        assert_eq!(engine.excess(5), 1, "sink excess tracks the cancelled unit");
        assert_eq!(engine.resume(&mut g, 0, 5), 1);
        crate::validate::assert_valid_flow(&g, 0, 5);
        assert_eq!(g.flow(src[0]), 0);
    }

    #[test]
    fn detach_vertex_sequential() {
        surgery_detach_matches_fresh(PushRelabel::new());
    }

    #[test]
    fn detach_vertex_parallel() {
        surgery_detach_matches_fresh(ParallelPushRelabel::new(2));
    }

    #[test]
    fn cancel_path_moves_excess_to_endpoints() {
        let mut engine = PushRelabel::new();
        let mut g: FlowGraph = FlowGraph::new(4);
        let a = g.add_edge(0, 1, 3);
        let b = g.add_edge(1, 2, 3);
        let c = g.add_edge(2, 3, 3);
        assert_eq!(engine.max_flow(&mut g, 0, 3), 3);
        super::cancel_path(&mut engine, &mut g, &[a, b, c], 2);
        assert_eq!(g.flow(b), 1);
        assert_eq!(engine.excess(3), 1);
        assert_eq!(engine.excess(1), 0);
        assert_eq!(engine.excess(2), 0);
        // The cancelled capacity is still there: resume re-routes it.
        assert_eq!(engine.resume(&mut g, 0, 3), 3);
    }

    #[test]
    fn attach_arc_extends_a_warm_network() {
        let mut engine = PushRelabel::new();
        let mut g: FlowGraph = FlowGraph::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 3, 1);
        assert_eq!(engine.max_flow(&mut g, 0, 3), 1);
        // New replica arc through vertex 2.
        super::attach_arc(&mut g, 1, 2, 1);
        super::attach_arc(&mut g, 2, 3, 1);
        assert_eq!(engine.resume(&mut g, 0, 3), 2);
    }
}
