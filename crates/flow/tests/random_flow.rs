//! Randomized cross-validation over flow networks: every engine computes
//! the same maximum flow, final flows are valid, decompositions account
//! for the full value, and resume-after-capacity-increase matches a fresh
//! solve. Deterministic: all instances are drawn from a seeded SplitMix64.

use rds_flow::decompose::{decompose, path_value};
use rds_flow::dinic;
use rds_flow::ford_fulkerson::{edmonds_karp, ford_fulkerson};
use rds_flow::graph::FlowGraph;
use rds_flow::highest_label::HighestLabelPushRelabel;
use rds_flow::parallel::ParallelPushRelabel;
use rds_flow::push_relabel::PushRelabel;
use rds_flow::validate::validate_flow;
use rds_util::SplitMix64;

/// A random directed graph described by a seedable edge list.
#[derive(Clone, Debug)]
struct RandomNet {
    n: usize,
    edges: Vec<(usize, usize, i64)>,
}

fn random_net(rng: &mut SplitMix64) -> RandomNet {
    let n = rng.gen_range(3..16usize);
    let m = rng.gen_range(1..60usize);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0..30i64),
            )
        })
        .filter(|&(u, v, _)| u != v)
        .collect();
    RandomNet { n, edges }
}

fn build(net: &RandomNet) -> FlowGraph {
    let mut g = FlowGraph::new(net.n);
    for &(u, v, c) in &net.edges {
        g.add_edge(u, v, c);
    }
    g
}

/// All five sequential engines and the parallel engine agree.
#[test]
fn engines_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xF10);
    for _ in 0..48 {
        let net = random_net(&mut rng);
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let want = dinic::max_flow(&mut g, s, t);

        let mut g = build(&net);
        assert_eq!(ford_fulkerson(&mut g, s, t), want);
        assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        assert_eq!(edmonds_karp(&mut g, s, t), want);

        let mut g = build(&net);
        assert_eq!(PushRelabel::new().max_flow(&mut g, s, t), want);
        assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        assert_eq!(PushRelabel::plain().max_flow(&mut g, s, t), want);

        let mut g = build(&net);
        assert_eq!(HighestLabelPushRelabel::new().max_flow(&mut g, s, t), want);
        assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        assert_eq!(ParallelPushRelabel::new(2).max_flow(&mut g, s, t), want);
        assert_eq!(validate_flow(&g, s, t), Ok(()));
    }
}

/// Path decomposition accounts for exactly the flow value.
#[test]
fn decomposition_accounts_for_value() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC);
    for _ in 0..48 {
        let net = random_net(&mut rng);
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        let d = decompose(&g, s, t);
        assert_eq!(path_value(&d), value);
    }
}

/// Raising one capacity and resuming equals a fresh solve.
#[test]
fn resume_matches_fresh_after_increase() {
    let mut rng = SplitMix64::seed_from_u64(0x1AC);
    for _ in 0..48 {
        let net = random_net(&mut rng);
        if net.edges.is_empty() {
            continue;
        }
        let which = rng.gen_range(0..1000usize);
        let extra = rng.gen_range(1..10i64);
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, s, t);
        let e = 2 * (which % net.edges.len());
        g.set_cap(e, g.cap(e) + extra);
        let resumed = pr.resume(&mut g, s, t);

        let mut fresh = build(&net);
        fresh.set_cap(e, fresh.cap(e) + extra);
        let want = dinic::max_flow(&mut fresh, s, t);
        assert_eq!(resumed, want);
        assert_eq!(validate_flow(&g, s, t), Ok(()));
    }
}

/// Max flow equals min cut capacity over the sink-unreachable set
/// (weak duality check via the residual reachability of the final flow).
#[test]
fn max_flow_matches_residual_cut() {
    let mut rng = SplitMix64::seed_from_u64(0xC07);
    for _ in 0..48 {
        let net = random_net(&mut rng);
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        // Vertices reachable from s in the residual graph.
        let mut seen = vec![false; net.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &e in g.out_edges(v) {
                let e = e as usize;
                let w = g.target(e);
                if g.residual(e) > 0 && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        assert!(!seen[t], "sink reachable: flow not maximum");
        // Cut capacity across (seen, unseen) equals the flow value.
        let cut: i64 = g
            .forward_edges()
            .filter(|&e| seen[g.source(e)] && !seen[g.target(e)])
            .map(|e| g.cap(e))
            .sum();
        assert_eq!(cut, value);
        // And the min_cut module extracts the same cut.
        let mc = rds_flow::min_cut::min_cut(&g, s, t);
        assert_eq!(mc.capacity, value);
        assert_eq!(mc.source_side, seen);
        for &e in &mc.edges {
            assert_eq!(g.residual(e), 0, "cut edges must be saturated");
        }
    }
}
