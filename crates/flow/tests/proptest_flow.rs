//! Property-based tests over random flow networks: every engine computes
//! the same maximum flow, final flows are valid, decompositions account
//! for the full value, and resume-after-capacity-increase matches a fresh
//! solve.

use proptest::prelude::*;
use rds_flow::decompose::{decompose, path_value};
use rds_flow::dinic;
use rds_flow::ford_fulkerson::{edmonds_karp, ford_fulkerson};
use rds_flow::graph::FlowGraph;
use rds_flow::highest_label::HighestLabelPushRelabel;
use rds_flow::incremental::IncrementalMaxFlow;
use rds_flow::parallel::ParallelPushRelabel;
use rds_flow::push_relabel::PushRelabel;
use rds_flow::validate::validate_flow;

/// A random directed graph described by a seedable edge list.
#[derive(Clone, Debug)]
struct RandomNet {
    n: usize,
    edges: Vec<(usize, usize, i64)>,
}

fn arb_net() -> impl Strategy<Value = RandomNet> {
    (3usize..16).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0i64..30);
        proptest::collection::vec(edge, 1..60).prop_map(move |raw| RandomNet {
            n,
            edges: raw.into_iter().filter(|&(u, v, _)| u != v).collect(),
        })
    })
}

fn build(net: &RandomNet) -> FlowGraph {
    let mut g = FlowGraph::new(net.n);
    for &(u, v, c) in &net.edges {
        g.add_edge(u, v, c);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All five sequential engines and the parallel engine agree.
    #[test]
    fn engines_agree(net in arb_net()) {
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let want = dinic::max_flow(&mut g, s, t);

        let mut g = build(&net);
        prop_assert_eq!(ford_fulkerson(&mut g, s, t), want);
        prop_assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        prop_assert_eq!(edmonds_karp(&mut g, s, t), want);

        let mut g = build(&net);
        prop_assert_eq!(PushRelabel::new().max_flow(&mut g, s, t), want);
        prop_assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        prop_assert_eq!(PushRelabel::plain().max_flow(&mut g, s, t), want);

        let mut g = build(&net);
        prop_assert_eq!(HighestLabelPushRelabel::new().max_flow(&mut g, s, t), want);
        prop_assert_eq!(validate_flow(&g, s, t), Ok(()));

        let mut g = build(&net);
        prop_assert_eq!(ParallelPushRelabel::new(2).max_flow(&mut g, s, t), want);
        prop_assert_eq!(validate_flow(&g, s, t), Ok(()));
    }

    /// Path decomposition accounts for exactly the flow value.
    #[test]
    fn decomposition_accounts_for_value(net in arb_net()) {
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        let d = decompose(&g, s, t);
        prop_assert_eq!(path_value(&d), value);
    }

    /// Raising one capacity and resuming equals a fresh solve.
    #[test]
    fn resume_matches_fresh_after_increase(
        net in arb_net(),
        which in 0usize..1000,
        extra in 1i64..10,
    ) {
        if net.edges.is_empty() {
            return Ok(());
        }
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut g, s, t);
        let e = 2 * (which % net.edges.len());
        g.set_cap(e, g.cap(e) + extra);
        let resumed = pr.resume(&mut g, s, t);

        let mut fresh = build(&net);
        fresh.set_cap(e, fresh.cap(e) + extra);
        let want = dinic::max_flow(&mut fresh, s, t);
        prop_assert_eq!(resumed, want);
        prop_assert_eq!(validate_flow(&g, s, t), Ok(()));
    }

    /// Max flow equals min cut capacity over the sink-unreachable set
    /// (weak duality check via the residual reachability of the final
    /// flow).
    #[test]
    fn max_flow_matches_residual_cut(net in arb_net()) {
        let (s, t) = (0, net.n - 1);
        let mut g = build(&net);
        let value = PushRelabel::new().max_flow(&mut g, s, t);
        // Vertices reachable from s in the residual graph.
        let mut seen = vec![false; net.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &e in g.out_edges(v) {
                let e = e as usize;
                let w = g.target(e);
                if g.residual(e) > 0 && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        prop_assert!(!seen[t], "sink reachable: flow not maximum");
        // Cut capacity across (seen, unseen) equals the flow value.
        let cut: i64 = g
            .forward_edges()
            .filter(|&e| seen[g.source(e)] && !seen[g.target(e)])
            .map(|e| g.cap(e))
            .sum();
        prop_assert_eq!(cut, value);
        // And the min_cut module extracts the same cut.
        let mc = rds_flow::min_cut::min_cut(&g, s, t);
        prop_assert_eq!(mc.capacity, value);
        prop_assert_eq!(mc.source_side, seen);
        for &e in &mc.edges {
            prop_assert_eq!(g.residual(e), 0, "cut edges must be saturated");
        }
    }
}
