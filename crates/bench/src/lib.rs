//! # rds-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section (§VI).
//!
//! * [`harness`] — workload construction (experiment × scheme × query type
//!   × load) and solver timing.
//! * [`figures`] — one entry point per paper figure (5-10), each returning
//!   the same series the paper plots.
//! * [`report`] — plain-text rendering of series and tables.
//!
//! Binaries:
//!
//! * `figures` — regenerates figure data (`cargo run -p rds-bench --release
//!   --bin figures -- --fig 9`).
//! * `tables` — prints the paper's Tables I-IV and the allocation grids of
//!   Figure 2.
//!
//! Criterion benches (`cargo bench -p rds-bench`) cover the same
//! comparisons on fixed mid-size workloads.

pub mod figures;
pub mod harness;
pub mod report;
