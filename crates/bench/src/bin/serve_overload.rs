//! Online serving under load: sustained throughput and tail latency of
//! [`Engine::serve`] at 0.5x and 2x of the engine's measured solve
//! capacity, on the paper's Table II system.
//!
//! The capacity baseline comes from a batch run of the same query mix.
//! The low-load phase is a closed loop paced to half that rate — queue
//! depth never exceeds one, so *any* shedding there is a regression (the
//! CI gate asserts `shed_rate == 0`). The overload phase is an open loop
//! at twice the capacity against a small bounded queue: admission
//! control sheds the excess and the queue bound caps waiting, keeping
//! the tail flat (the CI gate asserts `p99 <= 5 * p50` turnaround).
//!
//! ```text
//! cargo run --release -p rds-bench --bin serve_overload -- [--queries 3000] [--shards 2]
//! ```
//!
//! Writes `results/serve_overload.txt` and `BENCH_serve_overload.json`.

use rds_core::engine::{BatchQuery, Engine};
use rds_core::obs::metrics::Histogram;
use rds_core::pr::PushRelabelBinary;
use rds_core::serve::{PriorityClass, QueryRequest, ServeConfig, ServeStats};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::time::Micros;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const STREAMS: usize = 8;

/// The serving query mix: sliding windows over the 7x7 grid, sized so a
/// solve does non-trivial work.
fn query_at(k: usize) -> Vec<Bucket> {
    let r = 2 + k % 3;
    let c = 2 + (k / 3) % 3;
    RangeQuery::new(k % (7 - r + 1), (k / 7) % (7 - c + 1), r, c).buckets(7)
}

fn request_at(k: usize) -> QueryRequest {
    let mut req = QueryRequest::new(k % STREAMS, query_at(k));
    if k.is_multiple_of(3) {
        req = req.class(PriorityClass::Batch);
    }
    req
}

/// Solve capacity in queries/sec: the same mix pushed through
/// `submit_batch`, no queueing in the way.
fn measure_capacity(
    system: &rds_storage::model::SystemConfig,
    alloc: &OrthogonalAllocation,
    shards: usize,
    queries: usize,
) -> f64 {
    let mut engine = Engine::new(system, alloc, PushRelabelBinary, shards);
    let batch: Vec<BatchQuery> = (0..queries)
        .map(|k| BatchQuery {
            stream: k % STREAMS,
            arrival: Micros::ZERO,
            buckets: query_at(k),
        })
        .collect();
    let started = Instant::now();
    let results = engine.submit_batch(&batch);
    let elapsed = started.elapsed();
    assert!(results.iter().all(Result::is_ok), "infeasible query in mix");
    queries as f64 / elapsed.as_secs_f64()
}

struct Phase {
    target_qps: f64,
    stats: ServeStats,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

fn turnaround_quantiles(stats: &ServeStats) -> (u64, u64, u64) {
    let mut all = Histogram::default();
    for class in PriorityClass::ALL {
        all.merge(&stats.classes[class as usize].turnaround_us);
    }
    (all.quantile(0.50), all.quantile(0.99), all.quantile(0.999))
}

/// Closed loop at `target_qps`: one request in flight, paced by absolute
/// deadlines — queue depth stays at most one, so rejections cannot
/// legitimately happen.
fn run_low(
    system: &rds_storage::model::SystemConfig,
    alloc: &OrthogonalAllocation,
    shards: usize,
    queries: usize,
    target_qps: f64,
) -> Phase {
    let mut engine = Engine::new(system, alloc, PushRelabelBinary, shards);
    let interarrival = Duration::from_secs_f64(1.0 / target_qps);
    let report = engine.serve(
        ServeConfig::default().queue_capacity(64).shed_watermark(32),
        |h| {
            let start = Instant::now();
            for k in 0..queries {
                let due = start + interarrival.mul_f64(k as f64);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                if h.submit(request_at(k)).is_ok() {
                    // Closed loop: wait for the response before pacing on.
                    h.recv();
                }
            }
        },
    );
    let (p50_us, p99_us, p999_us) = turnaround_quantiles(&report.stats);
    Phase {
        target_qps,
        stats: report.stats,
        p50_us,
        p99_us,
        p999_us,
    }
}

/// Open loop at `target_qps` against a small bounded queue: submissions
/// never wait for responses, so sustained overload exercises QueueFull
/// and batch-class shedding while the queue bound caps turnaround.
fn run_overload(
    system: &rds_storage::model::SystemConfig,
    alloc: &OrthogonalAllocation,
    shards: usize,
    queries: usize,
    target_qps: f64,
) -> Phase {
    let mut engine = Engine::new(system, alloc, PushRelabelBinary, shards);
    let interarrival = Duration::from_secs_f64(1.0 / target_qps);
    let report = engine.serve(
        ServeConfig::default().queue_capacity(32).shed_watermark(16),
        |h| {
            let start = Instant::now();
            for k in 0..queries {
                let due = start + interarrival.mul_f64(k as f64);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let _ = h.submit(request_at(k));
            }
        },
    );
    let (p50_us, p99_us, p999_us) = turnaround_quantiles(&report.stats);
    Phase {
        target_qps,
        stats: report.stats,
        p50_us,
        p99_us,
        p999_us,
    }
}

fn phase_json(p: &Phase) -> String {
    format!(
        "{{\n    \"target_qps\": {target:.1},\n    \"completed_qps\": {qps:.1},\n    \"submitted\": {submitted},\n    \"completed\": {completed},\n    \"rejected_queue_full\": {full},\n    \"rejected_shed\": {shed},\n    \"shed_rate\": {rate:.6},\n    \"max_queue_depth\": {depth},\n    \"p50_us\": {p50},\n    \"p99_us\": {p99},\n    \"p999_us\": {p999}\n  }}",
        target = p.target_qps,
        qps = p.stats.completed_per_sec(),
        submitted = p.stats.submitted,
        completed = p.stats.completed,
        full = p.stats.rejected_queue_full,
        shed = p.stats.rejected_shed,
        rate = p.stats.shed_rate(),
        depth = p.stats.max_queue_depth,
        p50 = p.p50_us,
        p99 = p.p99_us,
        p999 = p.p999_us,
    )
}

fn main() -> ExitCode {
    let mut queries = 3000usize;
    let mut shards = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--queries", Some(v)) => queries = (v as usize).max(16),
            ("--shards", Some(v)) => shards = (v as usize).max(1),
            _ => {
                eprintln!("usage: serve_overload [--queries K] [--shards S]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();

    let capacity = measure_capacity(&system, &alloc, shards, queries);
    // Cap the paced phases so the whole bench stays CI-sized regardless
    // of the machine's measured capacity.
    let low_count = queries.min((capacity * 0.5 * 4.0) as usize).max(64);
    let over_count = queries.min((capacity * 2.0 * 4.0) as usize).max(64);
    let low = run_low(&system, &alloc, shards, low_count, capacity * 0.5);
    let over = run_overload(&system, &alloc, shards, over_count, capacity * 2.0);

    let report = format!(
        "# serve_overload — paper Table II system, {shards} shards, {STREAMS} streams\n\
         #\n\
         # capacity: {queries} queries through submit_batch (no queueing).\n\
         # low:      closed loop at 0.5x capacity; queue depth <= 1, so any\n\
         #           shedding is a regression.\n\
         # overload: open loop at 2x capacity, queue_capacity 32, batch-class\n\
         #           shed watermark 16; the queue bound keeps the tail flat.\n\
         #\n\
         capacity_qps        {capacity:.0}\n\
         low_target_qps      {lt:.0}\n\
         low_completed_qps   {lq:.0}\n\
         low_shed_rate       {lr:.4}\n\
         low_p50_us          {lp50}\n\
         low_p99_us          {lp99}\n\
         over_target_qps     {ot:.0}\n\
         over_completed_qps  {oq:.0}\n\
         over_shed_rate      {or:.4}\n\
         over_p50_us         {op50}\n\
         over_p99_us         {op99}\n\
         over_p999_us        {op999}\n",
        lt = low.target_qps,
        lq = low.stats.completed_per_sec(),
        lr = low.stats.shed_rate(),
        lp50 = low.p50_us,
        lp99 = low.p99_us,
        ot = over.target_qps,
        oq = over.stats.completed_per_sec(),
        or = over.stats.shed_rate(),
        op50 = over.p50_us,
        op99 = over.p99_us,
        op999 = over.p999_us,
    );
    print!("{report}");

    let json = format!(
        "{{\n  \"bench\": \"serve_overload\",\n  \"queries\": {queries},\n  \"shards\": {shards},\n  \"streams\": {STREAMS},\n  \"capacity_qps\": {capacity:.1},\n  \"low\": {low_json},\n  \"overload\": {over_json}\n}}\n",
        low_json = phase_json(&low),
        over_json = phase_json(&over),
    );

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/serve_overload.txt", &report))
        .and_then(|()| std::fs::write("BENCH_serve_overload.json", &json));
    if let Err(e) = write {
        eprintln!("could not write serve_overload outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/serve_overload.txt and BENCH_serve_overload.json");
    ExitCode::SUCCESS
}
