//! Fused coalesced-batch drain versus independent steady-state solves:
//! what the epoch-shared topology plane + lane free list buy when a
//! serve window drains 8 same-epoch queries at once.
//!
//! Both sides run the identical workload on the paper's Table II system:
//! 8 streams, each sitting on one of a hot pair of overlapping 5x5
//! windows (25 buckets, the heaviest Table II rung) for 8 batches and
//! then hopping to the other, re-issued every batch as hot queries are
//! in steady state.
//!
//! * `independent`: 8 independent steady-state solves per batch — per
//!   query, clone the loaded system, rebuild the retrieval network and
//!   every arena buffer from scratch, solve cold (the cost the serve
//!   loop would pay if coalesced queries shared nothing).
//! * `fused`: `SolverSpec::batch_fuse(true)` + the recommended reuse
//!   preset, cache trimmed to one entry — the batch drains as one fused
//!   group set: per stream group, a capacity plane is checked out of
//!   the lane free list against the Arc-shared topology epoch (no
//!   rebuild, no re-finalize, no topology copy); steady-state re-issues
//!   replay the cached schedule, window hops delta-resume the previous
//!   flow on a freshly checked-out plane.
//!
//! Sampling is paired and interleaved (independent, fused, …) with the
//! fastest round per side kept, like `engine_speedup`. Per arena width,
//! the fused schedules must be bit-identical to the unfused warm drain
//! and the fused response times bit-identical to the independent side
//! (warm and cold may pick different, equally optimal schedules), and
//! the fused side's steady-state arena allocation events must stay flat
//! (the plane free list recycles, never grows).
//!
//! ```text
//! cargo run --release -p rds-bench --bin batch_fuse -- [--batches 200] [--repeat 5]
//! ```
//!
//! Writes `results/batch_fuse.txt` and `BENCH_batch_fuse.json`.

use rds_core::engine::{BatchQuery, Engine};
use rds_core::network::RetrievalInstance;
use rds_core::pr::PushRelabelBinary;
use rds_core::session::ReusePolicy;
use rds_core::solver::RetrievalSolver;
use rds_core::spec::{ArenaLayout, SolverKind, SolverSpec};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::model::{Disk, Site, SystemConfig};
use rds_storage::time::Micros;
use std::hash::{Hash, Hasher};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const STREAMS: usize = 8;
/// Warm-up batches before the timed region: one full hop cycle, so both
/// hot windows have solved once (lanes checked out, arenas at high
/// water, warm flows captured) before anything is timed.
const WARMUP: usize = 16;

/// Stream `s`'s hot pair: two overlapping 5x5 windows on the 7x7 grid,
/// one column apart. The stream sits on one window for 8 batches (the
/// steady state: hot queries re-issued as results expire) then hops to
/// the other — same query size, so the hop stays on the delta/patch
/// path rather than forcing a rebuild.
fn hot_pair(s: usize, round: usize) -> Vec<Bucket> {
    RangeQuery::new(s % 3, (round / 8) % 2, 5, 5).buckets(7)
}

/// The 8-query coalesced batch of one round: one hot query per stream,
/// all sharing an arrival (one serve-window drain). Rounds are spaced
/// far enough apart for every disk to drain, so all sides see identical
/// loads each round even where their (equally optimal) schedules placed
/// blocks on different replicas the round before.
fn round_batch(round: usize) -> Vec<BatchQuery> {
    (0..STREAMS)
        .map(|s| BatchQuery {
            stream: s,
            arrival: Micros::from_millis(500 * round as u64),
            buckets: hot_pair(s, round),
        })
        .collect()
}

/// Which configuration a pass runs.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    /// 8 independent steady-state solves per batch: per query, clone the
    /// loaded system, rebuild the network, solve in a fresh workspace.
    Independent,
    /// Reuse on, serial drain: the fused side's exact semantics, unfused.
    WarmSerial,
    /// Reuse on + `batch_fuse(true)`: the fused drain under test.
    Fused,
}

/// The nothing-shared loop: per query, clone the system into a loaded
/// copy, build a fresh instance, solve in a fresh workspace. One per
/// stream, mirroring the engine's per-stream load accounting.
struct IndependentStream<'a> {
    system: &'a SystemConfig,
    alloc: &'a OrthogonalAllocation,
    busy_until: Vec<Micros>,
}

impl<'a> IndependentStream<'a> {
    fn new(system: &'a SystemConfig, alloc: &'a OrthogonalAllocation) -> Self {
        IndependentStream {
            busy_until: vec![Micros::ZERO; system.num_disks()],
            system,
            alloc,
        }
    }

    /// Returns `(response_time, completion)` with the engine's exact
    /// semantics (`completion = arrival + response_time`).
    fn submit(&mut self, arrival: Micros, buckets: &[Bucket]) -> (Micros, Micros) {
        let disks: Vec<Disk> = self
            .system
            .disks()
            .iter()
            .enumerate()
            .map(|(j, d)| Disk {
                initial_load: d.initial_load + self.busy_until[j].saturating_sub(arrival),
                ..*d
            })
            .collect();
        let loaded = SystemConfig::new(vec![Site {
            name: "independent".to_string(),
            disks,
        }]);
        let inst = RetrievalInstance::build(&loaded, self.alloc, buckets);
        let outcome = PushRelabelBinary.solve(&inst).expect("feasible hot pair");
        let counts = outcome.schedule.per_disk_counts(loaded.num_disks());
        for (j, &k) in counts.iter().enumerate() {
            if k > 0 {
                let completion = arrival + loaded.disk(j).completion_time(k);
                self.busy_until[j] = self.busy_until[j].max(completion);
            }
        }
        (outcome.response_time, arrival + outcome.response_time)
    }
}

struct SideRun {
    /// Wall time of the timed batches.
    elapsed: Duration,
    /// Digest over every response time + completion in batch order —
    /// identical across all three sides (the optimum is the optimum).
    rt_digest: u64,
    /// Digest additionally covering every schedule assignment — the
    /// fused-vs-unfused bit-identity witness (warm and cold paths may
    /// pick different, equally optimal schedules).
    schedule_digest: u64,
    /// Arena allocation events across the timed region (0 = steady).
    allocs: u64,
    /// Fused drains observed (0 on the unfused sides).
    fused_batches: u64,
}

/// One measured pass: a fresh side runs `WARMUP + batches` rounds; only
/// the post-warm-up rounds are timed and digested.
fn run_side(
    system: &SystemConfig,
    alloc: &OrthogonalAllocation,
    layout: ArenaLayout,
    side: Side,
    batches: usize,
) -> SideRun {
    if side == Side::Independent {
        // Nothing shared, nothing warmed: every query pays the full
        // rebuild. The warm-up rounds still run so both sides digest the
        // same timed region.
        let mut streams: Vec<IndependentStream> = (0..STREAMS)
            .map(|_| IndependentStream::new(system, alloc))
            .collect();
        for round in 0..WARMUP {
            for q in round_batch(round) {
                streams[q.stream].submit(q.arrival, &q.buckets);
            }
        }
        let mut rt = std::collections::hash_map::DefaultHasher::new();
        let started = Instant::now();
        for round in WARMUP..WARMUP + batches {
            for q in round_batch(round) {
                let (response, completion) = streams[q.stream].submit(q.arrival, &q.buckets);
                response.hash(&mut rt);
                completion.hash(&mut rt);
            }
        }
        return SideRun {
            elapsed: started.elapsed(),
            rt_digest: rt.finish(),
            schedule_digest: 0,
            allocs: 0,
            fused_batches: 0,
        };
    }

    // The serving ladder both reuse sides run: warm start plus a
    // single-entry schedule cache — steady-state re-issues replay the
    // cached schedule, window hops miss and delta-resume on a plane.
    let mut spec = SolverSpec::new(SolverKind::PushRelabelBinary)
        .arena_layout(layout)
        .reuse(ReusePolicy {
            warm_start: true,
            cache_capacity: 1,
        });
    if side == Side::Fused {
        spec = spec.batch_fuse(true).parallelism(2);
    }
    let mut engine = Engine::builder(system, alloc).solver_spec(spec).build();
    for round in 0..WARMUP {
        let results = engine.submit_batch(&round_batch(round));
        assert!(
            results.iter().all(|r| r.is_ok()),
            "warm-up must be feasible"
        );
    }
    let before = engine.arena_allocation_events();
    let mut rt = std::collections::hash_map::DefaultHasher::new();
    let mut sched = std::collections::hash_map::DefaultHasher::new();
    let started = Instant::now();
    for round in WARMUP..WARMUP + batches {
        let results = engine.submit_batch(&round_batch(round));
        for r in results {
            let out = r.expect("feasible hot pair");
            out.outcome.response_time.hash(&mut rt);
            out.completion.hash(&mut rt);
            out.outcome.response_time.hash(&mut sched);
            for &(b, d) in out.outcome.schedule.assignments() {
                (b, d).hash(&mut sched);
            }
        }
    }
    let elapsed = started.elapsed();
    SideRun {
        elapsed,
        rt_digest: rt.finish(),
        schedule_digest: sched.finish(),
        allocs: engine.arena_allocation_events() - before,
        fused_batches: engine.stats().fused_batches,
    }
}

fn main() -> ExitCode {
    let mut batches = 200usize;
    let mut repeat = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--batches", Some(v)) => batches = (v as usize).max(1),
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            _ => {
                eprintln!("usage: batch_fuse [--batches K] [--repeat R]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();

    // Bit-identity gate, both arena widths: the fused drain must return
    // the exact schedules of the unfused warm drain, and the same
    // response times as the independent cold side (warm and cold may
    // pick different — equally optimal — schedules).
    let mut digest_match = [false; 2];
    for (i, layout) in [ArenaLayout::Wide, ArenaLayout::Compact]
        .into_iter()
        .enumerate()
    {
        let independent = run_side(&system, &alloc, layout, Side::Independent, 8);
        let warm = run_side(&system, &alloc, layout, Side::WarmSerial, 8);
        let fused = run_side(&system, &alloc, layout, Side::Fused, 8);
        assert_eq!(
            fused.schedule_digest, warm.schedule_digest,
            "{layout:?}: fused drain changed a schedule"
        );
        assert_eq!(
            fused.rt_digest, independent.rt_digest,
            "{layout:?}: fused drain changed a response time"
        );
        digest_match[i] = true;
    }

    // Paired interleaved rounds on the wide rung; fastest per side.
    let mut best_independent = Duration::MAX;
    let mut best_fused = Duration::MAX;
    let mut golden: Option<u64> = None;
    let mut plane_allocs = 0u64;
    for _ in 0..repeat {
        for side in [Side::Independent, Side::Fused] {
            let run = run_side(&system, &alloc, ArenaLayout::Wide, side, batches);
            match golden {
                None => golden = Some(run.rt_digest),
                Some(want) => assert_eq!(run.rt_digest, want, "round digest drifted"),
            }
            if side == Side::Fused {
                assert!(
                    run.fused_batches >= (WARMUP + batches) as u64,
                    "every coalesced batch must take the fused drain"
                );
                plane_allocs = plane_allocs.max(run.allocs);
                best_fused = best_fused.min(run.elapsed);
            } else {
                best_independent = best_independent.min(run.elapsed);
            }
        }
    }

    let queries = (STREAMS * batches) as f64;
    let independent_ms = best_independent.as_secs_f64() * 1e3;
    let fused_ms = best_fused.as_secs_f64() * 1e3;
    let speedup = best_independent.as_secs_f64() / best_fused.as_secs_f64();
    let report = format!(
        "# batch_fuse — {batches} coalesced batches of {STREAMS} hot-pair queries, paper Table II system (14 disks)\n\
         #\n\
         # independent: nothing shared — per query: clone the loaded system,\n\
         # rebuild the retrieval network and every arena buffer, solve cold.\n\
         # fused:       batch_fuse(true) + warm reuse — one fused drain per batch:\n\
         # capacity planes from the lane free list against the Arc-shared topology\n\
         # epoch (no rebuild, no re-finalize); steady-state re-issues replay the\n\
         # cached schedule, window hops delta-resume on a checked-out plane.\n\
         #\n\
         # best of {repeat} interleaved paired rounds per side; schedules digest-\n\
         # verified identical under both arena widths.\n\
         #\n\
         independent_ms          {independent_ms:.3}\n\
         fused_ms                {fused_ms:.3}\n\
         fused_speedup_8         {speedup:.2}x\n\
         fused_qps               {qps:.0}\n\
         steady_state_plane_allocs {plane_allocs}\n",
        qps = queries / best_fused.as_secs_f64(),
    );
    print!("{report}");

    let json = format!(
        "{{\n  \"bench\": \"batch_fuse\",\n  \"batch\": {STREAMS},\n  \"batches\": {batches},\n  \"repeat\": {repeat},\n  \"independent_ms\": {independent_ms:.3},\n  \"fused_ms\": {fused_ms:.3},\n  \"fused_speedup_8\": {speedup:.3},\n  \"fused_qps\": {qps:.1},\n  \"digest_match_wide\": {dw},\n  \"digest_match_compact\": {dc},\n  \"steady_state_plane_allocs\": {plane_allocs}\n}}\n",
        qps = queries / best_fused.as_secs_f64(),
        dw = digest_match[0],
        dc = digest_match[1],
    );

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/batch_fuse.txt", &report))
        .and_then(|()| std::fs::write("BENCH_batch_fuse.json", &json));
    if let Err(e) = write {
        eprintln!("could not write batch_fuse outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/batch_fuse.txt and BENCH_batch_fuse.json");
    ExitCode::SUCCESS
}
