//! Probe timelines for every solver on a Table-II-style workload.
//!
//! Replays a mix of the paper's range queries against the Table II system
//! (14 heterogeneous disks, two sites) with a trace recorder installed,
//! then reports per solver:
//!
//! * the probe timeline of one representative query — each feasibility
//!   probe's budget and verdict, showing how the integrated binary-scaling
//!   solvers converge in `O(log)` probes while the incremental solvers
//!   walk capacities upward without probing at all;
//! * aggregate trace-event counts reconciled over the whole workload;
//! * solve-latency quantiles from the `log2` metrics histograms;
//! * the wall-clock cost of tracing itself (recorder installed vs. the
//!   disabled tracer), backing the "<1% when off" overhead contract.
//!
//! ```text
//! cargo run --release -p rds-bench --bin probe_timeline -- [--rounds 40] [--repeat 3]
//! ```

use rds_core::network::RetrievalInstance;
use rds_core::obs::metrics::Histogram;
use rds_core::obs::trace::{EventKind, TraceEvent};
use rds_core::solver::RetrievalSolver;
use rds_core::workspace::Workspace;
use rds_core::{blackbox, ff, pr};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::model::SystemConfig;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// A rotating mix of Table-III-style range queries over the 7x7 grid.
fn workload(rounds: usize) -> Vec<Vec<Bucket>> {
    let shapes = [(3usize, 2usize), (2, 4), (1, 3), (4, 4), (7, 7), (2, 2)];
    let mut queries = Vec::with_capacity(rounds * shapes.len());
    for k in 0..rounds {
        for (i, &(r, c)) in shapes.iter().enumerate() {
            let q = RangeQuery::new((k + i) % 7, (k * 3 + i) % 7, r, c);
            queries.push(q.buckets(7));
        }
    }
    queries
}

struct SolverRun {
    name: &'static str,
    /// Probe timeline of the representative query: (budget, feasible).
    timeline: Vec<(rds_storage::time::Micros, Option<bool>)>,
    counts: [u64; EventKind::COUNT],
    latency_us: Histogram,
    probes: Histogram,
    traced: Duration,
    untraced: Duration,
}

fn run_solver(
    solver: &dyn RetrievalSolver,
    system: &SystemConfig,
    alloc: &OrthogonalAllocation,
    queries: &[Vec<Bucket>],
    showcase: &[Bucket],
    repeat: usize,
) -> SolverRun {
    // Pass 1: traced, collecting events and histograms.
    let mut ws = Workspace::new();
    ws.install_recorder(1 << 16);
    let mut latency_us = Histogram::new();
    let mut probes = Histogram::new();
    let mut counts = [0u64; EventKind::COUNT];
    let mut traced = Duration::MAX;
    for _ in 0..repeat {
        let started = Instant::now();
        for buckets in queries {
            let q_started = Instant::now();
            let inst = RetrievalInstance::build(system, alloc, buckets);
            let outcome = solver.solve_in(&inst, &mut ws).expect("feasible");
            latency_us.record(q_started.elapsed().as_micros() as u64);
            probes.record(outcome.stats.probes);
        }
        traced = traced.min(started.elapsed());
    }
    if let Some(rec) = ws.recorder() {
        counts = std::array::from_fn(|i| rec.count(EventKind::ALL[i]));
        assert_eq!(
            rec.dropped(),
            0,
            "{}: recorder ring too small",
            solver.name()
        );
    }

    // The representative query's probe timeline, from a fresh recorder.
    if let Some(rec) = ws.recorder_mut() {
        rec.clear();
    }
    let inst = RetrievalInstance::build(system, alloc, showcase);
    let _ = solver.solve_in(&inst, &mut ws).expect("feasible");
    let mut timeline = Vec::new();
    if let Some(rec) = ws.recorder() {
        for e in rec.events() {
            match e {
                TraceEvent::ProbeStart { budget } => timeline.push((budget, None)),
                TraceEvent::ProbeEnd { budget, feasible } => match timeline.last_mut() {
                    Some(last) if last.0 == budget && last.1.is_none() => last.1 = Some(feasible),
                    _ => timeline.push((budget, Some(feasible))),
                },
                _ => {}
            }
        }
    }

    // Pass 2: tracer disabled — the overhead comparison.
    ws.disable_tracing();
    let mut untraced = Duration::MAX;
    for _ in 0..repeat {
        let started = Instant::now();
        for buckets in queries {
            let inst = RetrievalInstance::build(system, alloc, buckets);
            let outcome = solver.solve_in(&inst, &mut ws).expect("feasible");
            std::hint::black_box(outcome.response_time);
        }
        untraced = untraced.min(started.elapsed());
    }

    SolverRun {
        name: solver.name(),
        timeline,
        counts,
        latency_us,
        probes,
        traced,
        untraced,
    }
}

fn main() -> ExitCode {
    let mut rounds = 40usize;
    let mut repeat = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--rounds", Some(v)) => rounds = (v as usize).max(1),
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            _ => {
                eprintln!("usage: probe_timeline [--rounds K] [--repeat R]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries = workload(rounds);
    // The paper's full-grid query: 49 buckets, the widest binary search.
    let showcase = RangeQuery::new(0, 0, 7, 7).buckets(7);

    let solvers: [&dyn RetrievalSolver; 5] = [
        &pr::PushRelabelBinary,
        &pr::PushRelabelIncremental,
        &ff::FordFulkersonIncremental,
        &blackbox::BlackBoxPushRelabel,
        &blackbox::BlackBoxFordFulkerson,
    ];

    let mut report = format!(
        "# probe_timeline — {n} queries ({rounds} rounds of 6 Table-III shapes),\n\
         # paper Table II system (14 disks, 2 sites), best of {repeat} runs.\n\
         #\n\
         # Timeline: feasibility probes of the 7x7 (49-bucket) query, in order.\n\
         # Each entry is budget_us:verdict (y = feasible, n = infeasible).\n\
         # Incremental solvers probe implicitly by raising capacities, so their\n\
         # timelines are empty — that is the integrated-algorithm advantage.\n",
        n = queries.len(),
    );

    for solver in solvers {
        let run = run_solver(solver, &system, &alloc, &queries, &showcase, repeat);
        let lat = run.latency_us.summary();
        let probes = run.probes.summary();
        let overhead =
            run.traced.as_secs_f64() / run.untraced.as_secs_f64().max(f64::EPSILON) - 1.0;
        let _ = writeln!(report, "\n[{}]", run.name);
        let timeline = if run.timeline.is_empty() {
            "(none — capacities raised incrementally, no explicit probes)".to_string()
        } else {
            run.timeline
                .iter()
                .map(|&(budget, feasible)| {
                    let verdict = match feasible {
                        Some(true) => "y",
                        Some(false) => "n",
                        None => "?",
                    };
                    format!("{budget}:{verdict}")
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(report, "timeline_7x7      {timeline}");
        let _ = writeln!(
            report,
            "probes_per_solve  p50 {} / p95 {} / p99 {} (total {})",
            probes.p50,
            probes.p95,
            probes.p99,
            run.counts[EventKind::ProbeStart as usize]
        );
        let _ = writeln!(
            report,
            "events            solves {} probes {} increments {} relabel_passes {} augments {}",
            run.counts[EventKind::SolveStart as usize],
            run.counts[EventKind::ProbeStart as usize],
            run.counts[EventKind::CapacityIncrement as usize],
            run.counts[EventKind::RelabelPass as usize],
            run.counts[EventKind::Augment as usize],
        );
        let _ = writeln!(
            report,
            "latency_us        p50 {} / p95 {} / p99 {} over {} samples",
            lat.p50, lat.p95, lat.p99, lat.count
        );
        let _ = writeln!(
            report,
            "workload_ms       traced {:.3} / untraced {:.3} ({:+.2}% recorder overhead)",
            run.traced.as_secs_f64() * 1e3,
            run.untraced.as_secs_f64() * 1e3,
            overhead * 1e2,
        );
    }

    print!("{report}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/probe_timeline.txt", &report))
    {
        eprintln!("could not write results/probe_timeline.txt: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/probe_timeline.txt");
    ExitCode::SUCCESS
}
