//! Old layout vs the CSR residual arena, on retrieval-shaped networks
//! scaled up from the paper's Table II system (7x7 grid, 14 disks).
//!
//! The headline (`cold_speedup`, gated in CI) compares two full stacks on
//! identical instances:
//!
//! * **legacy** — a faithful copy of the pre-arena `FlowGraph`
//!   (`adj: Vec<Vec<u32>>`, one heap vector per vertex) and its FIFO
//!   push-relabel, with the bounds-checked accessors that code used,
//!   reproduced here because the refactor deleted the originals;
//! * **shipped** — today's `FlowGraph` (offset-array CSR arena) driven by
//!   `rds_flow::push_relabel`.
//!
//! Push-relabel is the engine the retrieval drivers default to, and its
//! discharge order is scattered (unlike Dinic's BFS sweeps), so it is the
//! workload where adjacency layout actually matters.
//!
//! A *cold* solve builds the graph from nothing and solves (the per-query
//! cost before workspaces warm up); a *steady* solve rebuilds in place,
//! reusing buffers. Legacy/shipped samples are interleaved so clock drift
//! hits both arms equally.
//!
//! A second panel runs one generic mini-Dinic over four synthetic layouts
//! storing the identical residual network — per-vertex `Vec`s, linked
//! forward-star (`first_out`/`next_out`), offset-array CSR, and CSR with
//! `i32` cap/flow words — the microbench behind the arena's two design
//! calls: offset-array over linked list, and `i64` flow words retained.
//!
//! ```text
//! cargo run --release -p rds-bench --bin graph_layout -- [--repeat 7] [--rounds 3]
//! ```
//!
//! Writes `results/graph_layout.txt` and `BENCH_graph_layout.json`.

use rds_flow::graph::FlowGraph;
use rds_flow::parallel::{ParallelPushRelabel, WorkerPool};
use rds_util::SplitMix64;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One directed arc of the input network; both residual slots are derived
/// from it, exactly as `FlowGraph::add_edge` does.
#[derive(Clone, Copy)]
struct Arc {
    from: u32,
    to: u32,
    cap: i64,
}

/// A retrieval-shaped instance: source -> g*g buckets -> 2g disks -> sink,
/// `REPLICAS` distinct replica arcs per bucket, disk arcs capped at the
/// balanced budget. The g = 7 rung is the paper's Table II shape; larger
/// rungs scale the same topology until it falls out of cache.
struct Instance {
    grid: usize,
    n: usize,
    arcs: Vec<Arc>,
    source: usize,
    sink: usize,
}

const REPLICAS: usize = 3;

fn build_instance(grid: usize, seed: u64) -> Instance {
    let q = grid * grid;
    let disks = 2 * grid;
    let n = q + disks + 2;
    let (source, sink) = (0, n - 1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut arcs = Vec::with_capacity(q * (1 + REPLICAS) + disks);
    for b in 0..q {
        arcs.push(Arc {
            from: source as u32,
            to: (1 + b) as u32,
            cap: 1,
        });
        let mut chosen = [usize::MAX; REPLICAS];
        for slot in 0..REPLICAS {
            let mut d = rng.gen_range(0..disks);
            while chosen[..slot].contains(&d) {
                d = rng.gen_range(0..disks);
            }
            chosen[slot] = d;
            arcs.push(Arc {
                from: (1 + b) as u32,
                to: (1 + q + d) as u32,
                cap: 1,
            });
        }
    }
    let budget = (q / disks + 1) as i64;
    for d in 0..disks {
        arcs.push(Arc {
            from: (1 + q + d) as u32,
            to: sink as u32,
            cap: budget,
        });
    }
    Instance {
        grid,
        n,
        arcs,
        source,
        sink,
    }
}

// ---------------------------------------------------------------------------
// The pre-arena stack, reproduced from the repository history: adjacency
// as one `Vec<u32>` per vertex, bounds-checked accessors, and the Dinic
// that ran on it. This is the "old layout" arm of the headline.
// ---------------------------------------------------------------------------

mod legacy {
    /// The pre-arena `FlowGraph`: per-vertex adjacency vectors over flat
    /// `head`/`cap`/`flow`, checked indexing throughout.
    #[derive(Default)]
    pub struct LegacyGraph {
        adj: Vec<Vec<u32>>,
        head: Vec<u32>,
        cap: Vec<i64>,
        flow: Vec<i64>,
    }

    impl LegacyGraph {
        pub fn new(n: usize) -> Self {
            LegacyGraph {
                adj: vec![Vec::new(); n],
                head: Vec::new(),
                cap: Vec::new(),
                flow: Vec::new(),
            }
        }

        /// The old `reset`: clears lengths, keeps every buffer's capacity
        /// (including the per-vertex vectors).
        pub fn reset(&mut self, n: usize) {
            if self.adj.len() < n {
                self.adj.resize_with(n, Vec::new);
            }
            self.adj.truncate(n);
            for list in &mut self.adj {
                list.clear();
            }
            self.head.clear();
            self.cap.clear();
            self.flow.clear();
        }

        pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) -> usize {
            let e = self.head.len();
            self.adj[u].push(e as u32);
            self.adj[v].push((e + 1) as u32);
            self.head.extend([v as u32, u as u32]);
            self.cap.extend([cap, 0]);
            self.flow.extend([0, 0]);
            e
        }

        pub fn num_vertices(&self) -> usize {
            self.adj.len()
        }

        pub fn num_edge_slots(&self) -> usize {
            self.head.len()
        }

        pub fn zero_flows(&mut self) {
            self.flow.iter_mut().for_each(|f| *f = 0);
        }

        pub fn out_edges(&self, v: usize) -> &[u32] {
            &self.adj[v]
        }

        pub fn target(&self, e: usize) -> usize {
            self.head[e] as usize
        }

        pub fn residual(&self, e: usize) -> i64 {
            self.cap[e] - self.flow[e]
        }

        pub fn push(&mut self, e: usize, delta: i64) {
            self.flow[e] += delta;
            self.flow[e ^ 1] -= delta;
        }

        /// The old `copy_from`: `clone_from` per field — which for the
        /// adjacency means one `Vec<u32>` clone per vertex (an allocation
        /// each on a fresh workspace).
        pub fn copy_from(&mut self, other: &LegacyGraph) {
            self.adj.clone_from(&other.adj);
            self.head.clone_from(&other.head);
            self.cap.clone_from(&other.cap);
            self.flow.clone_from(&other.flow);
        }
    }

    use std::collections::VecDeque;

    /// Work between global relabels, as the pre-arena solver had it.
    const GLOBAL_RELABEL_WORK_FACTOR: u64 = 6;

    /// The pre-arena FIFO push-relabel (gap + global-relabel heuristics),
    /// verbatim from repo history modulo the graph type and the dropped
    /// resume/snapshot surface the bench does not exercise.
    #[derive(Default)]
    pub struct LegacyPushRelabel {
        height: Vec<u32>,
        excess: Vec<i64>,
        cur_arc: Vec<u32>,
        queue: VecDeque<u32>,
        in_queue: Vec<bool>,
        height_count: Vec<u32>,
        bfs_queue: Vec<u32>,
        work: u64,
        pushes: u64,
        relabels: u64,
    }

    impl LegacyPushRelabel {
        pub fn new() -> Self {
            Self::default()
        }

        /// Keeps the operation counters observable so the optimizer cannot
        /// delete the bookkeeping the shipped solver also performs.
        pub fn ops(&self) -> u64 {
            self.pushes + self.relabels
        }

        fn ensure(&mut self, n: usize) {
            if self.height.len() < n {
                self.height.resize(n, 0);
                self.excess.resize(n, 0);
                self.cur_arc.resize(n, 0);
                self.in_queue.resize(n, false);
            }
            if self.height_count.len() < 2 * n + 1 {
                self.height_count.resize(2 * n + 1, 0);
            }
        }

        pub fn max_flow(&mut self, g: &mut LegacyGraph, s: usize, t: usize) -> i64 {
            let n = g.num_vertices();
            g.zero_flows();
            self.ensure(n);
            self.excess.iter_mut().for_each(|e| *e = 0);
            self.queue.clear();
            self.in_queue.iter_mut().for_each(|b| *b = false);

            for i in 0..g.out_edges(s).len() {
                let e = g.out_edges(s)[i] as usize;
                let delta = g.residual(e);
                if delta > 0 {
                    let v = g.target(e);
                    g.push(e, delta);
                    self.excess[v] += delta;
                }
            }
            self.height.iter_mut().for_each(|h| *h = 0);
            self.height[s] = n as u32;
            self.excess[s] = 0;
            self.cur_arc.iter_mut().for_each(|a| *a = 0);
            self.height_count.iter_mut().for_each(|c| *c = 0);
            self.height_count[0] = (n - 1) as u32;
            self.height_count[n] += 1;

            for v in 0..n {
                if v != s && v != t && self.excess[v] > 0 {
                    self.queue.push_back(v as u32);
                    self.in_queue[v] = true;
                }
            }
            if !self.queue.is_empty() {
                self.global_relabel(g, s, t);
            }
            self.work = 0;

            let m = g.num_edge_slots() as u64;
            let relabel_threshold = GLOBAL_RELABEL_WORK_FACTOR * m.max(n as u64);
            while let Some(v) = self.queue.pop_front() {
                let v = v as usize;
                self.in_queue[v] = false;
                self.discharge(g, v, s, t);
                if self.work >= relabel_threshold {
                    self.work = 0;
                    self.global_relabel(g, s, t);
                }
            }
            self.excess[t]
        }

        fn discharge(&mut self, g: &mut LegacyGraph, v: usize, s: usize, t: usize) {
            let n = g.num_vertices() as u32;
            while self.excess[v] > 0 {
                let edges_len = g.out_edges(v).len();
                if (self.cur_arc[v] as usize) >= edges_len {
                    if !self.relabel(g, v, n) {
                        break;
                    }
                    if self.height[v] > 2 * n {
                        break;
                    }
                    continue;
                }
                let e = g.out_edges(v)[self.cur_arc[v] as usize] as usize;
                self.work += 1;
                let w = g.target(e);
                if g.residual(e) > 0 && self.height[v] == self.height[w] + 1 {
                    let delta = self.excess[v].min(g.residual(e));
                    g.push(e, delta);
                    self.excess[v] -= delta;
                    self.excess[w] += delta;
                    self.pushes += 1;
                    if w != s && w != t && !self.in_queue[w] {
                        self.queue.push_back(w as u32);
                        self.in_queue[w] = true;
                    }
                } else {
                    self.cur_arc[v] += 1;
                }
            }
        }

        fn relabel(&mut self, g: &LegacyGraph, v: usize, n: u32) -> bool {
            let mut min_h = u32::MAX;
            for &e in g.out_edges(v) {
                let e = e as usize;
                self.work += 1;
                if g.residual(e) > 0 {
                    min_h = min_h.min(self.height[g.target(e)]);
                }
            }
            if min_h == u32::MAX {
                return false;
            }
            let old = self.height[v];
            let new = min_h + 1;
            self.relabels += 1;
            self.height[v] = new;
            self.cur_arc[v] = 0;
            self.height_count[old as usize] -= 1;
            if (new as usize) < self.height_count.len() {
                self.height_count[new as usize] += 1;
            }
            if self.height_count[old as usize] == 0 && old < n {
                self.apply_gap(old, n);
            }
            true
        }

        fn apply_gap(&mut self, gap: u32, n: u32) {
            for v in 0..self.height.len() {
                let h = self.height[v];
                if h > gap && h < n {
                    self.height_count[h as usize] -= 1;
                    self.height[v] = n + 1;
                    self.height_count[(n + 1) as usize] += 1;
                    self.cur_arc[v] = 0;
                }
            }
        }

        fn global_relabel(&mut self, g: &LegacyGraph, s: usize, t: usize) {
            let n = g.num_vertices();
            const UNSEEN: u32 = u32::MAX;
            self.height.iter_mut().for_each(|h| *h = UNSEEN);

            self.bfs_queue.clear();
            self.height[t] = 0;
            self.bfs_queue.push(t as u32);
            let mut head = 0;
            while head < self.bfs_queue.len() {
                let w = self.bfs_queue[head] as usize;
                head += 1;
                let dw = self.height[w];
                for &e in g.out_edges(w) {
                    let e = e as usize;
                    let u = g.target(e);
                    if self.height[u] == UNSEEN && g.residual(e ^ 1) > 0 && u != s {
                        self.height[u] = dw + 1;
                        self.bfs_queue.push(u as u32);
                    }
                }
            }
            let base = n as u32;
            self.bfs_queue.clear();
            self.height[s] = base;
            self.bfs_queue.push(s as u32);
            head = 0;
            while head < self.bfs_queue.len() {
                let w = self.bfs_queue[head] as usize;
                head += 1;
                let dw = self.height[w];
                for &e in g.out_edges(w) {
                    let e = e as usize;
                    let u = g.target(e);
                    if self.height[u] == UNSEEN && g.residual(e ^ 1) > 0 {
                        self.height[u] = dw + 1;
                        self.bfs_queue.push(u as u32);
                    }
                }
            }
            for h in self.height.iter_mut() {
                if *h == UNSEEN {
                    *h = 2 * base;
                }
            }
            self.height_count.iter_mut().for_each(|c| *c = 0);
            for v in 0..n {
                let h = self.height[v] as usize;
                if h < self.height_count.len() {
                    self.height_count[h] += 1;
                }
            }
            self.cur_arc.iter_mut().for_each(|a| *a = 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Synthetic layout panel: four layouts, one mini-Dinic.
// ---------------------------------------------------------------------------

trait Layout {
    const NAME: &'static str;
    /// Cursor over the out-slots of one vertex.
    type Cur: Copy;
    fn new() -> Self;
    fn rebuild(&mut self, n: usize, arcs: &[Arc]);
    fn num_vertices(&self) -> usize;
    fn first(&self, v: usize) -> Self::Cur;
    fn valid(&self, c: Self::Cur) -> bool;
    fn advance(&self, c: Self::Cur) -> Self::Cur;
    fn edge(&self, c: Self::Cur) -> usize;
    fn head(&self, e: usize) -> usize;
    fn residual(&self, e: usize) -> i64;
    fn push(&mut self, e: usize, delta: i64);
}

/// Per-vertex adjacency vectors (the old layout's shape, minus its checked
/// accessors — the panel isolates pure layout).
struct VecOfVecs {
    adj: Vec<Vec<u32>>,
    head: Vec<u32>,
    cap: Vec<i64>,
    flow: Vec<i64>,
}

impl Layout for VecOfVecs {
    const NAME: &'static str = "vec_of_vecs";
    type Cur = (u32, u32);

    fn new() -> Self {
        VecOfVecs {
            adj: Vec::new(),
            head: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
        }
    }

    fn rebuild(&mut self, n: usize, arcs: &[Arc]) {
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        for list in &mut self.adj[..n] {
            list.clear();
        }
        self.head.clear();
        self.cap.clear();
        self.flow.clear();
        for a in arcs {
            let e = self.head.len() as u32;
            self.adj[a.from as usize].push(e);
            self.adj[a.to as usize].push(e + 1);
            self.head.extend([a.to, a.from]);
            self.cap.extend([a.cap, 0]);
            self.flow.extend([0, 0]);
        }
    }

    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    #[inline(always)]
    fn first(&self, v: usize) -> (u32, u32) {
        (v as u32, 0)
    }

    #[inline(always)]
    fn valid(&self, (v, k): (u32, u32)) -> bool {
        (k as usize) < self.adj[v as usize].len()
    }

    #[inline(always)]
    fn advance(&self, (v, k): (u32, u32)) -> (u32, u32) {
        (v, k + 1)
    }

    #[inline(always)]
    fn edge(&self, (v, k): (u32, u32)) -> usize {
        self.adj[v as usize][k as usize] as usize
    }

    #[inline(always)]
    fn head(&self, e: usize) -> usize {
        self.head[e] as usize
    }

    #[inline(always)]
    fn residual(&self, e: usize) -> i64 {
        self.cap[e] - self.flow[e]
    }

    #[inline(always)]
    fn push(&mut self, e: usize, delta: i64) {
        self.flow[e] += delta;
        self.flow[e ^ 1] -= delta;
    }
}

const NONE: u32 = u32::MAX;

/// The linked forward-star candidate: `first_out[v]` heads an intrusive
/// `next_out` chain through the edge slots. All-flat storage, but each
/// traversal step is a data-dependent load.
struct LinkedStar {
    first_out: Vec<u32>,
    next_out: Vec<u32>,
    head: Vec<u32>,
    cap: Vec<i64>,
    flow: Vec<i64>,
}

impl Layout for LinkedStar {
    const NAME: &'static str = "linked_forward_star";
    type Cur = u32;

    fn new() -> Self {
        LinkedStar {
            first_out: Vec::new(),
            next_out: Vec::new(),
            head: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
        }
    }

    fn rebuild(&mut self, n: usize, arcs: &[Arc]) {
        self.first_out.clear();
        self.first_out.resize(n, NONE);
        self.next_out.clear();
        self.next_out.resize(arcs.len() * 2, NONE);
        self.head.clear();
        self.head.resize(arcs.len() * 2, 0);
        self.cap.clear();
        self.cap.resize(arcs.len() * 2, 0);
        self.flow.clear();
        self.flow.resize(arcs.len() * 2, 0);
        // Arcs are chained in reverse so traversal order matches the other
        // layouts (ascending slot id).
        for (i, a) in arcs.iter().enumerate().rev() {
            let e = i * 2;
            self.head[e] = a.to;
            self.head[e + 1] = a.from;
            self.cap[e] = a.cap;
            self.next_out[e] = self.first_out[a.from as usize];
            self.first_out[a.from as usize] = e as u32;
            self.next_out[e + 1] = self.first_out[a.to as usize];
            self.first_out[a.to as usize] = (e + 1) as u32;
        }
    }

    fn num_vertices(&self) -> usize {
        self.first_out.len()
    }

    #[inline(always)]
    fn first(&self, v: usize) -> u32 {
        self.first_out[v]
    }

    #[inline(always)]
    fn valid(&self, c: u32) -> bool {
        c != NONE
    }

    #[inline(always)]
    fn advance(&self, c: u32) -> u32 {
        self.next_out[c as usize]
    }

    #[inline(always)]
    fn edge(&self, c: u32) -> usize {
        c as usize
    }

    #[inline(always)]
    fn head(&self, e: usize) -> usize {
        self.head[e] as usize
    }

    #[inline(always)]
    fn residual(&self, e: usize) -> i64 {
        self.cap[e] - self.flow[e]
    }

    #[inline(always)]
    fn push(&mut self, e: usize, delta: i64) {
        self.flow[e] += delta;
        self.flow[e ^ 1] -= delta;
    }
}

/// The shipped layout shape: offset-array CSR (`adj_index`/`adj_list`)
/// over flat `head`/`cap`/`flow`, counting-sorted so per-vertex order is
/// ascending slot id. Generic over the cap/flow word to measure the `i32`
/// variant.
struct CsrArena<W> {
    adj_index: Vec<u32>,
    adj_list: Vec<u32>,
    cursor: Vec<u32>,
    head: Vec<u32>,
    cap: Vec<W>,
    flow: Vec<W>,
}

trait FlowWord: Copy + Default {
    const NAME: &'static str;
    fn from_i64(x: i64) -> Self;
    fn to_i64(self) -> i64;
    fn add(self, other: Self) -> Self;
    fn sub(self, other: Self) -> Self;
}

impl FlowWord for i64 {
    const NAME: &'static str = "csr_i64";
    fn from_i64(x: i64) -> i64 {
        x
    }
    fn to_i64(self) -> i64 {
        self
    }
    fn add(self, o: i64) -> i64 {
        self + o
    }
    fn sub(self, o: i64) -> i64 {
        self - o
    }
}

impl FlowWord for i32 {
    const NAME: &'static str = "csr_i32";
    fn from_i64(x: i64) -> i32 {
        x as i32
    }
    fn to_i64(self) -> i64 {
        self as i64
    }
    fn add(self, o: i32) -> i32 {
        self + o
    }
    fn sub(self, o: i32) -> i32 {
        self - o
    }
}

impl<W: FlowWord> Layout for CsrArena<W> {
    const NAME: &'static str = W::NAME;
    type Cur = (u32, u32);

    fn new() -> Self {
        CsrArena {
            adj_index: Vec::new(),
            adj_list: Vec::new(),
            cursor: Vec::new(),
            head: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
        }
    }

    fn rebuild(&mut self, n: usize, arcs: &[Arc]) {
        let m = arcs.len() * 2;
        self.head.clear();
        self.cap.clear();
        self.flow.clear();
        for a in arcs {
            self.head.extend([a.to, a.from]);
            self.cap.extend([W::from_i64(a.cap), W::default()]);
            self.flow.extend([W::default(), W::default()]);
        }
        // Stable counting sort of slots by owner, as FlowGraph::finalize.
        self.adj_index.clear();
        self.adj_index.resize(n + 1, 0);
        for e in 0..m {
            self.adj_index[self.head[e ^ 1] as usize + 1] += 1;
        }
        for v in 0..n {
            self.adj_index[v + 1] += self.adj_index[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.adj_index[..n]);
        self.adj_list.clear();
        self.adj_list.resize(m, 0);
        for e in 0..m {
            let src = self.head[e ^ 1] as usize;
            let slot = self.cursor[src];
            self.adj_list[slot as usize] = e as u32;
            self.cursor[src] = slot + 1;
        }
    }

    fn num_vertices(&self) -> usize {
        self.adj_index.len().saturating_sub(1)
    }

    #[inline(always)]
    fn first(&self, v: usize) -> (u32, u32) {
        (self.adj_index[v], self.adj_index[v + 1])
    }

    #[inline(always)]
    fn valid(&self, (pos, end): (u32, u32)) -> bool {
        pos < end
    }

    #[inline(always)]
    fn advance(&self, (pos, end): (u32, u32)) -> (u32, u32) {
        (pos + 1, end)
    }

    #[inline(always)]
    fn edge(&self, (pos, _): (u32, u32)) -> usize {
        self.adj_list[pos as usize] as usize
    }

    #[inline(always)]
    fn head(&self, e: usize) -> usize {
        self.head[e] as usize
    }

    #[inline(always)]
    fn residual(&self, e: usize) -> i64 {
        self.cap[e].sub(self.flow[e]).to_i64()
    }

    #[inline(always)]
    fn push(&mut self, e: usize, delta: i64) {
        self.flow[e] = self.flow[e].add(W::from_i64(delta));
        self.flow[e ^ 1] = self.flow[e ^ 1].sub(W::from_i64(delta));
    }
}

/// One Dinic to drive the whole panel.
struct MiniDinic<C> {
    level: Vec<u32>,
    queue: Vec<u32>,
    cur: Vec<C>,
}

impl<C: Copy> MiniDinic<C> {
    fn new() -> Self {
        MiniDinic {
            level: Vec::new(),
            queue: Vec::new(),
            cur: Vec::new(),
        }
    }

    fn max_flow<L: Layout<Cur = C>>(&mut self, g: &mut L, s: usize, t: usize) -> i64 {
        let n = g.num_vertices();
        self.level.clear();
        self.level.resize(n, 0);
        self.cur.clear();
        self.cur.resize(n, g.first(s));
        let mut total = 0;
        loop {
            self.level.fill(u32::MAX);
            self.level[s] = 0;
            self.queue.clear();
            self.queue.push(s as u32);
            let mut qh = 0;
            while qh < self.queue.len() {
                let v = self.queue[qh] as usize;
                qh += 1;
                let mut c = g.first(v);
                while g.valid(c) {
                    let e = g.edge(c);
                    let w = g.head(e);
                    if g.residual(e) > 0 && self.level[w] == u32::MAX {
                        self.level[w] = self.level[v] + 1;
                        self.queue.push(w as u32);
                    }
                    c = g.advance(c);
                }
            }
            if self.level[t] == u32::MAX {
                return total;
            }
            for v in 0..n {
                self.cur[v] = g.first(v);
            }
            loop {
                let pushed = self.augment(g, s, t, i64::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn augment<L: Layout<Cur = C>>(&mut self, g: &mut L, v: usize, t: usize, limit: i64) -> i64 {
        if v == t {
            return limit;
        }
        while g.valid(self.cur[v]) {
            let c = self.cur[v];
            let e = g.edge(c);
            let w = g.head(e);
            if g.residual(e) > 0 && self.level[w] == self.level[v] + 1 {
                let pushed = self.augment(g, w, t, limit.min(g.residual(e)));
                if pushed > 0 {
                    g.push(e, pushed);
                    return pushed;
                }
            }
            self.cur[v] = g.advance(c);
        }
        0
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Cold/steady stack timings for one instance, best of `repeat` samples of
/// `rounds` cycles each. The measurements are interleaved inside each
/// sample so slow system phases penalize every arm alike.
struct StackTimes {
    legacy_cold: Duration,
    legacy_steady: Duration,
    shipped_cold: Duration,
    shipped_steady: Duration,
    compact_cold: Duration,
    compact_steady: Duration,
    flow: i64,
}

/// Builds the production arena exactly as the retrieval drivers do,
/// monomorphized over the cap/flow word width.
fn build_production<W: rds_flow::graph::ArenaIndex>(g: &mut FlowGraph<W>, inst: &Instance) {
    g.reset(inst.n);
    // The production builders pre-size the arena from the known
    // topology bound (see `RetrievalInstance::rebuild_with_health`);
    // the bench knows the arc count exactly.
    g.reserve_edges(inst.arcs.len());
    for a in &inst.arcs {
        g.add_edge(a.from as usize, a.to as usize, a.cap);
    }
    g.finalize();
}

fn time_stacks(inst: &Instance, repeat: usize, rounds: usize) -> StackTimes {
    let build_legacy = |g: &mut legacy::LegacyGraph| {
        g.reset(inst.n);
        for a in &inst.arcs {
            g.add_edge(a.from as usize, a.to as usize, a.cap);
        }
    };

    // Each cycle reproduces the full solve pipeline: build the instance's
    // network, copy it into a workspace scratch graph (`Workspace::begin`),
    // solve on the copy. Cold uses a fresh workspace each time — exactly
    // what the `solve()` convenience did per call pre-arena; steady reuses
    // both the instance graph and the workspace scratch.
    let mut lpr = legacy::LegacyPushRelabel::new();
    let mut spr = rds_flow::push_relabel::PushRelabel::new();
    let mut linst = legacy::LegacyGraph::new(inst.n);
    let mut sinst = FlowGraph::<i64>::new(inst.n);
    let mut cinst = FlowGraph::<i32>::new(inst.n);
    let mut lscratch = legacy::LegacyGraph::default();
    let mut sscratch = FlowGraph::<i64>::new(0);
    let mut cscratch = FlowGraph::<i32>::new(0);
    build_legacy(&mut linst);
    build_production(&mut sinst, inst);
    build_production(&mut cinst, inst);
    lscratch.copy_from(&linst);
    sscratch.copy_from(&sinst);
    cscratch.copy_from(&cinst);
    let flow = lpr.max_flow(&mut lscratch, inst.source, inst.sink);
    let shipped_flow = spr.max_flow(&mut sscratch, inst.source, inst.sink);
    let compact_flow = spr.max_flow(&mut cscratch, inst.source, inst.sink);
    assert_eq!(flow, shipped_flow, "stacks disagree on grid {}", inst.grid);
    assert_eq!(flow, compact_flow, "widths disagree on grid {}", inst.grid);

    let mut t = StackTimes {
        legacy_cold: Duration::MAX,
        legacy_steady: Duration::MAX,
        shipped_cold: Duration::MAX,
        shipped_steady: Duration::MAX,
        compact_cold: Duration::MAX,
        compact_steady: Duration::MAX,
        flow,
    };
    for _ in 0..repeat {
        let started = Instant::now();
        for _ in 0..rounds {
            let mut fresh_inst = legacy::LegacyGraph::new(inst.n);
            build_legacy(&mut fresh_inst);
            let mut fresh_ws = legacy::LegacyGraph::default();
            fresh_ws.copy_from(&fresh_inst);
            assert_eq!(lpr.max_flow(&mut fresh_ws, inst.source, inst.sink), flow);
        }
        t.legacy_cold = t.legacy_cold.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            let mut fresh_inst = FlowGraph::<i64>::new(inst.n);
            build_production(&mut fresh_inst, inst);
            let mut fresh_ws = FlowGraph::<i64>::new(0);
            fresh_ws.copy_from(&fresh_inst);
            assert_eq!(spr.max_flow(&mut fresh_ws, inst.source, inst.sink), flow);
        }
        t.shipped_cold = t.shipped_cold.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            let mut fresh_inst = FlowGraph::<i32>::new(inst.n);
            build_production(&mut fresh_inst, inst);
            let mut fresh_ws = FlowGraph::<i32>::new(0);
            fresh_ws.copy_from(&fresh_inst);
            assert_eq!(spr.max_flow(&mut fresh_ws, inst.source, inst.sink), flow);
        }
        t.compact_cold = t.compact_cold.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            build_legacy(&mut linst);
            lscratch.copy_from(&linst);
            assert_eq!(lpr.max_flow(&mut lscratch, inst.source, inst.sink), flow);
        }
        t.legacy_steady = t.legacy_steady.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            build_production(&mut sinst, inst);
            sscratch.copy_from(&sinst);
            assert_eq!(spr.max_flow(&mut sscratch, inst.source, inst.sink), flow);
        }
        t.shipped_steady = t.shipped_steady.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            build_production(&mut cinst, inst);
            cscratch.copy_from(&cinst);
            assert_eq!(spr.max_flow(&mut cscratch, inst.source, inst.sink), flow);
        }
        t.compact_steady = t.compact_steady.min(started.elapsed() / rounds as u32);
    }
    std::hint::black_box((lpr.ops(), spr.stats));
    t
}

/// Sequential vs pool-backed parallel push-relabel on one instance, both on
/// the wide production arena, steady-state (in-place rebuild + solve per
/// cycle). The parallel arm reuses one shared [`WorkerPool`] across every
/// cycle — the engine-lifecycle shape, where `EngineBuilder` spawns the
/// pool once and all shards and solves borrow it.
fn time_parallel_vs_seq(
    inst: &Instance,
    repeat: usize,
    rounds: usize,
    threads: usize,
) -> (Duration, Duration) {
    let mut seq = rds_flow::push_relabel::PushRelabel::new();
    let mut par = ParallelPushRelabel::with_pool(WorkerPool::new(threads));
    let mut graph = FlowGraph::<i64>::new(inst.n);
    let mut scratch = FlowGraph::<i64>::new(0);
    build_production(&mut graph, inst);
    scratch.copy_from(&graph);
    let flow = seq.max_flow(&mut scratch, inst.source, inst.sink);
    scratch.copy_from(&graph);
    assert_eq!(
        par.max_flow(&mut scratch, inst.source, inst.sink),
        flow,
        "parallel solver lost the flow value on grid {}",
        inst.grid
    );

    let (mut best_seq, mut best_par) = (Duration::MAX, Duration::MAX);
    for _ in 0..repeat {
        let started = Instant::now();
        for _ in 0..rounds {
            build_production(&mut graph, inst);
            scratch.copy_from(&graph);
            assert_eq!(seq.max_flow(&mut scratch, inst.source, inst.sink), flow);
        }
        best_seq = best_seq.min(started.elapsed() / rounds as u32);

        let started = Instant::now();
        for _ in 0..rounds {
            build_production(&mut graph, inst);
            scratch.copy_from(&graph);
            assert_eq!(par.max_flow(&mut scratch, inst.source, inst.sink), flow);
        }
        best_par = best_par.min(started.elapsed() / rounds as u32);
    }
    (best_seq, best_par)
}

/// Best-of-`repeat` steady-state time for one panel layout (in-place
/// rebuild + from-zero solve per cycle).
fn time_layout<L: Layout>(inst: &Instance, repeat: usize, rounds: usize) -> (Duration, i64) {
    let mut dinic = MiniDinic::new();
    let mut g = L::new();
    g.rebuild(inst.n, &inst.arcs);
    let value = dinic.max_flow(&mut g, inst.source, inst.sink);
    let mut best = Duration::MAX;
    for _ in 0..repeat {
        let started = Instant::now();
        for _ in 0..rounds {
            g.rebuild(inst.n, &inst.arcs);
            let got = dinic.max_flow(&mut g, inst.source, inst.sink);
            assert_eq!(got, value, "{} lost the flow value", L::NAME);
        }
        best = best.min(started.elapsed() / rounds as u32);
    }
    (best, value)
}

struct Rung {
    grid: usize,
    vertices: usize,
    edge_slots: usize,
    stacks: StackTimes,
    panel: [(Duration, i64); 4],
}

fn main() -> ExitCode {
    let mut repeat = 7usize;
    let mut rounds = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            ("--rounds", Some(v)) => rounds = (v as usize).max(1),
            _ => {
                eprintln!("usage: graph_layout [--repeat R] [--rounds N]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Table II shape (7x7 grid, 14 disks) and cache-pressure scalings of
    // the same topology.
    let grids = [7usize, 14, 28, 56, 112];
    let mut rungs = Vec::new();
    for (i, &grid) in grids.iter().enumerate() {
        let inst = build_instance(grid, 0x7AB1E2 + i as u64);
        let stacks = time_stacks(&inst, repeat, rounds);
        let panel = [
            time_layout::<VecOfVecs>(&inst, repeat, rounds),
            time_layout::<LinkedStar>(&inst, repeat, rounds),
            time_layout::<CsrArena<i64>>(&inst, repeat, rounds),
            time_layout::<CsrArena<i32>>(&inst, repeat, rounds),
        ];
        let v = panel[0].1;
        assert!(
            panel.iter().all(|&(_, pv)| pv == v) && v == stacks.flow,
            "panel layouts disagree on grid {grid}"
        );
        rungs.push(Rung {
            grid,
            vertices: inst.n,
            edge_slots: inst.arcs.len() * 2,
            stacks,
            panel,
        });
    }

    // Sequential vs shared-pool parallel push-relabel, production arena,
    // at the largest (cache-pressure) rung only — the small rungs have too
    // little concurrent excess for the pool to matter.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 4);
    let par_inst = build_instance(
        *grids.last().expect("at least one rung"),
        0x7AB1E2 + (grids.len() - 1) as u64,
    );
    let (seq_112, par_112) = time_parallel_vs_seq(&par_inst, repeat, rounds, threads);

    let last = rungs.last().expect("at least one rung");
    let cold_speedup =
        last.stacks.legacy_cold.as_secs_f64() / last.stacks.shipped_cold.as_secs_f64();
    let steady_speedup =
        last.stacks.legacy_steady.as_secs_f64() / last.stacks.shipped_steady.as_secs_f64();
    let compact_speedup =
        last.stacks.shipped_cold.as_secs_f64() / last.stacks.compact_cold.as_secs_f64();
    let parallel_vs_seq_112 = seq_112.as_secs_f64() / par_112.as_secs_f64();
    let linked_vs_csr = last.panel[1].0.as_secs_f64() / last.panel[2].0.as_secs_f64();
    let i32_vs_i64 = last.panel[2].0.as_secs_f64() / last.panel[3].0.as_secs_f64();

    let mut report = format!(
        "# graph_layout — pre-arena stack (Vec-of-Vecs FlowGraph + its FIFO\n\
         # push-relabel, from repo history) vs the shipped CSR arena stack, on\n\
         # retrieval-shaped networks scaled from the paper's Table II system\n\
         # (grid 7 = 7x7 grid / 14 disks).\n\
         # cold   = build the graph from nothing + solve (per-query cost pre-warmup;\n\
         #          the old layout pays one heap vector per vertex);\n\
         # steady = in-place rebuild reusing buffers + solve.\n\
         # best of {repeat} samples x {rounds} cycles, arms interleaved per sample.\n\
         # compact = the same production stack on the i32 (Compact) arena.\n\
         #\n\
         # grid  vertices  slots    legacy_ms        shipped_ms       compact_ms      flow\n\
         #                          cold   steady    cold   steady    cold   steady\n"
    );
    for r in &rungs {
        report.push_str(&format!(
            "{:>6} {:>9} {:>6} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7}\n",
            r.grid,
            r.vertices,
            r.edge_slots,
            ms(r.stacks.legacy_cold),
            ms(r.stacks.legacy_steady),
            ms(r.stacks.shipped_cold),
            ms(r.stacks.shipped_steady),
            ms(r.stacks.compact_cold),
            ms(r.stacks.compact_steady),
            r.stacks.flow,
        ));
    }
    report.push_str(
        "#\n\
         # layout panel (steady, one generic mini-Dinic; the arena design bench):\n\
         # grid   vec_of_vecs_ms  linked_star_ms  csr_i64_ms  csr_i32_ms\n",
    );
    for r in &rungs {
        report.push_str(&format!(
            "{:>6} {:>16.3} {:>15.3} {:>11.3} {:>11.3}\n",
            r.grid,
            ms(r.panel[0].0),
            ms(r.panel[1].0),
            ms(r.panel[2].0),
            ms(r.panel[3].0),
        ));
    }
    report.push_str(&format!(
        "#\n\
         cold_speedup         {cold_speedup:.2}x   (legacy stack / shipped stack, cold, grid {grid})\n\
         steady_speedup       {steady_speedup:.2}x   (legacy stack / shipped stack, in-place rebuilds)\n\
         compact_speedup      {compact_speedup:.2}x   (production stack: wide i64 arena / compact i32 arena, cold, grid {grid})\n\
         parallel_vs_seq_112  {parallel_vs_seq_112:.2}x   (sequential {seq:.3} ms / {threads}-thread shared-pool parallel {par:.3} ms, grid {grid})\n\
         linked_vs_csr        {linked_vs_csr:.2}x   (panel: linked forward-star / offset-array csr)\n\
         i32_vs_i64           {i32_vs_i64:.2}x   (panel: csr i64 words / csr i32 words)\n",
        grid = last.grid,
        seq = ms(seq_112),
        par = ms(par_112),
    ));
    print!("{report}");

    let mut json = format!(
        "{{\n  \"bench\": \"graph_layout\",\n  \"repeat\": {repeat},\n  \"rounds\": {rounds},\n  \"cold_speedup\": {cold_speedup:.3},\n  \"steady_speedup\": {steady_speedup:.3},\n  \"compact_speedup\": {compact_speedup:.3},\n  \"parallel_vs_seq_112\": {parallel_vs_seq_112:.3},\n  \"parallel_threads\": {threads},\n  \"seq_112_ms\": {seq:.4},\n  \"par_112_ms\": {par:.4},\n  \"linked_vs_csr\": {linked_vs_csr:.3},\n  \"i32_vs_i64\": {i32_vs_i64:.3},\n  \"rungs\": [\n",
        seq = ms(seq_112),
        par = ms(par_112),
    );
    for (i, r) in rungs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"grid\": {}, \"vertices\": {}, \"edge_slots\": {}, \"flow\": {}, \"legacy_cold_ms\": {:.4}, \"legacy_steady_ms\": {:.4}, \"shipped_cold_ms\": {:.4}, \"shipped_steady_ms\": {:.4}, \"compact_cold_ms\": {:.4}, \"compact_steady_ms\": {:.4}, \"panel_vec_of_vecs_ms\": {:.4}, \"panel_linked_star_ms\": {:.4}, \"panel_csr_i64_ms\": {:.4}, \"panel_csr_i32_ms\": {:.4}}}{}\n",
            r.grid,
            r.vertices,
            r.edge_slots,
            r.stacks.flow,
            ms(r.stacks.legacy_cold),
            ms(r.stacks.legacy_steady),
            ms(r.stacks.shipped_cold),
            ms(r.stacks.shipped_steady),
            ms(r.stacks.compact_cold),
            ms(r.stacks.compact_steady),
            ms(r.panel[0].0),
            ms(r.panel[1].0),
            ms(r.panel[2].0),
            ms(r.panel[3].0),
            if i + 1 == rungs.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/graph_layout.txt", &report))
        .and_then(|()| std::fs::write("BENCH_graph_layout.json", &json));
    if let Err(e) = write {
        eprintln!("could not write graph_layout outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/graph_layout.txt and BENCH_graph_layout.json");
    ExitCode::SUCCESS
}
