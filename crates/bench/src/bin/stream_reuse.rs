//! Cross-query flow reuse: a warm engine (delta-patching + schedule
//! cache) versus a cold engine that rebuilds the retrieval network for
//! every query, on an 80%-overlap sliding range-query stream over the
//! paper's Table II system.
//!
//! Each stream snakes a fixed 2x5 window over the 7x7 grid: column moves
//! keep 8 of 10 buckets (80% overlap, the delta-patch case) and the
//! window periodically revisits earlier positions after the disks have
//! drained (the schedule-cache case). Both engines run the identical
//! batch; the cold engine's instance cache still rebuilds per query, so
//! the ratio isolates what cross-query reuse buys.
//!
//! ```text
//! cargo run --release -p rds-bench --bin stream_reuse -- [--queries 2000] [--streams 4] [--repeat 5]
//! ```
//!
//! Writes `results/stream_reuse.txt` (human-readable) and
//! `BENCH_stream_reuse.json` (machine-readable: ops/s, cache hit rate,
//! p95 solve latency).

use rds_core::engine::{BatchQuery, Engine};
use rds_core::network::RetrievalInstance;
use rds_core::pr::PushRelabelBinary;
use rds_core::session::{RetrievalSession, ReusePolicy};
use rds_core::spec::{SolverKind, SolverSpec};
use rds_core::verify::oracle_optimal_response;
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::model::{Disk, Site, SystemConfig};
use rds_storage::time::Micros;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Arrival spacing per stream: long enough for Table II disks to drain,
/// so revisited window positions present identical loads and can hit the
/// schedule cache.
const GAP: Micros = Micros::from_millis(100);

/// Snake a 2x5 window over the 7x7 grid: three columns per row band,
/// 80% bucket overlap on every column move.
fn window_at(step: usize) -> RangeQuery {
    let cols = [0usize, 1, 2, 1]; // forth and back: each move slides by 1
    let row = (step / cols.len()) % 6;
    RangeQuery::new(row, cols[step % cols.len()], 2, 5)
}

fn build_queries(streams: usize, total: usize) -> Vec<BatchQuery> {
    let mut queries = Vec::with_capacity(total);
    let mut k = 0usize;
    while queries.len() < total {
        for s in 0..streams {
            if queries.len() == total {
                break;
            }
            let step = k / streams;
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros(GAP.0 * step as u64),
                buckets: window_at(step + s).buckets(7),
            });
            k += 1;
        }
    }
    queries
}

/// Per-step optimality check of the warm path against the independent
/// oracle, on the loaded system the session presented the solver with —
/// the same delta/cache machinery the engine runs per shard.
fn verify_warm_stream(system: &SystemConfig, alloc: &OrthogonalAllocation, steps: usize) {
    let mut session =
        RetrievalSession::with_reuse(system, alloc, PushRelabelBinary, ReusePolicy::warm());
    for step in 0..steps {
        let arrival = Micros(GAP.0 * step as u64);
        let buckets: Vec<Bucket> = window_at(step).buckets(7);
        let loaded: Vec<Disk> = (0..system.num_disks())
            .map(|j| Disk {
                initial_load: system.disk(j).initial_load
                    + (session.current_load(j) + session.now()).saturating_sub(arrival),
                ..*system.disk(j)
            })
            .collect();
        let loaded_system = SystemConfig::new(vec![Site {
            name: "loaded".into(),
            disks: loaded,
        }]);
        let want =
            oracle_optimal_response(&RetrievalInstance::build(&loaded_system, alloc, &buckets));
        let got = session
            .submit(arrival, &buckets)
            .expect("feasible")
            .outcome
            .response_time;
        assert_eq!(got, want, "warm path lost optimality at step {step}");
    }
    let counters = session.reuse_counters();
    assert!(
        counters.delta_patches > 0,
        "stream never exercised the delta path"
    );
}

struct Run {
    elapsed: Duration,
    p95_solve_us: u64,
    cache_hits: u64,
    cache_misses: u64,
    delta_patches: u64,
}

fn run_engine(
    system: &SystemConfig,
    alloc: &OrthogonalAllocation,
    queries: &[BatchQuery],
    warm: bool,
) -> Run {
    let started = Instant::now();
    let mut spec = SolverSpec::new(SolverKind::PushRelabelBinary);
    if warm {
        spec = spec.warm_start(true).cache_capacity(32);
    }
    let builder = Engine::builder(system, alloc).solver_spec(spec);
    let mut engine = builder.build();
    let results = engine.submit_batch(queries);
    let elapsed = started.elapsed();
    assert!(results.iter().all(Result::is_ok), "infeasible query");
    let snap = engine.metrics_snapshot();
    Run {
        elapsed,
        p95_solve_us: snap.solve_latency_us.p95,
        cache_hits: snap.stats.reuse.cache_hits,
        cache_misses: snap.stats.reuse.cache_misses,
        delta_patches: snap.stats.reuse.delta_patches,
    }
}

fn main() -> ExitCode {
    let mut total = 2000usize;
    let mut streams = 4usize;
    let mut repeat = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--queries", Some(v)) => total = (v as usize).max(1),
            ("--streams", Some(v)) => streams = (v as usize).max(1),
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            _ => {
                eprintln!("usage: stream_reuse [--queries K] [--streams S] [--repeat R]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries = build_queries(streams, total);

    // Correctness first: the warm path must stay optimal per step.
    verify_warm_stream(&system, &alloc, (total / streams).clamp(4, 48));

    let mut cold = run_engine(&system, &alloc, &queries, false);
    let mut warm = run_engine(&system, &alloc, &queries, true);
    for _ in 1..repeat {
        let c = run_engine(&system, &alloc, &queries, false);
        if c.elapsed < cold.elapsed {
            cold = c;
        }
        let w = run_engine(&system, &alloc, &queries, true);
        if w.elapsed < warm.elapsed {
            warm = w;
        }
    }

    let cold_ops = total as f64 / cold.elapsed.as_secs_f64();
    let warm_ops = total as f64 / warm.elapsed.as_secs_f64();
    let speedup = warm_ops / cold_ops;
    let lookups = warm.cache_hits + warm.cache_misses;
    let hit_rate = if lookups > 0 {
        warm.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };

    let report = format!(
        "# stream_reuse — {total} queries, {streams} streams, paper Table II system (14 disks)\n\
         #\n\
         # 2x5 windows snaking over the 7x7 grid: 80% bucket overlap per column\n\
         # move, positions revisited after disk drain. Identical batch both sides;\n\
         # warm-path optimality verified per step against the oracle.\n\
         #\n\
         # rebuild: Engine, reuse off — instance rebuilt per query.\n\
         # warm:    SolverSpec::new(..).warm_start(true).cache_capacity(32)\n\
         #\n\
         # best of {repeat} runs:\n\
         rebuild_ms         {cold_ms:.3}\n\
         warm_ms            {warm_ms:.3}\n\
         speedup            {speedup:.2}x\n\
         rebuild_ops_per_s  {cold_ops:.0}\n\
         warm_ops_per_s     {warm_ops:.0}\n\
         cache_hit_rate     {hit_rate:.3}\n\
         delta_patches      {patches}\n\
         p95_solve_us_rebuild {cold_p95}\n\
         p95_solve_us_warm    {warm_p95}\n",
        cold_ms = cold.elapsed.as_secs_f64() * 1e3,
        warm_ms = warm.elapsed.as_secs_f64() * 1e3,
        patches = warm.delta_patches,
        cold_p95 = cold.p95_solve_us,
        warm_p95 = warm.p95_solve_us,
    );
    print!("{report}");

    let json = format!(
        "{{\n  \"bench\": \"stream_reuse\",\n  \"queries\": {total},\n  \"streams\": {streams},\n  \"repeat\": {repeat},\n  \"overlap_pct\": 80,\n  \"rebuild_ops_per_sec\": {cold_ops:.1},\n  \"warm_ops_per_sec\": {warm_ops:.1},\n  \"speedup\": {speedup:.3},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"delta_patches\": {patches},\n  \"p95_solve_latency_us_rebuild\": {cold_p95},\n  \"p95_solve_latency_us_warm\": {warm_p95}\n}}\n",
        hits = warm.cache_hits,
        misses = warm.cache_misses,
        patches = warm.delta_patches,
        cold_p95 = cold.p95_solve_us,
        warm_p95 = warm.p95_solve_us,
    );

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/stream_reuse.txt", &report))
        .and_then(|()| std::fs::write("BENCH_stream_reuse.json", &json));
    if let Err(e) = write {
        eprintln!("could not write stream_reuse outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/stream_reuse.txt and BENCH_stream_reuse.json");
    ExitCode::SUCCESS
}
