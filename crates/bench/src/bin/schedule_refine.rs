//! Schedule refinement: load variance and overhead at the fixed optimum.
//!
//! The binary search pins the optimal response time `t*`; any max flow
//! within budget `t*` is "the answer". This bench measures what the
//! min-cost refinement pass (`ScheduleObjective::MinMaxLoad`) buys on the
//! paper's Table II system (14 heterogeneous disks, 7x7 orthogonal
//! allocation): the first feasible flow tends to pile buckets onto a few
//! fast disks that have spare capacity at `t*`, while the refined flow
//! spreads them — at a bit-identical response time, which every query
//! asserts.
//!
//! Reported (and gated in CI at the Table II rung):
//!
//! * `variance_reduction` — mean per-disk load variance of the first
//!   feasible schedules over the refined ones (higher = flatter load);
//! * `refine_overhead` — extra wall-clock of objective-enabled solves
//!   over plain solves, as a fraction of the plain solve time.
//!
//! ```text
//! cargo run --release -p rds-bench --bin schedule_refine -- [--repeat 9] [--rounds 25]
//! ```
//!
//! Writes `results/schedule_refine.txt` and `BENCH_schedule_refine.json`.

use rds_core::network::RetrievalInstance;
use rds_core::spec::{ScheduleObjective, SolverKind, SolverSpec};
use rds_decluster::allocation::{Placement, ReplicaMap, ReplicaSource};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::experiments::{experiment, paper_example, ExperimentId};
use rds_storage::model::SystemConfig;
use rds_util::SplitMix64;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One benchmark rung: a system, an allocation and a query list.
struct Rung {
    name: &'static str,
    system: SystemConfig,
    alloc: ReplicaMap,
    queries: Vec<Vec<Bucket>>,
}

/// The paper's Table II system under load: both replicas of bucket
/// (0, 0) carry a 25 ms backlog, and every query window contains that
/// bucket. The straggler pins `t*` well above the other disks' single-
/// bucket completions, so they all have spare capacity at `t*` — the
/// freedom the first feasible flow spends piling buckets onto a few
/// disks and the refiner spends flattening them.
///
/// (The unloaded Table II system has no such freedom: at its `t*` every
/// disk capacity is tight, so plain and refined schedules coincide and
/// the variance ratio is identically 1.)
fn table2_rung() -> Rung {
    let base = paper_example();
    let orth = OrthogonalAllocation::paper_7x7();
    let hot: Vec<usize> = orth.replicas(Bucket::new(0, 0)).iter().collect();
    let mut b = SystemConfig::builder();
    for (j, d) in base.disks().iter().enumerate() {
        let extra = if hot.contains(&j) { 25 } else { 0 };
        b = b.disk_with(
            d.spec,
            d.network_delay,
            d.initial_load + rds_storage::time::Micros::from_millis(extra),
        );
    }
    let system = b.build();
    let alloc = ReplicaMap::build(&orth);
    let mut queries = Vec::new();
    for rows in 2..5usize {
        for cols in 4..7usize {
            queries.push(RangeQuery::new(0, 0, rows, cols).buckets(7));
        }
    }
    Rung {
        name: "table2_7x7_loaded",
        system,
        alloc,
        queries,
    }
}

/// A scaled heterogeneous rung (ungated, for context): Experiment 5
/// system on 12 disks, random 3x6 windows.
fn scaled_rung() -> Rung {
    let n = 12usize;
    let system = experiment(ExperimentId::Exp5, n, 0x5EF1);
    let alloc = ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite));
    let mut rng = SplitMix64::seed_from_u64(0x5EF2);
    let mut queries = Vec::new();
    for _ in 0..24usize {
        let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), 3, 6);
        queries.push(q.buckets(n));
    }
    Rung {
        name: "exp5_12",
        system,
        alloc,
        queries,
    }
}

struct RungResult {
    name: &'static str,
    queries: usize,
    variance_before: f64,
    variance_after: f64,
    variance_reduction: f64,
    plain_ms: f64,
    refined_ms: f64,
    refine_overhead: f64,
    refine_cycles: u64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One timed sample: wall time for solving every query of the rung
/// `rounds` times with `spec`, verifying each response time against
/// `want` (the plain optimum) when given. Callers alternate samples
/// between the plain and refined arms so CPU frequency drift (boost
/// decay, thermal throttling) hits both arms equally instead of
/// taxing whichever arm happens to run second.
fn time_sample(
    rung: &Rung,
    spec: &SolverSpec,
    want: Option<&[rds_storage::time::Micros]>,
    rounds: usize,
) -> Duration {
    let started = Instant::now();
    for _ in 0..rounds {
        for (i, buckets) in rung.queries.iter().enumerate() {
            let inst = RetrievalInstance::build(&rung.system, &rung.alloc, buckets);
            let outcome = spec.solve(&inst).expect("feasible instance");
            if let Some(want) = want {
                assert_eq!(
                    outcome.response_time, want[i],
                    "refined query {i} of {} lost the optimum",
                    rung.name
                );
            }
            std::hint::black_box(outcome.response_time);
        }
    }
    started.elapsed() / rounds as u32
}

fn run_rung(rung: &Rung, repeat: usize, rounds: usize) -> RungResult {
    let plain_spec = SolverSpec::new(SolverKind::PushRelabelBinary);
    let refined_spec =
        SolverSpec::new(SolverKind::PushRelabelBinary).objective(ScheduleObjective::MinMaxLoad);

    // Correctness + variance pass: every refined schedule must keep the
    // plain optimum bit-for-bit; variances are averaged over the queries.
    let mut optima = Vec::with_capacity(rung.queries.len());
    let mut variance_before = 0.0;
    let mut variance_after = 0.0;
    let mut refine_cycles = 0u64;
    for buckets in &rung.queries {
        let inst = RetrievalInstance::build(&rung.system, &rung.alloc, buckets);
        let plain = plain_spec.solve(&inst).expect("feasible instance");
        let refined = refined_spec.solve(&inst).expect("feasible instance");
        assert_eq!(refined.response_time, plain.response_time);
        assert_eq!(refined.flow_value, plain.flow_value);
        variance_before += plain.schedule.load_variance(&inst.disks);
        variance_after += refined.schedule.load_variance(&inst.disks);
        refine_cycles += refined.stats.refine_cycles;
        optima.push(plain.response_time);
    }
    variance_before /= rung.queries.len() as f64;
    variance_after /= rung.queries.len() as f64;

    // Warm caches, allocator and branch predictors before timing.
    time_sample(rung, &plain_spec, None, 1);
    time_sample(rung, &refined_spec, Some(&optima), 1);
    // Paired samples: each repeat times the two arms back-to-back, so
    // a noise burst (VM steal, clock drift) inflates both halves of
    // the pair and mostly cancels in the ratio. The overhead gate uses
    // the median pair ratio, which discards the outlier pairs a burst
    // still skews; the reported absolute times are best-of-repeat.
    let mut plain_time = Duration::MAX;
    let mut refined_time = Duration::MAX;
    let mut ratios = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let p = time_sample(rung, &plain_spec, None, rounds);
        let r = time_sample(rung, &refined_spec, Some(&optima), rounds);
        plain_time = plain_time.min(p);
        refined_time = refined_time.min(r);
        ratios.push(r.as_secs_f64() / p.as_secs_f64());
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];

    let variance_reduction = if variance_after > 1e-12 {
        variance_before / variance_after
    } else {
        f64::INFINITY
    };
    let refine_overhead = (median_ratio - 1.0).max(0.0);
    RungResult {
        name: rung.name,
        queries: rung.queries.len(),
        variance_before,
        variance_after,
        variance_reduction,
        plain_ms: ms(plain_time),
        refined_ms: ms(refined_time),
        refine_overhead,
        refine_cycles,
    }
}

fn main() -> ExitCode {
    let mut repeat = 9usize;
    let mut rounds = 25usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            ("--rounds", Some(v)) => rounds = (v as usize).max(1),
            _ => {
                eprintln!("usage: schedule_refine [--repeat R] [--rounds N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let rungs = [table2_rung(), scaled_rung()];
    let results: Vec<RungResult> = rungs.iter().map(|r| run_rung(r, repeat, rounds)).collect();
    let head = &results[0];

    let mut report = format!(
        "# schedule_refine — MinMaxLoad refinement vs first-feasible schedules.\n\
         # Every refined query keeps the plain solver's optimal response time\n\
         # bit-for-bit (asserted per solve); variance is the per-disk load\n\
         # variance (ms^2) averaged over the rung's queries.\n\
         # plain/refined: whole-rung solve time, best of {repeat} alternating\n\
         # samples x {rounds} rounds (alternation keeps CPU clock drift fair).\n\
         #\n\
         # rung        queries  var_before  var_after  reduction  plain_ms  refined_ms  overhead  cycles\n"
    );
    for r in &results {
        report.push_str(&format!(
            "{:<13} {:>6} {:>11.3} {:>10.3} {:>9.2}x {:>9.3} {:>11.3} {:>8.1}% {:>7}\n",
            r.name,
            r.queries,
            r.variance_before,
            r.variance_after,
            r.variance_reduction,
            r.plain_ms,
            r.refined_ms,
            r.refine_overhead * 100.0,
            r.refine_cycles,
        ));
    }
    report.push_str(&format!(
        "#\n\
         variance_reduction  {:.2}x   (Table II rung, gated >= 2x)\n\
         refine_overhead     {:.3}   (of plain solve time, gated <= 0.5)\n",
        head.variance_reduction, head.refine_overhead,
    ));
    print!("{report}");

    let mut json = format!(
        "{{\n  \"bench\": \"schedule_refine\",\n  \"repeat\": {repeat},\n  \"rounds\": {rounds},\n  \"variance_before\": {:.4},\n  \"variance_after\": {:.4},\n  \"variance_reduction\": {:.3},\n  \"refine_overhead\": {:.4},\n  \"responses_equal\": true,\n  \"rungs\": [\n",
        head.variance_before, head.variance_after, head.variance_reduction, head.refine_overhead,
    );
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rung\": \"{}\", \"queries\": {}, \"variance_before\": {:.4}, \"variance_after\": {:.4}, \"variance_reduction\": {:.3}, \"plain_ms\": {:.4}, \"refined_ms\": {:.4}, \"refine_overhead\": {:.4}, \"refine_cycles\": {}}}{}\n",
            r.name,
            r.queries,
            r.variance_before,
            r.variance_after,
            r.variance_reduction,
            r.plain_ms,
            r.refined_ms,
            r.refine_overhead,
            r.refine_cycles,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/schedule_refine.txt", &report))
        .and_then(|()| std::fs::write("BENCH_schedule_refine.json", &json));
    if let Err(e) = write {
        eprintln!("could not write schedule_refine outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/schedule_refine.txt and BENCH_schedule_refine.json");
    ExitCode::SUCCESS
}
