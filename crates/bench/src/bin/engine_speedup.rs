//! Repeated-query throughput: reusable workspaces + in-place instance
//! rebuilds (the `Engine` path) versus the naive clone-per-solve loop that
//! rebuilds the loaded system, the retrieval network and every solver
//! buffer from scratch for each query.
//!
//! Both sides run the *same* queries through the *same* solver and produce
//! identical outcomes; only the allocation strategy differs, so the ratio
//! isolates what the workspace/engine machinery buys.
//!
//! Sampling is paired and interleaved like `span_overhead`: each of the
//! `--repeat` rounds times one naive pass and one engine pass
//! back-to-back (naive, engine, naive, engine, …), so drift in machine
//! load hits both sides equally, and the fastest round per side is kept.
//! Every round re-verifies that both sides produce bit-identical
//! response times.
//!
//! ```text
//! cargo run --release -p rds-bench --bin engine_speedup -- [--queries 1000] [--streams 4] [--repeat 5]
//! ```

use rds_core::engine::{BatchQuery, Engine};
use rds_core::network::RetrievalInstance;
use rds_core::pr::PushRelabelBinary;
use rds_core::solver::RetrievalSolver;
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::model::{Disk, Site, SystemConfig};
use rds_storage::time::Micros;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The pre-workspace session loop: per query, clone the system into a
/// loaded copy, build a fresh instance, solve in a fresh workspace.
struct ClonePerSolveSession<'a> {
    system: &'a SystemConfig,
    alloc: &'a OrthogonalAllocation,
    busy_until: Vec<Micros>,
    now: Micros,
}

impl<'a> ClonePerSolveSession<'a> {
    fn new(system: &'a SystemConfig, alloc: &'a OrthogonalAllocation) -> Self {
        ClonePerSolveSession {
            busy_until: vec![Micros::ZERO; system.num_disks()],
            system,
            alloc,
            now: Micros::ZERO,
        }
    }

    fn submit(&mut self, arrival: Micros, buckets: &[rds_decluster::query::Bucket]) -> Micros {
        self.now = arrival;
        let disks: Vec<Disk> = self
            .system
            .disks()
            .iter()
            .enumerate()
            .map(|(j, d)| Disk {
                initial_load: d.initial_load + self.busy_until[j].saturating_sub(self.now),
                ..*d
            })
            .collect();
        let loaded = SystemConfig::new(vec![Site {
            name: "session".to_string(),
            disks,
        }]);
        let inst = RetrievalInstance::build(&loaded, self.alloc, buckets);
        let outcome = PushRelabelBinary.solve(&inst).expect("feasible");
        let counts = outcome.schedule.per_disk_counts(loaded.num_disks());
        for (j, &k) in counts.iter().enumerate() {
            if k > 0 {
                let completion = arrival + loaded.disk(j).completion_time(k);
                self.busy_until[j] = self.busy_until[j].max(completion);
            }
        }
        outcome.response_time
    }
}

fn build_queries(streams: usize, total: usize) -> Vec<BatchQuery> {
    let mut queries = Vec::with_capacity(total);
    let mut k = 0usize;
    while queries.len() < total {
        for s in 0..streams {
            if queries.len() == total {
                break;
            }
            // A small rotating set of hot query shapes per stream: repeats
            // are common (hot queries re-issued as their results expire),
            // occasionally the shape changes.
            let shape = (k / streams / 8) % 4;
            let (r, c) = [(3, 2), (3, 2), (2, 4), (1, 3)][shape];
            let q = RangeQuery::new(s % 7, shape % 7, r, c);
            queries.push(BatchQuery {
                stream: s,
                arrival: Micros::from_millis((k / streams) as u64),
                buckets: q.buckets(7),
            });
            k += 1;
        }
    }
    queries
}

fn main() -> ExitCode {
    let mut total = 1000usize;
    let mut streams = 4usize;
    let mut repeat = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--queries", Some(v)) => total = v as usize,
            ("--streams", Some(v)) => streams = (v as usize).max(1),
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            _ => {
                eprintln!("usage: engine_speedup [--queries K] [--streams S] [--repeat R]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let queries = build_queries(streams, total);

    /// One timed pass of the clone-per-solve loop: returns wall time and
    /// the per-query response times for the cross-side verification.
    fn run_naive(
        system: &SystemConfig,
        alloc: &OrthogonalAllocation,
        streams: usize,
        queries: &[BatchQuery],
    ) -> (Duration, Vec<Micros>) {
        let started = Instant::now();
        let mut sessions: Vec<ClonePerSolveSession> = (0..streams)
            .map(|_| ClonePerSolveSession::new(system, alloc))
            .collect();
        let times: Vec<Micros> = queries
            .iter()
            .map(|q| sessions[q.stream].submit(q.arrival, &q.buckets))
            .collect();
        (started.elapsed(), times)
    }

    /// One timed pass of the engine path on a fresh single-shard engine.
    fn run_engine(
        system: &SystemConfig,
        alloc: &OrthogonalAllocation,
        queries: &[BatchQuery],
    ) -> (Duration, Vec<Micros>) {
        let started = Instant::now();
        let mut engine = Engine::new(system, alloc, PushRelabelBinary, 1);
        let results = engine.submit_batch(queries);
        let elapsed = started.elapsed();
        let times = results
            .into_iter()
            .map(|r| r.expect("feasible").outcome.response_time)
            .collect();
        (elapsed, times)
    }

    // Warm both sides once (first-touch allocations, branch history)
    // before any timed round, and pin the golden response times.
    let (_, golden) = run_naive(&system, &alloc, streams, &queries);
    let (_, warm) = run_engine(&system, &alloc, &queries);
    assert_eq!(golden, warm, "engine and clone-per-solve disagree");

    // Paired interleaved rounds (naive, engine, naive, engine, …): drift
    // in machine load hits both sides equally; keep the fastest round of
    // each and re-verify outcomes every round.
    let mut best_naive = Duration::MAX;
    let mut best_engine = Duration::MAX;
    for _ in 0..repeat {
        for engine_side in [false, true] {
            let (elapsed, times) = if engine_side {
                run_engine(&system, &alloc, &queries)
            } else {
                run_naive(&system, &alloc, streams, &queries)
            };
            assert_eq!(times, golden, "round outcomes drifted");
            std::hint::black_box(times.len());
            let best = if engine_side {
                &mut best_engine
            } else {
                &mut best_naive
            };
            *best = (*best).min(elapsed);
        }
    }

    let speedup = best_naive.as_secs_f64() / best_engine.as_secs_f64();
    let report = format!(
        "# engine_speedup — {total} queries, {streams} streams, paper Table II system (14 disks)\n\
         #\n\
         # clone-per-solve: per query, clone the loaded SystemConfig, rebuild the\n\
         # retrieval network, solve in a fresh Workspace.\n\
         # engine:          Engine::submit_batch, 1 shard — cached instance patched or\n\
         # rebuilt in place, one persistent Workspace. Identical outcomes verified.\n\
         #\n\
         # best of {repeat} interleaved paired rounds per side:\n\
         clone_per_solve_ms {naive:.3}\n\
         engine_ms          {engine:.3}\n\
         speedup            {speedup:.2}x\n\
         queries_per_sec    {qps:.0}\n",
        naive = best_naive.as_secs_f64() * 1e3,
        engine = best_engine.as_secs_f64() * 1e3,
        qps = total as f64 / best_engine.as_secs_f64(),
    );
    print!("{report}");
    let json = format!(
        "{{\n  \"bench\": \"engine_speedup\",\n  \"queries\": {total},\n  \"streams\": {streams},\n  \"repeat\": {repeat},\n  \"clone_per_solve_ms\": {naive:.3},\n  \"engine_ms\": {engine:.3},\n  \"speedup\": {speedup:.3},\n  \"queries_per_sec\": {qps:.1}\n}}\n",
        naive = best_naive.as_secs_f64() * 1e3,
        engine = best_engine.as_secs_f64() * 1e3,
        qps = total as f64 / best_engine.as_secs_f64(),
    );
    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/engine_speedup.txt", &report))
        .and_then(|()| std::fs::write("BENCH_engine_speedup.json", &json));
    if let Err(e) = write {
        eprintln!("could not write engine_speedup outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/engine_speedup.txt and BENCH_engine_speedup.json");
    ExitCode::SUCCESS
}
