//! Fault sweep: response-time degradation versus the fraction of failed
//! disks.
//!
//! For each failure fraction, a seeded [`FaultInjector`] takes a uniform
//! random sample of disks offline at time zero and a fixed query batch is
//! replayed through the degraded-mode [`Engine`]. Replication absorbs
//! small outages by rerouting to surviving replicas (at a response-time
//! cost — fewer disks share the same work); once both replicas of a
//! bucket are gone the engine serves the retrievable subset and reports
//! the rest, which the sweep records as dropped buckets.
//!
//! ```text
//! cargo run --release -p rds-bench --bin fault_sweep -- [--queries 400] [--streams 6] [--seeds 10] [--steps 10]
//! ```

use rds_core::engine::{BatchQuery, Engine};
use rds_core::fault::FaultInjector;
use rds_core::pr::PushRelabelBinary;
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Query, RangeQuery};
use rds_storage::experiments::paper_example;
use rds_storage::time::Micros;
use rds_util::SplitMix64;
use std::process::ExitCode;

const GRID: usize = 7;

fn build_queries(seed: u64, total: usize, streams: usize) -> Vec<BatchQuery> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(total);
    let mut t = 0u64;
    for _ in 0..total {
        t += rng.gen_range(500..3_000u64);
        let q = RangeQuery::new(
            rng.gen_range(0..GRID),
            rng.gen_range(0..GRID),
            rng.gen_range(1..4usize),
            rng.gen_range(1..4usize),
        );
        queries.push(BatchQuery {
            stream: rng.gen_range(0..streams),
            arrival: Micros::from_micros(t),
            buckets: q.buckets(GRID),
        });
    }
    queries
}

struct SweepPoint {
    fraction: f64,
    disks_down: usize,
    /// Mean response over fully-served queries, averaged across seeds.
    mean_complete_ms: f64,
    complete: u64,
    degraded: u64,
    dropped_buckets: u64,
    infeasible: u64,
}

fn main() -> ExitCode {
    let mut total = 400usize;
    let mut streams = 6usize;
    let mut seeds = 10u64;
    let mut steps = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--queries", Some(v)) => total = v as usize,
            ("--streams", Some(v)) => streams = (v as usize).max(1),
            ("--seeds", Some(v)) => seeds = v.max(1),
            ("--steps", Some(v)) => steps = (v as usize).max(1),
            _ => {
                eprintln!("usage: fault_sweep [--queries K] [--streams S] [--seeds R] [--steps T]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();
    let n = system.num_disks();
    let queries = build_queries(0x5EED, total, streams);

    let mut points: Vec<SweepPoint> = Vec::with_capacity(steps + 1);
    for step in 0..=steps {
        let fraction = 0.5 * step as f64 / steps as f64;
        let mut sum_response = Micros::ZERO;
        let mut complete = 0u64;
        let mut degraded = 0u64;
        let mut dropped = 0u64;
        let mut infeasible = 0u64;
        let mut disks_down = 0usize;
        for seed in 0..seeds {
            let injector =
                FaultInjector::random_outages(0xD15C ^ seed, n, fraction, Micros::ZERO, None);
            disks_down = injector.events().len();
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1)
                .with_fault_injector(injector)
                .with_degraded_mode(true);
            for r in engine.submit_batch(&queries) {
                match r {
                    Ok(o) if o.is_complete() => {
                        complete += 1;
                        sum_response += o.outcome.response_time;
                    }
                    Ok(o) => {
                        degraded += 1;
                        dropped += o.unservable.len() as u64;
                    }
                    Err(_) => infeasible += 1,
                }
            }
        }
        points.push(SweepPoint {
            fraction,
            disks_down,
            mean_complete_ms: if complete > 0 {
                sum_response.as_micros() as f64 / complete as f64 / 1_000.0
            } else {
                f64::NAN
            },
            complete,
            degraded,
            dropped_buckets: dropped,
            infeasible,
        });
    }

    let baseline = points[0].mean_complete_ms;
    let mut report = format!(
        "# fault_sweep — mean optimal response time vs fraction of failed disks\n\
         # paper Table II system ({n} disks, two sites), orthogonal 7x7 allocation\n\
         # {total} queries x {seeds} outage seeds per point, degraded-mode engine,\n\
         # disks taken offline at t=0 (no recovery), PR-binary solver.\n\
         #\n\
         # complete  = queries with every bucket served (mean response over these)\n\
         # degraded  = queries answered best-effort (>=1 bucket unservable)\n\
         # dropped   = unservable buckets across all degraded queries\n\
         #\n\
         # fraction disks_down mean_complete_ms degradation complete degraded dropped infeasible\n"
    );
    for p in &points {
        report.push_str(&format!(
            "{:.2} {} {:.3} {:.3}x {} {} {} {}\n",
            p.fraction,
            p.disks_down,
            p.mean_complete_ms,
            p.mean_complete_ms / baseline,
            p.complete,
            p.degraded,
            p.dropped_buckets,
            p.infeasible,
        ));
    }
    print!("{report}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/fault_sweep.txt", &report))
    {
        eprintln!("could not write results/fault_sweep.txt: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/fault_sweep.txt");
    ExitCode::SUCCESS
}
