//! Regenerates the data series of every figure in the paper's evaluation
//! section.
//!
//! ```text
//! cargo run -p rds-bench --release --bin figures -- [--fig 5|6|7|8|9|10|summary|all]
//!     [--full] [--ns 10,20,30] [--queries 100] [--threads 2] [--seed 2012]
//! ```
//!
//! Defaults run a laptop-scale sweep; `--full` switches to the paper's
//! scale (N up to 100, 1000 queries per point — hours of runtime).

use rds_bench::figures::{self, FigureParams};
use rds_bench::report::{to_json, Table};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures [--fig 5|6|7|8|9|10|summary|all] [--full] [--json] \
         [--ns 10,20,..] [--queries K] [--threads T] [--seed S] [--fig10-n N] \
         [--fig10-queries Q]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut params = FigureParams::default();
    let mut which = "all".to_string();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => match args.next() {
                Some(v) => which = v,
                None => return usage(),
            },
            "--full" => params = FigureParams::paper_scale(),
            "--json" => json = true,
            "--ns" => match args.next().map(|v| {
                v.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(ns)) if !ns.is_empty() => params.ns = ns,
                _ => return usage(),
            },
            "--queries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(q) => params.queries = q,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => params.threads = t,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => params.seed = s,
                None => return usage(),
            },
            "--fig10-n" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => params.fig10_n = n,
                None => return usage(),
            },
            "--fig10-queries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(q) => params.fig10_queries = q,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if !json {
        println!(
            "# integrated max-flow retrieval — figure regeneration\n\
             # ns={:?} queries={} threads={} seed={}\n",
            params.ns, params.queries, params.threads, params.seed
        );
    }

    let generate = |name: &str| -> Option<Vec<Table>> {
        match name {
            "5" => Some(figures::fig5(&params)),
            "6" => Some(figures::fig6(&params)),
            "7" => Some(figures::fig7(&params)),
            "8" => Some(figures::fig8(&params)),
            "9" => Some(figures::fig9(&params)),
            "10" => Some(figures::fig10(&params)),
            "summary" => Some(figures::summary(&params)),
            other => {
                eprintln!("unknown figure: {other}");
                None
            }
        }
    };

    let names: Vec<&str> = if which == "all" {
        vec!["5", "6", "7", "8", "9", "10", "summary"]
    } else {
        vec![which.as_str()]
    };
    let mut all_tables = Vec::new();
    for name in names {
        match generate(name) {
            Some(tables) if json => all_tables.extend(tables),
            Some(tables) => {
                for t in &tables {
                    println!("{}", t.render());
                }
            }
            None => return ExitCode::FAILURE,
        }
    }
    if json {
        println!("{}", to_json(&all_tables));
    }
    ExitCode::SUCCESS
}
