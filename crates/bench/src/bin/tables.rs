//! Prints the paper's parameter tables (I-IV), the disk specifications,
//! the worked example of Table II, and a Figure 2-style pair of allocation
//! grids.

use rds_bench::report::Table;
use rds_decluster::allocation::Placement;
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::Bucket;
use rds_storage::experiments::paper_example;
use rds_storage::specs::{DiskKind, ALL_DISKS};

fn table_i() -> Table {
    let mut t = Table::new("Table I — Notation", &["Notation", "Meaning"]);
    for (n, m) in [
        ("N", "Total number of disks in the system"),
        ("|Q|", "Total number of buckets to be retrieved; query size"),
        ("c", "Number of copies for each bucket"),
        (
            "Cj",
            "Average retrieval cost of a single bucket from disk j",
        ),
        ("Dj", "Network delay to the server where disk j is located"),
        (
            "Xj",
            "Time it takes for disk j to be idle if busy, 0 otherwise",
        ),
    ] {
        t.push_row(vec![n.into(), m.into()]);
    }
    t
}

fn table_ii() -> Table {
    let sys = paper_example();
    let mut t = Table::new(
        "Table II — System parameters of the worked example",
        &["Disk j", "Cj (ms)", "Dj (ms)", "Xj (ms)", "Site"],
    );
    for (j, d) in sys.disks().iter().enumerate() {
        t.push_row(vec![
            j.to_string(),
            format!("{:.1}", d.cost().as_millis_f64()),
            format!("{:.0}", d.network_delay.as_millis_f64()),
            format!("{:.0}", d.initial_load.as_millis_f64()),
            (sys.site_of(j) + 1).to_string(),
        ]);
    }
    t
}

fn table_iii() -> Table {
    let mut t = Table::new(
        "Table III — Disk specifications",
        &["Producer", "Model", "Type", "RPM", "Time (ms)"],
    );
    for d in ALL_DISKS {
        t.push_row(vec![
            d.producer.into(),
            d.model.into(),
            match d.kind {
                DiskKind::Hdd => "HDD".into(),
                DiskKind::Ssd => "SSD".into(),
            },
            d.rpm
                .map(|r| format!("{}K", r / 1000))
                .unwrap_or("-".into()),
            format!("{:.1}", d.access_time.as_millis_f64()),
        ]);
    }
    t
}

fn table_iv() -> Table {
    let mut t = Table::new(
        "Table IV — Experiments",
        &[
            "Exp",
            "Sites",
            "Disk Prop.",
            "Site 1 Disks",
            "Site 2 Disks",
            "Delays",
            "Loads",
        ],
    );
    for (exp, prop, s1, s2, delays, loads) in [
        ("1", "hom.", "cheetah", "cheetah", "0", "0"),
        ("2", "het.", "ssd", "hdd", "0", "0"),
        ("3", "het.", "hdd", "ssd", "0", "0"),
        ("4", "het.", "ssd+hdd", "ssd+hdd", "0", "0"),
        ("5", "het.", "ssd+hdd", "ssd+hdd", "R(2,10,2)", "R(2,10,2)"),
    ] {
        t.push_row(vec![
            exp.into(),
            "2".into(),
            prop.into(),
            s1.into(),
            s2.into(),
            delays.into(),
            loads.into(),
        ]);
    }
    t
}

fn figure_2_grids() -> String {
    let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
    let mut out = String::from(
        "Figure 2 — Orthogonal allocation of a 7x7 grid on 7 disks\n\
         (left: first copy, right: second copy; each disk pair appears exactly once)\n\n",
    );
    for row in 0..7u32 {
        let left: Vec<String> = (0..7u32)
            .map(|col| alloc.f(Bucket::new(row, col)).to_string())
            .collect();
        let right: Vec<String> = (0..7u32)
            .map(|col| alloc.g(Bucket::new(row, col)).to_string())
            .collect();
        out.push_str(&format!("{}    {}\n", left.join(" "), right.join(" ")));
    }
    out
}

fn main() {
    for t in [table_i(), table_ii(), table_iii(), table_iv()] {
        println!("{}", t.render());
    }
    println!("{}", figure_2_grids());
}
