//! Response-time study: the effect of experiment parameters on the
//! *optimal response time* itself (the paper §VI-F defers this analysis to
//! its technical-report companion \[12\]; this binary reproduces the study
//! on our substrate).
//!
//! For every experiment of Table IV and every allocation scheme, prints
//! the mean optimal response time per query type and load.
//!
//! ```text
//! cargo run --release -p rds-bench --bin response_times -- [--n 16] [--queries 50] [--seed 2012]
//! ```

use rds_bench::harness::{Scheme, Workload};
use rds_bench::report::Table;
use rds_core::pr::PushRelabelBinary;
use rds_core::solver::RetrievalSolver;
use rds_decluster::load::{Load, QueryKind};
use rds_storage::experiments::ExperimentId;
use rds_storage::time::Micros;
use std::process::ExitCode;

fn mean_response_ms(
    exp: ExperimentId,
    scheme: Scheme,
    kind: QueryKind,
    load: Load,
    n: usize,
    queries: usize,
    seed: u64,
) -> f64 {
    let w = Workload::build(exp, scheme, kind, load, n, queries, seed);
    let solver = PushRelabelBinary;
    let total: Micros = w
        .instances
        .iter()
        .map(|inst| solver.solve(inst).expect("feasible instance").response_time)
        .sum();
    total.as_millis_f64() / queries as f64
}

fn main() -> ExitCode {
    let mut n = 16usize;
    let mut queries = 50usize;
    let mut seed = 2012u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--n", Some(v)) => n = v as usize,
            ("--queries", Some(v)) => queries = v as usize,
            ("--seed", Some(v)) => seed = v,
            _ => {
                eprintln!("usage: response_times [--n N] [--queries K] [--seed S]");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "# mean optimal response time (ms), N={n} per site ({} disks), {queries} queries per cell\n",
        2 * n
    );
    let cells = [
        (QueryKind::Range, Load::Load1, "Range L1"),
        (QueryKind::Range, Load::Load3, "Range L3"),
        (QueryKind::Arbitrary, Load::Load1, "Arb L1"),
        (QueryKind::Arbitrary, Load::Load2, "Arb L2"),
        (QueryKind::Arbitrary, Load::Load3, "Arb L3"),
    ];
    for exp in ExperimentId::ALL {
        let mut t = Table::new(
            format!(
                "Experiment {} — mean optimal response time (ms)",
                exp.number()
            ),
            &[
                "Scheme", "Range L1", "Range L3", "Arb L1", "Arb L2", "Arb L3",
            ],
        );
        for scheme in Scheme::ALL {
            let mut row = vec![scheme.label().to_string()];
            for &(kind, load, _) in &cells {
                let ms = mean_response_ms(exp, scheme, kind, load, n, queries, seed);
                row.push(format!("{ms:.2}"));
            }
            t.push_row(row);
        }
        println!("{}", t.render());
    }
    println!(
        "Reading guide: Exp 2/3 (one SSD site) cut response times roughly in\n\
         half versus all-HDD retrieval for balanced loads; Exp 5's random\n\
         delays and initial loads add a near-constant offset; structured\n\
         allocations win on range queries, RDA stays competitive on\n\
         arbitrary queries."
    );
    ExitCode::SUCCESS
}
