//! Span-channel overhead: serve throughput with query spans recorded
//! ([`ServeConfig::record_spans`] on, the default) versus the identical
//! workload with the span channel off, on the paper's Table II system.
//!
//! Both phases run the deterministic virtual clock, so the workers drain
//! as fast as the solver allows and wall time measures solve + span
//! cost with no pacing in the way. Each phase runs `--repeat` rounds on
//! a fresh engine and keeps the fastest round; the CI gate asserts the
//! relative overhead stays within 5%. The two runs must also produce
//! bit-identical response times — spans are observation only.
//!
//! ```text
//! cargo run --release -p rds-bench --bin span_overhead -- [--queries 2000] [--shards 2] [--repeat 5]
//! ```
//!
//! Writes `results/span_overhead.txt` and `BENCH_span_overhead.json`.

use rds_core::engine::Engine;
use rds_core::pr::PushRelabelBinary;
use rds_core::serve::{QueryRequest, ServeConfig};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::query::{Bucket, Query, RangeQuery};
use rds_storage::time::Micros;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const STREAMS: usize = 8;

/// Sliding windows over the 7x7 grid at the sizes the paper's Table II
/// experiments stress (9–25 buckets), so each solve does representative
/// work and the fixed per-query span cost is measured against it.
fn query_at(k: usize) -> Vec<Bucket> {
    let r = 3 + k % 3;
    let c = 3 + (k / 3) % 3;
    RangeQuery::new(k % (7 - r + 1), (k / 7) % (7 - c + 1), r, c).buckets(7)
}

/// One measured round: a fresh engine serves the whole mix on the
/// virtual clock; returns wall time and the per-ticket response times.
fn run_round(
    system: &rds_storage::model::SystemConfig,
    alloc: &OrthogonalAllocation,
    shards: usize,
    queries: usize,
    spans: bool,
) -> (Duration, Vec<Micros>) {
    let mut engine = Engine::new(system, alloc, PushRelabelBinary, shards);
    let config = ServeConfig::default()
        .virtual_time()
        .queue_capacity(queries.max(1))
        .record_spans(spans);
    let started = Instant::now();
    let report = engine.serve(config, |h| {
        for k in 0..queries {
            h.submit(
                QueryRequest::new(k % STREAMS, query_at(k))
                    .arriving_at(Micros::from_millis((k / STREAMS) as u64)),
            )
            .expect("bounded mix never rejects");
        }
    });
    let elapsed = started.elapsed();
    assert_eq!(report.stats.completed as usize, queries);
    assert_eq!(report.stats.errors, 0);
    let mut by_ticket: Vec<_> = report
        .unclaimed
        .iter()
        .map(|r| {
            (
                r.ticket,
                r.result
                    .as_ref()
                    .expect("feasible mix")
                    .outcome
                    .response_time,
            )
        })
        .collect();
    by_ticket.sort();
    (elapsed, by_ticket.into_iter().map(|(_, t)| t).collect())
}

fn main() -> ExitCode {
    let mut queries = 2000usize;
    let mut shards = 2usize;
    let mut repeat = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().and_then(|v| v.parse::<u64>().ok());
        match (arg.as_str(), value) {
            ("--queries", Some(v)) => queries = (v as usize).max(16),
            ("--shards", Some(v)) => shards = (v as usize).max(1),
            ("--repeat", Some(v)) => repeat = (v as usize).max(1),
            _ => {
                eprintln!("usage: span_overhead [--queries K] [--shards S] [--repeat R]");
                return ExitCode::FAILURE;
            }
        }
    }

    let system = rds_storage::experiments::paper_example();
    let alloc = OrthogonalAllocation::paper_7x7();

    // Interleave the two phases (off, on, off, on, …) so drift in machine
    // load hits both sides equally; keep the fastest round of each.
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut reference: Option<Vec<Micros>> = None;
    for _ in 0..repeat {
        for spans in [false, true] {
            let (elapsed, times) = run_round(&system, &alloc, shards, queries, spans);
            match &reference {
                None => reference = Some(times),
                Some(want) => {
                    assert_eq!(&times, want, "span recording must not change solve results")
                }
            }
            let best = if spans { &mut best_on } else { &mut best_off };
            *best = (*best).min(elapsed);
        }
    }

    let qps_off = queries as f64 / best_off.as_secs_f64();
    let qps_on = queries as f64 / best_on.as_secs_f64();
    let overhead = (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64();

    let report = format!(
        "# span_overhead — paper Table II system, {shards} shards, {STREAMS} streams\n\
         #\n\
         # {queries} queries through Engine::serve on the virtual clock,\n\
         # best of {repeat} interleaved rounds per side. `off` disables the\n\
         # span channel (ServeConfig::record_spans(false)); `on` is the\n\
         # default full pipeline: span checkout, phase marks, flight-\n\
         # recorder retention. Response times are asserted identical.\n\
         #\n\
         spans_off_qps   {qps_off:.0}\n\
         spans_on_qps    {qps_on:.0}\n\
         overhead        {overhead:.4}\n",
    );
    print!("{report}");

    let json = format!(
        "{{\n  \"bench\": \"span_overhead\",\n  \"queries\": {queries},\n  \"shards\": {shards},\n  \"streams\": {STREAMS},\n  \"repeat\": {repeat},\n  \"spans_off_qps\": {qps_off:.1},\n  \"spans_on_qps\": {qps_on:.1},\n  \"overhead\": {overhead:.4}\n}}\n",
    );

    let write = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/span_overhead.txt", &report))
        .and_then(|()| std::fs::write("BENCH_span_overhead.json", &json));
    if let Err(e) = write {
        eprintln!("could not write span_overhead outputs: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote results/span_overhead.txt and BENCH_span_overhead.json");
    ExitCode::SUCCESS
}
