//! Plain-text and JSON rendering of figure/table data.

/// A rectangular data table (one paper subplot or table).
#[derive(Clone, Debug)]
pub struct Table {
    /// Title, e.g. `"Figure 5(a) — Experiment 1, RDA, Range, Load 1"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let mut header = String::new();
        for (w, c) in widths.iter().zip(&self.columns) {
            header.push_str(&format!("{c:>w$}  "));
        }
        out.push_str(header.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(header.trim_end().len()));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                line.push_str(&format!("{cell:>w$}  "));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], indent: &str) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    format!("{indent}[{}]", cells.join(", "))
}

/// Serializes a set of tables as a JSON document (one object per table).
///
/// Hand-rolled (the workspace builds offline without serde); all values
/// are strings, so escaping covers the full format.
pub fn to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\n");
        out.push_str(&format!("    \"title\": \"{}\",\n", json_escape(&t.title)));
        out.push_str(&format!(
            "    \"columns\": {},\n",
            json_string_array(&t.columns, "")
        ));
        out.push_str("    \"rows\": [");
        for (j, row) in t.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&json_string_array(row, "      "));
        }
        if t.rows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n    ]\n");
        }
        out.push_str("  }");
    }
    out.push_str("\n]");
    out
}

/// Formats a runtime in milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a unitless ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["N", "time"]);
        t.push_row(vec!["10".into(), "1.23".into()]);
        t.push_row(vec!["100".into(), "45.60".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].ends_with("time"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn json_has_expected_structure() {
        let mut t = Table::new("J", &["a"]);
        t.push_row(vec!["1".into()]);
        let json = to_json(&[t]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"title\": \"J\""));
        assert!(json.contains("\"columns\": [\"a\"]"));
        assert!(json.contains("[\"1\"]"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let t = Table::new("quote \" and \\ slash\nline", &["c"]);
        let json = to_json(&[t]);
        assert!(json.contains("quote \\\" and \\\\ slash\\nline"));
    }

    #[test]
    fn json_of_empty_table_list() {
        assert_eq!(to_json(&[]), "[\n]");
    }

    #[test]
    fn fmt_ms_precision_tiers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.01234), "0.0123");
    }

    #[test]
    fn fmt_ratio_two_decimals() {
        assert_eq!(fmt_ratio(2.5), "2.50");
    }
}
