//! One entry point per paper figure (5-10), each regenerating the same
//! series the paper plots.
//!
//! Every figure compares solver *execution times*; all solvers are also
//! cross-checked to report the same total optimal response time per
//! workload (the validation the paper performs over its 1000-query runs,
//! §VI-F) — a mismatch panics.

use crate::harness::{measure, measure_one, Scheme, Workload};
use crate::report::{fmt_ms, fmt_ratio, Table};
use rds_core::blackbox::BlackBoxPushRelabel;
use rds_core::ff::{FordFulkersonBasic, FordFulkersonIncremental};
use rds_core::parallel::ParallelPushRelabelBinary;
use rds_core::pr::PushRelabelBinary;
use rds_core::solver::RetrievalSolver;
use rds_decluster::load::{Load, QueryKind};
use rds_storage::experiments::ExperimentId;

/// Scale parameters for a figure run.
#[derive(Clone, Debug)]
pub struct FigureParams {
    /// Grid dimensions to sweep (paper: 10..=100 step 10).
    pub ns: Vec<usize>,
    /// Queries per workload point (paper: 1000).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel solver (paper: 2).
    pub threads: usize,
    /// Grid dimension for the per-query Figure 10 (paper: 100).
    pub fig10_n: usize,
    /// Query count for Figure 10 (paper: 100).
    pub fig10_queries: usize,
}

impl Default for FigureParams {
    /// Laptop-scale defaults: same shapes, smaller sweeps.
    fn default() -> Self {
        FigureParams {
            ns: vec![10, 20, 30, 40],
            queries: 20,
            seed: 2012,
            threads: 2,
            fig10_n: 40,
            fig10_queries: 40,
        }
    }
}

impl FigureParams {
    /// Full paper-scale parameters (long-running).
    pub fn paper_scale() -> Self {
        FigureParams {
            ns: (10..=100).step_by(10).collect(),
            queries: 1000,
            seed: 2012,
            threads: 2,
            fig10_n: 100,
            fig10_queries: 100,
        }
    }
}

fn subplot_label(kind: QueryKind, load: Load) -> String {
    let k = match kind {
        QueryKind::Range => "Range",
        QueryKind::Arbitrary => "Arbitrary",
    };
    let l = match load {
        Load::Load1 => "Load 1",
        Load::Load2 => "Load 2",
        Load::Load3 => "Load 3",
    };
    format!("{k}, {l}")
}

/// Runs two solvers over one workload, asserting they find the same total
/// optimal response time, and returns their average runtimes (ms).
fn duel(a: &dyn RetrievalSolver, b: &dyn RetrievalSolver, workload: &Workload) -> (f64, f64) {
    let ma = measure(a, workload);
    let mb = measure(b, workload);
    assert_eq!(
        ma.total_response,
        mb.total_response,
        "{} and {} disagree on optimal response time",
        a.name(),
        b.name()
    );
    (ma.avg_runtime_ms, mb.avg_runtime_ms)
}

/// Figure 5 — Experiment 1 (basic problem), RDA: Ford-Fulkerson
/// (Algorithm 1) vs push-relabel (Algorithm 6) execution time.
pub fn fig5(p: &FigureParams) -> Vec<Table> {
    let subplots = [
        (QueryKind::Range, Load::Load1),
        (QueryKind::Arbitrary, Load::Load2),
        (QueryKind::Range, Load::Load3),
    ];
    subplots
        .iter()
        .enumerate()
        .map(|(i, &(kind, load))| {
            let mut t = Table::new(
                format!(
                    "Figure 5({}) — Exp 1, RDA, {} — avg runtime per query (ms)",
                    ['a', 'b', 'c'][i],
                    subplot_label(kind, load)
                ),
                &["N", "Ford-Fulkerson", "Push-relabel", "FF/PR"],
            );
            for &n in &p.ns {
                let w = Workload::build(
                    ExperimentId::Exp1,
                    Scheme::Rda,
                    kind,
                    load,
                    n,
                    p.queries,
                    p.seed ^ (n as u64),
                );
                let (ff, pr) = duel(&FordFulkersonBasic, &PushRelabelBinary, &w);
                t.push_row(vec![
                    n.to_string(),
                    fmt_ms(ff),
                    fmt_ms(pr),
                    fmt_ratio(ff / pr),
                ]);
            }
            t
        })
        .collect()
}

/// Figure 6 — Experiment 5 (generalized problem), Orthogonal: integrated
/// Ford-Fulkerson (Algorithm 2) vs push-relabel (Algorithm 6).
pub fn fig6(p: &FigureParams) -> Vec<Table> {
    let subplots = [
        (QueryKind::Arbitrary, Load::Load1),
        (QueryKind::Range, Load::Load2),
        (QueryKind::Arbitrary, Load::Load3),
    ];
    subplots
        .iter()
        .enumerate()
        .map(|(i, &(kind, load))| {
            let mut t = Table::new(
                format!(
                    "Figure 6({}) — Exp 5, Orthogonal, {} — avg runtime per query (ms)",
                    ['a', 'b', 'c'][i],
                    subplot_label(kind, load)
                ),
                &["N", "Ford-Fulkerson", "Push-relabel", "FF/PR"],
            );
            for &n in &p.ns {
                let w = Workload::build(
                    ExperimentId::Exp5,
                    Scheme::Orthogonal,
                    kind,
                    load,
                    n,
                    p.queries,
                    p.seed ^ (n as u64),
                );
                let (ff, pr) = duel(&FordFulkersonIncremental, &PushRelabelBinary, &w);
                t.push_row(vec![
                    n.to_string(),
                    fmt_ms(ff),
                    fmt_ms(pr),
                    fmt_ratio(ff / pr),
                ]);
            }
            t
        })
        .collect()
}

/// Black-box / integrated runtime-ratio sweep over every scheme, used by
/// Figures 7 and 9.
fn bb_int_ratio_table(
    title: String,
    exp: ExperimentId,
    kind: QueryKind,
    load: Load,
    p: &FigureParams,
) -> Table {
    let mut t = Table::new(title, &["N", "RDA", "Dependent", "Orthogonal"]);
    for &n in &p.ns {
        let mut row = vec![n.to_string()];
        for scheme in Scheme::ALL {
            let w = Workload::build(exp, scheme, kind, load, n, p.queries, p.seed ^ (n as u64));
            let (bb, int) = duel(&BlackBoxPushRelabel, &PushRelabelBinary, &w);
            row.push(fmt_ratio(bb / int));
        }
        t.push_row(row);
    }
    t
}

/// Figure 7 — Experiment 1: black-box / integrated push-relabel runtime
/// ratio per allocation scheme.
pub fn fig7(p: &FigureParams) -> Vec<Table> {
    let subplots = [
        (QueryKind::Range, Load::Load1),
        (QueryKind::Arbitrary, Load::Load2),
        (QueryKind::Range, Load::Load3),
    ];
    subplots
        .iter()
        .enumerate()
        .map(|(i, &(kind, load))| {
            bb_int_ratio_table(
                format!(
                    "Figure 7({}) — Exp 1, {} — black box / integrated runtime ratio",
                    ['a', 'b', 'c'][i],
                    subplot_label(kind, load)
                ),
                ExperimentId::Exp1,
                kind,
                load,
                p,
            )
        })
        .collect()
}

/// Figure 8 — Experiment 3, Arbitrary queries, Load 1: (a) black-box
/// runtime, (b) integrated runtime, (c) their ratio, per allocation scheme.
pub fn fig8(p: &FigureParams) -> Vec<Table> {
    let mut bb_t = Table::new(
        "Figure 8(a) — Exp 3, Arbitrary, Load 1 — black box runtime (ms)",
        &["N", "RDA", "Dependent", "Orthogonal"],
    );
    let mut int_t = Table::new(
        "Figure 8(b) — Exp 3, Arbitrary, Load 1 — integrated runtime (ms)",
        &["N", "RDA", "Dependent", "Orthogonal"],
    );
    let mut ratio_t = Table::new(
        "Figure 8(c) — Exp 3, Arbitrary, Load 1 — runtime ratio (bb/int)",
        &["N", "RDA", "Dependent", "Orthogonal"],
    );
    for &n in &p.ns {
        let mut bb_row = vec![n.to_string()];
        let mut int_row = vec![n.to_string()];
        let mut ratio_row = vec![n.to_string()];
        for scheme in Scheme::ALL {
            let w = Workload::build(
                ExperimentId::Exp3,
                scheme,
                QueryKind::Arbitrary,
                Load::Load1,
                n,
                p.queries,
                p.seed ^ (n as u64),
            );
            let (bb, int) = duel(&BlackBoxPushRelabel, &PushRelabelBinary, &w);
            bb_row.push(fmt_ms(bb));
            int_row.push(fmt_ms(int));
            ratio_row.push(fmt_ratio(bb / int));
        }
        bb_t.push_row(bb_row);
        int_t.push_row(int_row);
        ratio_t.push_row(ratio_row);
    }
    vec![bb_t, int_t, ratio_t]
}

/// Figure 9 — Experiment 5: black-box / integrated runtime ratio per
/// scheme, one subplot per load (arbitrary queries).
pub fn fig9(p: &FigureParams) -> Vec<Table> {
    [Load::Load1, Load::Load2, Load::Load3]
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            bb_int_ratio_table(
                format!(
                    "Figure 9({}) — Exp 5, {} — black box / integrated runtime ratio",
                    ['a', 'b', 'c'][i],
                    subplot_label(QueryKind::Arbitrary, load)
                ),
                ExperimentId::Exp5,
                QueryKind::Arbitrary,
                load,
                p,
            )
        })
        .collect()
}

/// Figure 10 — Experiment 5, fixed grid size: per-query parallel /
/// sequential runtime ratio of the integrated push-relabel.
pub fn fig10(p: &FigureParams) -> Vec<Table> {
    let subplots = [
        ("a", QueryKind::Arbitrary, Load::Load1, Scheme::Orthogonal),
        ("b", QueryKind::Range, Load::Load2, Scheme::Orthogonal),
        ("c", QueryKind::Arbitrary, Load::Load1, Scheme::Rda),
    ];
    let par = ParallelPushRelabelBinary::new(p.threads);
    subplots
        .iter()
        .map(|&(tag, kind, load, scheme)| {
            let w = Workload::build(
                ExperimentId::Exp5,
                scheme,
                kind,
                load,
                p.fig10_n,
                p.fig10_queries,
                p.seed,
            );
            let mut t = Table::new(
                format!(
                    "Figure 10({tag}) — Exp 5, {}, {}, {} disks, {} threads — runtime ratio (parallel/sequential)",
                    subplot_label(kind, load),
                    scheme.label(),
                    p.fig10_n,
                    p.threads,
                ),
                &["query", "sequential (ms)", "parallel (ms)", "par/seq"],
            );
            let mut ratio_sum = 0.0;
            for (i, inst) in w.instances.iter().enumerate() {
                let (seq_ms, seq_rt) = measure_one(&PushRelabelBinary, inst);
                let (par_ms, par_rt) = measure_one(&par, inst);
                assert_eq!(seq_rt, par_rt, "parallel solver lost optimality");
                ratio_sum += par_ms / seq_ms;
                t.push_row(vec![
                    i.to_string(),
                    fmt_ms(seq_ms),
                    fmt_ms(par_ms),
                    fmt_ratio(par_ms / seq_ms),
                ]);
            }
            t.push_row(vec![
                "avg".into(),
                String::new(),
                String::new(),
                fmt_ratio(ratio_sum / w.instances.len().max(1) as f64),
            ]);
            t
        })
        .collect()
}

/// Headline summary: the paper's abstract-level speed-up numbers on
/// Experiment 5 (integrated vs black box; parallel vs sequential).
pub fn summary(p: &FigureParams) -> Vec<Table> {
    let mut t = Table::new(
        "Summary — Exp 5, Arbitrary Load 1, Orthogonal — speed-ups vs black box",
        &["N", "BB (ms)", "INT (ms)", "PAR (ms)", "BB/INT", "BB/PAR"],
    );
    let par = ParallelPushRelabelBinary::new(p.threads);
    for &n in &p.ns {
        let w = Workload::build(
            ExperimentId::Exp5,
            Scheme::Orthogonal,
            QueryKind::Arbitrary,
            Load::Load1,
            n,
            p.queries,
            p.seed ^ (n as u64),
        );
        let bb = measure(&BlackBoxPushRelabel, &w);
        let int = measure(&PushRelabelBinary, &w);
        let pm = measure(&par, &w);
        assert_eq!(bb.total_response, int.total_response);
        assert_eq!(bb.total_response, pm.total_response);
        t.push_row(vec![
            n.to_string(),
            fmt_ms(bb.avg_runtime_ms),
            fmt_ms(int.avg_runtime_ms),
            fmt_ms(pm.avg_runtime_ms),
            fmt_ratio(bb.avg_runtime_ms / int.avg_runtime_ms),
            fmt_ratio(bb.avg_runtime_ms / pm.avg_runtime_ms),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureParams {
        FigureParams {
            ns: vec![5],
            queries: 3,
            seed: 1,
            threads: 2,
            fig10_n: 5,
            fig10_queries: 3,
        }
    }

    #[test]
    fn fig5_produces_three_subplots() {
        let tables = fig5(&tiny());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 1);
        assert!(tables[0].title.contains("Exp 1"));
    }

    #[test]
    fn fig6_runs() {
        assert_eq!(fig6(&tiny()).len(), 3);
    }

    #[test]
    fn fig7_has_scheme_columns() {
        let t = fig7(&tiny());
        assert_eq!(t[0].columns.len(), 4);
    }

    #[test]
    fn fig8_produces_bb_int_ratio() {
        let t = fig8(&tiny());
        assert_eq!(t.len(), 3);
        assert!(t[2].title.contains("ratio"));
    }

    #[test]
    fn fig9_runs() {
        assert_eq!(fig9(&tiny()).len(), 3);
    }

    #[test]
    fn fig10_has_per_query_rows_plus_average() {
        let t = fig10(&tiny());
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].rows.len(), 3 + 1);
        assert_eq!(t[0].rows.last().unwrap()[0], "avg");
    }

    #[test]
    fn summary_runs() {
        let t = summary(&tiny());
        assert_eq!(t[0].rows.len(), 1);
    }
}
