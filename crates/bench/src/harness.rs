//! Workload construction and solver timing.
//!
//! A *workload point* is one x-axis value of a paper figure: a grid
//! dimension `n`, an experiment (Table IV), an allocation scheme, a query
//! type and a load. The harness materializes the system, the allocation
//! and a batch of query instances, then times each solver over the batch —
//! mirroring the paper's methodology ("for each value of N, 1000 queries
//! are performed", §VI-F) with a configurable query count.

use rds_core::network::RetrievalInstance;
use rds_core::solver::RetrievalSolver;
use rds_decluster::allocation::{Placement, ReplicaMap};
use rds_decluster::load::{Load, QueryGenerator, QueryKind};
use rds_decluster::orthogonal::OrthogonalAllocation;
use rds_decluster::periodic::DependentPeriodicAllocation;
use rds_decluster::query::Query;
use rds_decluster::rda::RandomDuplicateAllocation;
use rds_storage::experiments::{experiment, ExperimentId};
use rds_storage::time::Micros;
use std::time::Instant;

/// The three allocation schemes of §VI-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Random Duplicate Allocation.
    Rda,
    /// Dependent periodic allocation.
    Dependent,
    /// Orthogonal allocation.
    Orthogonal,
}

impl Scheme {
    /// All schemes in the paper's plotting order.
    pub const ALL: [Scheme; 3] = [Scheme::Rda, Scheme::Dependent, Scheme::Orthogonal];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Rda => "RDA",
            Scheme::Dependent => "Dependent",
            Scheme::Orthogonal => "Orthogonal",
        }
    }

    /// Materializes the scheme's replica map for grid dimension `n` with
    /// one copy per site (the generalized two-site setting used by every
    /// experiment in Table IV).
    pub fn build(self, n: usize, seed: u64) -> ReplicaMap {
        match self {
            Scheme::Rda => ReplicaMap::build(&RandomDuplicateAllocation::two_site(n, seed)),
            Scheme::Dependent => {
                ReplicaMap::build(&DependentPeriodicAllocation::new(n, Placement::PerSite))
            }
            Scheme::Orthogonal => {
                ReplicaMap::build(&OrthogonalAllocation::new(n, Placement::PerSite))
            }
        }
    }
}

/// One fully materialized workload point.
pub struct Workload {
    /// Grid dimension (disks per site; the system has `2n` disks).
    pub n: usize,
    /// Prebuilt retrieval instances, one per query.
    pub instances: Vec<RetrievalInstance>,
}

impl Workload {
    /// Builds `queries` retrieval instances for the given configuration.
    /// Deterministic in `seed`.
    pub fn build(
        exp: ExperimentId,
        scheme: Scheme,
        kind: QueryKind,
        load: Load,
        n: usize,
        queries: usize,
        seed: u64,
    ) -> Workload {
        let system = experiment(exp, n, seed);
        let alloc = scheme.build(n, seed.wrapping_add(1));
        let mut gen = QueryGenerator::new(n, kind, load, seed.wrapping_add(2));
        let instances = (0..queries)
            .map(|_| {
                let q = gen.next_query();
                RetrievalInstance::build(&system, &alloc, &q.buckets(n))
            })
            .collect();
        Workload { n, instances }
    }

    /// Mean query size of the batch.
    pub fn mean_query_size(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        let total: usize = self.instances.iter().map(|i| i.query_size()).sum();
        total as f64 / self.instances.len() as f64
    }
}

/// The timing result of one solver over one workload.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall-clock solve time per query, in milliseconds.
    pub avg_runtime_ms: f64,
    /// Sum of optimal response times over the batch (the paper's
    /// cross-algorithm validation quantity).
    pub total_response: Micros,
}

/// Times `solver` over every instance of `workload`.
pub fn measure(solver: &dyn RetrievalSolver, workload: &Workload) -> Measurement {
    let mut total_response = Micros::ZERO;
    let start = Instant::now();
    for inst in &workload.instances {
        let outcome = solver
            .solve(inst)
            .expect("benchmark instances are feasible");
        total_response += outcome.response_time;
    }
    let elapsed = start.elapsed();
    Measurement {
        avg_runtime_ms: elapsed.as_secs_f64() * 1e3 / workload.instances.len().max(1) as f64,
        total_response,
    }
}

/// Times `solver` on a single instance (used by the per-query Figure 10).
pub fn measure_one(solver: &dyn RetrievalSolver, inst: &RetrievalInstance) -> (f64, Micros) {
    let start = Instant::now();
    let outcome = solver
        .solve(inst)
        .expect("benchmark instances are feasible");
    (start.elapsed().as_secs_f64() * 1e3, outcome.response_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::pr::PushRelabelBinary;

    #[test]
    fn workload_builds_requested_queries() {
        let w = Workload::build(
            ExperimentId::Exp1,
            Scheme::Orthogonal,
            QueryKind::Range,
            Load::Load3,
            8,
            5,
            42,
        );
        assert_eq!(w.instances.len(), 5);
        assert!(w.mean_query_size() >= 1.0);
        assert!(w.instances.iter().all(|i| i.num_disks() == 16));
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::build(
            ExperimentId::Exp5,
            Scheme::Rda,
            QueryKind::Arbitrary,
            Load::Load2,
            6,
            3,
            7,
        );
        let b = Workload::build(
            ExperimentId::Exp5,
            Scheme::Rda,
            QueryKind::Arbitrary,
            Load::Load2,
            6,
            3,
            7,
        );
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.buckets, y.buckets);
            assert_eq!(x.disks, y.disks);
        }
    }

    #[test]
    fn measure_returns_positive_time_and_consistent_response() {
        let w = Workload::build(
            ExperimentId::Exp3,
            Scheme::Dependent,
            QueryKind::Range,
            Load::Load3,
            6,
            4,
            11,
        );
        let m1 = measure(&PushRelabelBinary, &w);
        let m2 = measure(&PushRelabelBinary, &w);
        assert!(m1.avg_runtime_ms > 0.0);
        assert_eq!(m1.total_response, m2.total_response);
    }

    #[test]
    fn all_schemes_build() {
        for scheme in Scheme::ALL {
            let map = scheme.build(5, 1);
            assert_eq!(map.grid_size(), 5);
            assert_eq!(map.num_disks(), 10);
            assert!(!scheme.label().is_empty());
        }
    }
}
