//! Criterion benches, one group per paper figure.
//!
//! Each group benchmarks the same solver pairing as its figure on a fixed
//! mid-size workload (the `figures` binary does the full sweeps; these
//! benches exist for regression tracking with statistical rigor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rds_bench::harness::{Scheme, Workload};
use rds_core::blackbox::BlackBoxPushRelabel;
use rds_core::ff::{FordFulkersonBasic, FordFulkersonIncremental};
use rds_core::parallel::ParallelPushRelabelBinary;
use rds_core::pr::{PushRelabelBinary, PushRelabelIncremental};
use rds_core::solver::RetrievalSolver;
use rds_decluster::load::{Load, QueryKind};
use rds_storage::experiments::ExperimentId;

const N: usize = 16;
const QUERIES: usize = 5;
const SEED: u64 = 2012;

fn solve_all(solver: &dyn RetrievalSolver, w: &Workload) -> u64 {
    w.instances
        .iter()
        .map(|inst| solver.solve(inst).response_time.as_micros())
        .sum()
}

fn bench_pair(
    c: &mut Criterion,
    group: &str,
    w: &Workload,
    solvers: &[(&str, &dyn RetrievalSolver)],
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (label, solver) in solvers {
        g.bench_with_input(BenchmarkId::from_parameter(label), w, |b, w| {
            b.iter(|| solve_all(*solver, w))
        });
    }
    g.finish();
}

/// Figure 5: basic problem, RDA — Algorithm 1 vs Algorithm 6.
fn fig5(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp1,
        Scheme::Rda,
        QueryKind::Range,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    bench_pair(
        c,
        "fig5_ff_vs_pr_basic",
        &w,
        &[
            ("ford-fulkerson", &FordFulkersonBasic),
            ("push-relabel", &PushRelabelBinary),
        ],
    );
}

/// Figure 6: generalized problem, Orthogonal — Algorithm 2 vs Algorithm 6.
fn fig6(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp5,
        Scheme::Orthogonal,
        QueryKind::Arbitrary,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    bench_pair(
        c,
        "fig6_ff_vs_pr_generalized",
        &w,
        &[
            ("ford-fulkerson", &FordFulkersonIncremental),
            ("push-relabel", &PushRelabelBinary),
        ],
    );
}

/// Figure 7: basic problem — black box vs integrated push-relabel.
fn fig7(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp1,
        Scheme::Orthogonal,
        QueryKind::Range,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    bench_pair(
        c,
        "fig7_bb_vs_int_basic",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
        ],
    );
}

/// Figure 8: Experiment 3 — black box vs integrated per scheme (RDA shown).
fn fig8(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp3,
        Scheme::Rda,
        QueryKind::Arbitrary,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    bench_pair(
        c,
        "fig8_bb_vs_int_exp3",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
        ],
    );
}

/// Figure 9: Experiment 5 — black box vs integrated (the headline ratio).
fn fig9(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp5,
        Scheme::Rda,
        QueryKind::Arbitrary,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    bench_pair(
        c,
        "fig9_bb_vs_int_exp5",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
            ("integrated-incremental", &PushRelabelIncremental),
        ],
    );
}

/// Figure 10: Experiment 5 — sequential vs parallel integrated solver.
fn fig10(c: &mut Criterion) {
    let w = Workload::build(
        ExperimentId::Exp5,
        Scheme::Orthogonal,
        QueryKind::Arbitrary,
        Load::Load1,
        N,
        QUERIES,
        SEED,
    );
    let par2 = ParallelPushRelabelBinary::new(2);
    bench_pair(
        c,
        "fig10_sequential_vs_parallel",
        &w,
        &[("sequential", &PushRelabelBinary), ("parallel-2t", &par2)],
    );
}

criterion_group!(figures, fig5, fig6, fig7, fig8, fig9, fig10);
criterion_main!(figures);
