//! Timing benches, one group per paper figure (`cargo bench --bench figures`).
//!
//! Each group benchmarks the same solver pairing as its figure on a fixed
//! mid-size workload (the `figures` binary does the full sweeps; these
//! benches exist for coarse regression tracking). Plain `main()` harness:
//! the workspace builds offline, without criterion.

use rds_bench::harness::{Scheme, Workload};
use rds_core::blackbox::BlackBoxPushRelabel;
use rds_core::ff::{FordFulkersonBasic, FordFulkersonIncremental};
use rds_core::parallel::ParallelPushRelabelBinary;
use rds_core::pr::{PushRelabelBinary, PushRelabelIncremental};
use rds_core::solver::RetrievalSolver;
use rds_decluster::load::{Load, QueryKind};
use rds_storage::experiments::ExperimentId;
use std::time::Instant;

const N: usize = 16;
const QUERIES: usize = 5;
const SEED: u64 = 2012;
const SAMPLES: usize = 10;

fn solve_all(solver: &dyn RetrievalSolver, w: &Workload) -> u64 {
    w.instances
        .iter()
        .map(|inst| {
            solver
                .solve(inst)
                .expect("bench instance is feasible")
                .response_time
                .as_micros()
        })
        .sum()
}

/// Times `SAMPLES` runs of each solver on `w` and prints the best run.
fn bench_pair(group: &str, w: &Workload, solvers: &[(&str, &dyn RetrievalSolver)]) {
    println!("{group}");
    for (label, solver) in solvers {
        let mut best = f64::INFINITY;
        let mut checksum = 0u64;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            checksum = checksum.wrapping_add(solve_all(*solver, w));
            let dt = start.elapsed().as_secs_f64() * 1e3;
            best = best.min(dt);
        }
        println!("  {label:<24} {best:>9.3} ms   (checksum {checksum})");
    }
}

fn workload(id: ExperimentId, scheme: Scheme, kind: QueryKind) -> Workload {
    Workload::build(id, scheme, kind, Load::Load1, N, QUERIES, SEED)
}

fn main() {
    // Figure 5: basic problem, RDA — Algorithm 1 vs Algorithm 6.
    let w = workload(ExperimentId::Exp1, Scheme::Rda, QueryKind::Range);
    bench_pair(
        "fig5_ff_vs_pr_basic",
        &w,
        &[
            ("ford-fulkerson", &FordFulkersonBasic),
            ("push-relabel", &PushRelabelBinary),
        ],
    );

    // Figure 6: generalized problem, Orthogonal — Algorithm 2 vs Algorithm 6.
    let w = workload(ExperimentId::Exp5, Scheme::Orthogonal, QueryKind::Arbitrary);
    bench_pair(
        "fig6_ff_vs_pr_generalized",
        &w,
        &[
            ("ford-fulkerson", &FordFulkersonIncremental),
            ("push-relabel", &PushRelabelBinary),
        ],
    );

    // Figure 7: basic problem — black box vs integrated push-relabel.
    let w = workload(ExperimentId::Exp1, Scheme::Orthogonal, QueryKind::Range);
    bench_pair(
        "fig7_bb_vs_int_basic",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
        ],
    );

    // Figure 8: Experiment 3 — black box vs integrated per scheme (RDA shown).
    let w = workload(ExperimentId::Exp3, Scheme::Rda, QueryKind::Arbitrary);
    bench_pair(
        "fig8_bb_vs_int_exp3",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
        ],
    );

    // Figure 9: Experiment 5 — black box vs integrated (the headline ratio).
    let w = workload(ExperimentId::Exp5, Scheme::Rda, QueryKind::Arbitrary);
    bench_pair(
        "fig9_bb_vs_int_exp5",
        &w,
        &[
            ("black-box", &BlackBoxPushRelabel),
            ("integrated", &PushRelabelBinary),
            ("integrated-incremental", &PushRelabelIncremental),
        ],
    );

    // Figure 10: Experiment 5 — sequential vs parallel integrated solver.
    let w = workload(ExperimentId::Exp5, Scheme::Orthogonal, QueryKind::Arbitrary);
    let par2 = ParallelPushRelabelBinary::new(2);
    bench_pair(
        "fig10_sequential_vs_parallel",
        &w,
        &[("sequential", &PushRelabelBinary), ("parallel-2t", &par2)],
    );
}
