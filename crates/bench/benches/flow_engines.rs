//! Ablation benches on the max-flow substrate itself.
//!
//! DESIGN.md calls out three load-bearing design choices; each gets a
//! bench:
//!
//! * heuristics — FIFO push-relabel with vs without global-relabel/gap
//!   (the paper's "exact height calculation heuristics suggested by [19]");
//! * engines — push-relabel vs Ford-Fulkerson vs Dinic on retrieval
//!   networks (why push-relabel is the right engine, §IV);
//! * conservation — `resume` after a capacity increment vs a from-scratch
//!   recomputation (the paper's core claim isolated at the engine level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rds_bench::harness::{Scheme, Workload};
use rds_core::network::RetrievalInstance;
use rds_decluster::load::{Load, QueryKind};
use rds_flow::dinic::Dinic;
use rds_flow::ford_fulkerson::ford_fulkerson;
use rds_flow::push_relabel::PushRelabel;
use rds_storage::experiments::ExperimentId;
use rds_storage::time::Micros;

const SEED: u64 = 7;

/// A mid-size retrieval network with capacities set to a feasible budget.
fn instance() -> (RetrievalInstance, Micros) {
    let w = Workload::build(
        ExperimentId::Exp5,
        Scheme::Orthogonal,
        QueryKind::Arbitrary,
        Load::Load1,
        20,
        1,
        SEED,
    );
    let inst = w.instances.into_iter().next().unwrap();
    let (_, t_max, _) = inst.budget_bounds();
    (inst, t_max)
}

fn engines(c: &mut Criterion) {
    let (inst, budget) = instance();
    let mut g = c.benchmark_group("engine_comparison");
    g.sample_size(20);
    let (s, t) = (inst.source(), inst.sink());

    g.bench_function(BenchmarkId::from_parameter("push-relabel"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = PushRelabel::new();
        b.iter(|| pr.max_flow(&mut graph, s, t))
    });
    g.bench_function(BenchmarkId::from_parameter("push-relabel-plain"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = PushRelabel::plain();
        b.iter(|| pr.max_flow(&mut graph, s, t))
    });
    g.bench_function(BenchmarkId::from_parameter("push-relabel-highest"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = rds_flow::highest_label::HighestLabelPushRelabel::new();
        b.iter(|| pr.max_flow(&mut graph, s, t))
    });
    g.bench_function(BenchmarkId::from_parameter("ford-fulkerson"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        b.iter(|| {
            graph.zero_flows();
            ford_fulkerson(&mut graph, s, t)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("dinic"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut dinic = Dinic::new();
        b.iter(|| {
            graph.zero_flows();
            dinic.max_flow(&mut graph, s, t)
        })
    });
    g.finish();
}

/// The integrated claim at engine level: after one capacity increment, a
/// conserving resume vs a from-scratch recomputation.
fn conservation(c: &mut Criterion) {
    let (inst, _) = instance();
    let (t_min, t_max, _) = inst.budget_bounds();
    let near_optimal = t_min.midpoint(t_max);
    let (s, t) = (inst.source(), inst.sink());
    let mut g = c.benchmark_group("flow_conservation");
    g.sample_size(20);

    g.bench_function(BenchmarkId::from_parameter("resume"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, near_optimal);
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut graph, s, t);
        b.iter(|| {
            // Raise every disk cap by one and resume on the existing flow.
            for &e in &inst.disk_edges {
                graph.set_cap(e, graph.cap(e) + 1);
            }
            pr.resume(&mut graph, s, t)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("from-scratch"), |b| {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, near_optimal);
        let mut pr = PushRelabel::new();
        b.iter(|| {
            for &e in &inst.disk_edges {
                graph.set_cap(e, graph.cap(e) + 1);
            }
            pr.max_flow(&mut graph, s, t)
        })
    });
    g.finish();
}

criterion_group!(flow_engines, engines, conservation);
criterion_main!(flow_engines);
