//! Ablation benches on the max-flow substrate itself
//! (`cargo bench --bench flow_engines`).
//!
//! DESIGN.md calls out three load-bearing design choices; each gets a
//! bench:
//!
//! * heuristics — FIFO push-relabel with vs without global-relabel/gap
//!   (the paper's "exact height calculation heuristics suggested by [19]");
//! * engines — push-relabel vs Ford-Fulkerson vs Dinic on retrieval
//!   networks (why push-relabel is the right engine, §IV);
//! * conservation — `resume` after a capacity increment vs a from-scratch
//!   recomputation (the paper's core claim isolated at the engine level).
//!
//! Plain `main()` harness: the workspace builds offline, without criterion.

use rds_bench::harness::{Scheme, Workload};
use rds_core::network::RetrievalInstance;
use rds_decluster::load::{Load, QueryKind};
use rds_flow::dinic::Dinic;
use rds_flow::ford_fulkerson::ford_fulkerson;
use rds_flow::push_relabel::PushRelabel;
use rds_storage::experiments::ExperimentId;
use rds_storage::time::Micros;
use std::time::Instant;

const SEED: u64 = 7;
const SAMPLES: usize = 20;

/// A mid-size retrieval network with capacities set to a feasible budget.
fn instance() -> (RetrievalInstance, Micros) {
    let w = Workload::build(
        ExperimentId::Exp5,
        Scheme::Orthogonal,
        QueryKind::Arbitrary,
        Load::Load1,
        20,
        1,
        SEED,
    );
    let inst = w.instances.into_iter().next().unwrap();
    let (_, t_max, _) = inst.budget_bounds();
    (inst, t_max)
}

/// Times `SAMPLES` runs of `f` and prints the best one.
fn bench(label: &str, mut f: impl FnMut() -> i64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0i64;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        checksum = checksum.wrapping_add(f());
        let dt = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(dt);
    }
    println!("  {label:<24} {best:>9.3} ms   (checksum {checksum})");
}

fn engines() {
    let (inst, budget) = instance();
    let (s, t) = (inst.source(), inst.sink());
    println!("engine_comparison");

    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = PushRelabel::new();
        bench("push-relabel", || pr.max_flow(&mut graph, s, t));
    }
    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = PushRelabel::plain();
        bench("push-relabel-plain", || pr.max_flow(&mut graph, s, t));
    }
    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut pr = rds_flow::highest_label::HighestLabelPushRelabel::new();
        bench("push-relabel-highest", || pr.max_flow(&mut graph, s, t));
    }
    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        bench("ford-fulkerson", || {
            graph.zero_flows();
            ford_fulkerson(&mut graph, s, t)
        });
    }
    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, budget);
        let mut dinic = Dinic::new();
        bench("dinic", || {
            graph.zero_flows();
            dinic.max_flow(&mut graph, s, t)
        });
    }
}

/// The integrated claim at engine level: after one capacity increment, a
/// conserving resume vs a from-scratch recomputation.
fn conservation() {
    let (inst, _) = instance();
    let (t_min, t_max, _) = inst.budget_bounds();
    let near_optimal = t_min.midpoint(t_max);
    let (s, t) = (inst.source(), inst.sink());
    println!("flow_conservation");

    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, near_optimal);
        let mut pr = PushRelabel::new();
        pr.max_flow(&mut graph, s, t);
        bench("resume", || {
            // Raise every disk cap by one and resume on the existing flow.
            for &e in &inst.disk_edges {
                graph.set_cap(e, graph.cap(e) + 1);
            }
            pr.resume(&mut graph, s, t)
        });
    }
    {
        let mut graph = inst.graph.clone();
        inst.set_caps_for_budget(&mut graph, near_optimal);
        let mut pr = PushRelabel::new();
        bench("from-scratch", || {
            for &e in &inst.disk_edges {
                graph.set_cap(e, graph.cap(e) + 1);
            }
            pr.max_flow(&mut graph, s, t)
        });
    }
}

fn main() {
    engines();
    conservation();
}
