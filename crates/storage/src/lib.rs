//! # rds-storage
//!
//! Storage-system model for the optimal response time retrieval problem:
//! disks, sites, network delays, initial loads, and the paper's experiment
//! configurations.
//!
//! The model follows the notation of the paper's Table I:
//!
//! | Notation | Meaning |
//! |---|---|
//! | `N`   | total number of disks in the system |
//! | `|Q|` | total number of buckets to be retrieved (query size) |
//! | `c`   | number of copies of each bucket |
//! | `C_j` | average retrieval cost of a single bucket from disk `j` |
//! | `D_j` | network delay to the server where disk `j` is located |
//! | `X_j` | time until disk `j` becomes idle (its initial load) |
//!
//! Retrieving `k` buckets from disk `j` completes at
//! `D_j + X_j + k * C_j` ([`model::Disk::completion_time`]); within a
//! response-time budget `t`, disk `j` can serve
//! `floor((t - D_j - X_j) / C_j)` buckets
//! ([`model::Disk::capacity_within`]) — this is exactly the disk-edge
//! capacity formula of the paper's Algorithm 6 (line 15).
//!
//! All times are fixed-point microseconds ([`time::Micros`]), so the
//! binary capacity scaling of Algorithm 6 terminates on exact integer
//! arithmetic with no floating-point edge cases.
//!
//! ## Example
//!
//! ```
//! use rds_storage::experiments::{experiment, ExperimentId};
//! use rds_storage::time::Micros;
//!
//! // Experiment 5 (Table IV): mixed SSD+HDD sites, random delays/loads.
//! let system = experiment(ExperimentId::Exp5, 10, 42);
//! assert_eq!(system.num_disks(), 20);
//!
//! // How many buckets can disk 0 serve within a 25 ms budget?
//! let cap = system.disk(0).capacity_within(Micros::from_millis(25));
//! assert_eq!(system.disk(0).capacity_within(system.disk(0).completion_time(cap)), cap);
//! ```

pub mod experiments;
pub mod model;
pub mod specs;
pub mod time;

pub use model::{Disk, Site, SystemConfig};
pub use specs::DiskSpec;
pub use time::Micros;
