//! Disk specifications — the paper's Table III.
//!
//! The `time` column is the average access time to read one block,
//! measured by the authors with the Ubuntu disk utility: spin-up + seek +
//! rotational latency + transfer time for HDDs, transfer time only for
//! SSDs.

use crate::time::Micros;

/// Drive technology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// Rotational hard disk drive.
    Hdd,
    /// Solid-state drive.
    Ssd,
}

/// A disk model from the paper's Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DiskSpec {
    /// Manufacturer (Table III "Producer").
    pub producer: &'static str,
    /// Model name (Table III "Model").
    pub model: &'static str,
    /// Drive technology (Table III "Type").
    pub kind: DiskKind,
    /// Spindle speed; `None` for SSDs (Table III "RPM").
    pub rpm: Option<u32>,
    /// Average single-block access time `C_j` (Table III "Time").
    pub access_time: Micros,
}

/// Seagate Barracuda, 7.2K RPM HDD, 13.2 ms.
pub const BARRACUDA: DiskSpec = DiskSpec {
    producer: "Seagate",
    model: "Barracuda",
    kind: DiskKind::Hdd,
    rpm: Some(7_200),
    access_time: Micros::from_tenths_ms(132),
};

/// Western Digital Raptor, 10K RPM HDD, 8.3 ms.
pub const RAPTOR: DiskSpec = DiskSpec {
    producer: "WD",
    model: "Raptor",
    kind: DiskKind::Hdd,
    rpm: Some(10_000),
    access_time: Micros::from_tenths_ms(83),
};

/// Seagate Cheetah, 15K RPM HDD, 6.1 ms.
pub const CHEETAH: DiskSpec = DiskSpec {
    producer: "Seagate",
    model: "Cheetah",
    kind: DiskKind::Hdd,
    rpm: Some(15_000),
    access_time: Micros::from_tenths_ms(61),
};

/// OCZ Vertex SSD, 0.5 ms.
pub const VERTEX: DiskSpec = DiskSpec {
    producer: "OCZ",
    model: "Vertex",
    kind: DiskKind::Ssd,
    rpm: None,
    access_time: Micros::from_tenths_ms(5),
};

/// Intel X25-E SSD, 0.2 ms.
pub const X25_E: DiskSpec = DiskSpec {
    producer: "Intel",
    model: "X25-E",
    kind: DiskKind::Ssd,
    rpm: None,
    access_time: Micros::from_tenths_ms(2),
};

/// The HDD group of Table IV's "disk group" column.
pub const HDDS: [DiskSpec; 3] = [BARRACUDA, RAPTOR, CHEETAH];

/// The SSD group.
pub const SSDS: [DiskSpec; 2] = [VERTEX, X25_E];

/// The combined `ssd+hdd` group.
pub const ALL_DISKS: [DiskSpec; 5] = [BARRACUDA, RAPTOR, CHEETAH, VERTEX, X25_E];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values_match_paper() {
        assert_eq!(BARRACUDA.access_time.as_millis_f64(), 13.2);
        assert_eq!(RAPTOR.access_time.as_millis_f64(), 8.3);
        assert_eq!(CHEETAH.access_time.as_millis_f64(), 6.1);
        assert_eq!(VERTEX.access_time.as_millis_f64(), 0.5);
        assert_eq!(X25_E.access_time.as_millis_f64(), 0.2);
    }

    #[test]
    fn groups_partition_by_kind() {
        assert!(HDDS.iter().all(|d| d.kind == DiskKind::Hdd));
        assert!(SSDS.iter().all(|d| d.kind == DiskKind::Ssd));
        assert_eq!(ALL_DISKS.len(), HDDS.len() + SSDS.len());
    }

    #[test]
    fn ssds_have_no_rpm() {
        assert!(SSDS.iter().all(|d| d.rpm.is_none()));
        assert!(HDDS.iter().all(|d| d.rpm.is_some()));
    }

    #[test]
    fn ssds_are_faster_than_hdds() {
        let slowest_ssd = SSDS.iter().map(|d| d.access_time).max().unwrap();
        let fastest_hdd = HDDS.iter().map(|d| d.access_time).min().unwrap();
        assert!(slowest_ssd < fastest_hdd);
    }
}
