//! Fixed-point time arithmetic.
//!
//! The paper measures every disk parameter in milliseconds with one decimal
//! digit (e.g. the Cheetah's 6.1 ms average access time). Representing
//! times as integer **microseconds** keeps all of them exact, so the binary
//! capacity-scaling loop of Algorithm 6 — which halves a time interval until
//! it is narrower than the fastest disk's per-bucket cost — terminates on
//! integer comparisons with no floating-point tolerance tuning.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative duration in integer microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0);
    /// The maximum representable duration (used like the paper's
    /// `MAXDOUBLE` sentinel).
    pub const MAX: Micros = Micros(u64::MAX);

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Micros {
        Micros(ms * 1_000)
    }

    /// Constructs from tenths of a millisecond (the paper's disk specs are
    /// given with one decimal digit, e.g. `from_tenths_ms(83)` = 8.3 ms).
    pub const fn from_tenths_ms(tenths: u64) -> Micros {
        Micros(tenths * 100)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Micros {
        Micros(us)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Micros) -> Option<Micros> {
        self.0.checked_sub(rhs.0).map(Micros)
    }

    /// Integer division by another duration (how many times `rhs` fits).
    pub fn div_duration(self, rhs: Micros) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }

    /// Midpoint of `[self, hi]`, rounding down — the `t_mid` computation of
    /// Algorithm 6 line 13 (`t_min + (t_max - t_min) * 0.5`).
    pub fn midpoint(self, hi: Micros) -> Micros {
        debug_assert!(self <= hi);
        Micros(self.0 + (hi.0 - self.0) / 2)
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// # Panics
    /// Panics on underflow in debug builds; use
    /// [`Micros::saturating_sub`] when the result may be negative.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl SubAssign for Micros {
    fn sub_assign(&mut self, rhs: Micros) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Mul<Micros> for u64 {
    type Output = Micros;
    fn mul(self, rhs: Micros) -> Micros {
        Micros(self * rhs.0)
    }
}

impl Div<u64> for Micros {
    type Output = Micros;
    fn div(self, rhs: u64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "∞");
        }
        let whole = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{whole}ms")
        } else {
            write!(f, "{whole}.{frac:03}ms")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Micros::from_millis(8), Micros(8_000));
        assert_eq!(Micros::from_tenths_ms(83), Micros(8_300));
        assert_eq!(Micros::from_micros(42), Micros(42));
    }

    #[test]
    fn arithmetic() {
        let a = Micros::from_millis(10);
        let b = Micros::from_millis(3);
        assert_eq!(a + b, Micros::from_millis(13));
        assert_eq!(a - b, Micros::from_millis(7));
        assert_eq!(a * 3, Micros::from_millis(30));
        assert_eq!(a / 2, Micros::from_millis(5));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        assert_eq!(a.checked_sub(b), Some(Micros::from_millis(7)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn div_duration_floors() {
        assert_eq!(Micros(10_000).div_duration(Micros(3_000)), 3);
        assert_eq!(Micros(9_000).div_duration(Micros(3_000)), 3);
        assert_eq!(Micros(100).div_duration(Micros(3_000)), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_duration_panics() {
        Micros(1).div_duration(Micros::ZERO);
    }

    #[test]
    fn midpoint_halves_interval() {
        let lo = Micros(10);
        let hi = Micros(20);
        assert_eq!(lo.midpoint(hi), Micros(15));
        assert_eq!(lo.midpoint(Micros(11)), Micros(10));
        assert_eq!(lo.midpoint(lo), lo);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Micros::from_tenths_ms(83).to_string(), "8.300ms");
        assert_eq!(Micros::from_millis(2).to_string(), "2ms");
        assert_eq!(Micros::MAX.to_string(), "∞");
    }

    #[test]
    fn sum_iterates() {
        let total: Micros = [Micros(1), Micros(2), Micros(3)].into_iter().sum();
        assert_eq!(total, Micros(6));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Micros(1) < Micros(2));
        assert!(Micros::MAX > Micros::from_millis(1_000_000));
    }
}
