//! The paper's experiment configurations (Table IV) and the worked example
//! of Table II.
//!
//! Every experiment uses two sites with `n` disks each (the paper's example
//! stores copy 1 on site 1 and copy 2 on site 2, and its grids have one
//! disk column per site disk). `R(2,10,2)` values — "a number among
//! {2, 4, 6, 8, 10} ms chosen randomly" — are drawn from a caller-provided
//! seed so experiment instances are reproducible.

use crate::model::{Disk, Site, SystemConfig};
use crate::specs::{self, DiskSpec};
use crate::time::Micros;
use rds_util::SplitMix64;

/// Identifier of one of the five experiments of Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Homogeneous Cheetah disks, no delays or loads (the basic problem).
    Exp1,
    /// Site 1 all-SSD, site 2 all-HDD; no delays or loads.
    Exp2,
    /// Site 1 all-HDD, site 2 all-SSD; no delays or loads.
    Exp3,
    /// Both sites mixed SSD+HDD; no delays or loads.
    Exp4,
    /// Both sites mixed SSD+HDD with random `R(2,10,2)` delays and loads.
    Exp5,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub const ALL: [ExperimentId; 5] = [
        ExperimentId::Exp1,
        ExperimentId::Exp2,
        ExperimentId::Exp3,
        ExperimentId::Exp4,
        ExperimentId::Exp5,
    ];

    /// Paper experiment number (1-5).
    pub fn number(self) -> u32 {
        match self {
            ExperimentId::Exp1 => 1,
            ExperimentId::Exp2 => 2,
            ExperimentId::Exp3 => 3,
            ExperimentId::Exp4 => 4,
            ExperimentId::Exp5 => 5,
        }
    }
}

/// Draws a value from `R(2,10,2)`: one of {2, 4, 6, 8, 10} milliseconds.
fn r_2_10_2(rng: &mut SplitMix64) -> Micros {
    Micros::from_millis(2 * rng.gen_range(1..=5u64))
}

/// Picks a random spec from a disk group (Table IV "Disks" column).
fn pick(rng: &mut SplitMix64, group: &[DiskSpec]) -> DiskSpec {
    group[rng.gen_range(0..group.len())]
}

fn site(
    name: &str,
    n: usize,
    rng: &mut SplitMix64,
    group: &[DiskSpec],
    random_delay_load: bool,
) -> Site {
    let disks = (0..n)
        .map(|_| {
            let spec = if group.len() == 1 {
                group[0]
            } else {
                pick(rng, group)
            };
            if random_delay_load {
                Disk {
                    spec,
                    network_delay: r_2_10_2(rng),
                    initial_load: r_2_10_2(rng),
                }
            } else {
                Disk::unloaded(spec)
            }
        })
        .collect();
    Site {
        name: name.to_string(),
        disks,
    }
}

/// Instantiates experiment `id` with `n` disks per site (2n total), drawing
/// any random choices from `seed`.
pub fn experiment(id: ExperimentId, n: usize, seed: u64) -> SystemConfig {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let (g1, g2, random): (&[DiskSpec], &[DiskSpec], bool) = match id {
        ExperimentId::Exp1 => (&[specs::CHEETAH], &[specs::CHEETAH], false),
        ExperimentId::Exp2 => (&specs::SSDS, &specs::HDDS, false),
        ExperimentId::Exp3 => (&specs::HDDS, &specs::SSDS, false),
        ExperimentId::Exp4 => (&specs::ALL_DISKS, &specs::ALL_DISKS, false),
        ExperimentId::Exp5 => (&specs::ALL_DISKS, &specs::ALL_DISKS, true),
    };
    SystemConfig::new(vec![
        site("site 1", n, &mut rng, g1, random),
        site("site 2", n, &mut rng, g2, random),
    ])
}

/// The worked example of Table II: 14 disks over two sites.
///
/// | Disk j | C_j (ms) | D_j (ms) | X_j (ms) |
/// |---|---|---|---|
/// | 0-6        | 8.3  | 2 | 1 |
/// | 7,8,10,13  | 6.1  | 1 | 0 |
/// | 9,11,12    | 13.2 | 1 | 0 |
pub fn paper_example() -> SystemConfig {
    let site1 = Site {
        name: "site 1".to_string(),
        disks: vec![
            Disk {
                spec: specs::RAPTOR,
                network_delay: Micros::from_millis(2),
                initial_load: Micros::from_millis(1),
            };
            7
        ],
    };
    let fast = Disk {
        spec: specs::CHEETAH,
        network_delay: Micros::from_millis(1),
        initial_load: Micros::ZERO,
    };
    let slow = Disk {
        spec: specs::BARRACUDA,
        network_delay: Micros::from_millis(1),
        initial_load: Micros::ZERO,
    };
    // Disks 7..14, i.e. site-2 locals 0..7: fast at 7,8,10,13; slow at 9,11,12.
    let site2 = Site {
        name: "site 2".to_string(),
        disks: vec![fast, fast, slow, fast, slow, slow, fast],
    };
    SystemConfig::new(vec![site1, site2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DiskKind;

    #[test]
    fn exp1_is_homogeneous_cheetah() {
        let sys = experiment(ExperimentId::Exp1, 10, 0);
        assert_eq!(sys.num_disks(), 20);
        assert!(sys.is_homogeneous_unloaded());
        assert!(sys.disks().iter().all(|d| d.spec == specs::CHEETAH));
    }

    #[test]
    fn exp2_and_exp3_are_mirrored() {
        let e2 = experiment(ExperimentId::Exp2, 8, 1);
        let e3 = experiment(ExperimentId::Exp3, 8, 1);
        assert!(e2.sites()[0]
            .disks
            .iter()
            .all(|d| d.spec.kind == DiskKind::Ssd));
        assert!(e2.sites()[1]
            .disks
            .iter()
            .all(|d| d.spec.kind == DiskKind::Hdd));
        assert!(e3.sites()[0]
            .disks
            .iter()
            .all(|d| d.spec.kind == DiskKind::Hdd));
        assert!(e3.sites()[1]
            .disks
            .iter()
            .all(|d| d.spec.kind == DiskKind::Ssd));
    }

    #[test]
    fn exp4_has_no_delays_exp5_has_delays() {
        let e4 = experiment(ExperimentId::Exp4, 20, 2);
        assert!(e4
            .disks()
            .iter()
            .all(|d| d.network_delay == Micros::ZERO && d.initial_load == Micros::ZERO));
        let e5 = experiment(ExperimentId::Exp5, 20, 2);
        assert!(e5.disks().iter().any(|d| d.network_delay > Micros::ZERO));
        // All delays/loads in {2,4,6,8,10} ms.
        for d in e5.disks() {
            let ms = d.network_delay.as_micros() / 1000;
            assert!((2..=10).contains(&ms) && ms % 2 == 0, "delay {ms}ms");
            let lms = d.initial_load.as_micros() / 1000;
            assert!((2..=10).contains(&lms) && lms % 2 == 0, "load {lms}ms");
        }
    }

    #[test]
    fn experiments_are_reproducible() {
        let a = experiment(ExperimentId::Exp5, 12, 77);
        let b = experiment(ExperimentId::Exp5, 12, 77);
        assert_eq!(a, b);
        let c = experiment(ExperimentId::Exp5, 12, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_example_matches_table_ii() {
        let sys = paper_example();
        assert_eq!(sys.num_disks(), 14);
        assert_eq!(sys.num_sites(), 2);
        for j in 0..7 {
            assert_eq!(sys.disk(j).cost(), Micros::from_tenths_ms(83));
            assert_eq!(sys.disk(j).network_delay, Micros::from_millis(2));
            assert_eq!(sys.disk(j).initial_load, Micros::from_millis(1));
        }
        for j in [7usize, 8, 10, 13] {
            assert_eq!(sys.disk(j).cost(), Micros::from_tenths_ms(61));
            assert_eq!(sys.disk(j).network_delay, Micros::from_millis(1));
            assert_eq!(sys.disk(j).initial_load, Micros::ZERO);
        }
        for j in [9usize, 11, 12] {
            assert_eq!(sys.disk(j).cost(), Micros::from_tenths_ms(132));
        }
    }

    #[test]
    fn experiment_numbers() {
        assert_eq!(ExperimentId::Exp1.number(), 1);
        assert_eq!(ExperimentId::Exp5.number(), 5);
        assert_eq!(ExperimentId::ALL.len(), 5);
    }
}
