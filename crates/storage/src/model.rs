//! System model: disks with per-disk cost/delay/load, grouped into sites.
//!
//! The generalized retrieval problem (paper §II-E) is parameterized by the
//! triple `(C_j, D_j, X_j)` per disk `j`. A [`SystemConfig`] is the flat
//! list of all disks in the system together with their site memberships;
//! all retrieval algorithms address disks by their global index.

use crate::specs::DiskSpec;
use crate::time::Micros;

/// One physical disk with its retrieval-cost parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disk {
    /// Hardware model (provides the per-bucket cost `C_j`).
    pub spec: DiskSpec,
    /// Network delay `D_j` to the site holding this disk.
    pub network_delay: Micros,
    /// Initial load `X_j`: time until the disk is idle.
    pub initial_load: Micros,
}

impl Disk {
    /// A disk with no delay and no initial load.
    pub fn unloaded(spec: DiskSpec) -> Disk {
        Disk {
            spec,
            network_delay: Micros::ZERO,
            initial_load: Micros::ZERO,
        }
    }

    /// Per-bucket retrieval cost `C_j`.
    #[inline]
    pub fn cost(&self) -> Micros {
        self.spec.access_time
    }

    /// Fixed overhead `D_j + X_j` paid before the first bucket arrives.
    #[inline]
    pub fn overhead(&self) -> Micros {
        self.network_delay + self.initial_load
    }

    /// Completion time for retrieving `k` buckets from this disk:
    /// `D_j + X_j + k * C_j`.
    #[inline]
    pub fn completion_time(&self, k: u64) -> Micros {
        self.overhead() + self.cost() * k
    }

    /// Number of buckets this disk can serve within the response-time
    /// budget `t`: `floor((t - D_j - X_j) / C_j)`, zero when `t` does not
    /// even cover the overhead. This is the disk-edge capacity formula of
    /// Algorithm 6 (line 15) and Algorithm 6 line 41.
    #[inline]
    pub fn capacity_within(&self, t: Micros) -> u64 {
        t.saturating_sub(self.overhead()).div_duration(self.cost())
    }
}

/// A group of disks behind one network endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// Human-readable label ("site 1", ...).
    pub name: String,
    /// Disks at this site, already carrying the site's network delay.
    pub disks: Vec<Disk>,
}

/// The complete storage system: every disk in every site, addressed by a
/// global disk index (site order, then site-local order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    sites: Vec<Site>,
    /// Flattened disks; `site_of[j]` gives the owning site of disk `j`.
    disks: Vec<Disk>,
    site_of: Vec<usize>,
}

/// Fluent constructor for [`SystemConfig`] — a readable alternative to
/// assembling [`Site`]/[`Disk`] literals by hand:
///
/// ```
/// use rds_storage::model::SystemConfig;
/// use rds_storage::specs::{CHEETAH, VERTEX};
/// use rds_storage::time::Micros;
///
/// let system = SystemConfig::builder()
///     .site("site 1")
///     .disks(CHEETAH, 3)
///     .site("site 2")
///     .disk_with(VERTEX, Micros::from_millis(2), Micros::ZERO)
///     .build();
/// assert_eq!(system.num_disks(), 4);
/// assert_eq!(system.num_sites(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SystemConfigBuilder {
    sites: Vec<Site>,
}

impl SystemConfigBuilder {
    /// Opens a new site; subsequent `disk*` calls add to it.
    pub fn site(mut self, name: impl Into<String>) -> Self {
        self.sites.push(Site {
            name: name.into(),
            disks: Vec::new(),
        });
        self
    }

    fn current_site(&mut self) -> &mut Site {
        if self.sites.is_empty() {
            self.sites.push(Site {
                name: "site 1".to_string(),
                disks: Vec::new(),
            });
        }
        self.sites.last_mut().expect("site pushed above")
    }

    /// Adds one unloaded, zero-delay disk to the current site (a default
    /// "site 1" is opened if none was declared).
    pub fn disk(mut self, spec: DiskSpec) -> Self {
        self.current_site().disks.push(Disk::unloaded(spec));
        self
    }

    /// Adds one disk with explicit network delay `D_j` and initial load
    /// `X_j` to the current site.
    pub fn disk_with(
        mut self,
        spec: DiskSpec,
        network_delay: Micros,
        initial_load: Micros,
    ) -> Self {
        self.current_site().disks.push(Disk {
            spec,
            network_delay,
            initial_load,
        });
        self
    }

    /// Adds `count` identical unloaded disks to the current site.
    pub fn disks(mut self, spec: DiskSpec, count: usize) -> Self {
        self.current_site()
            .disks
            .extend(std::iter::repeat_n(Disk::unloaded(spec), count));
        self
    }

    /// Finalizes the system.
    pub fn build(self) -> SystemConfig {
        SystemConfig::new(self.sites)
    }
}

impl SystemConfig {
    /// Starts a fluent [`SystemConfigBuilder`].
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Builds a system from sites.
    pub fn new(sites: Vec<Site>) -> SystemConfig {
        let mut disks = Vec::new();
        let mut site_of = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            for d in &site.disks {
                disks.push(*d);
                site_of.push(i);
            }
        }
        SystemConfig {
            sites,
            disks,
            site_of,
        }
    }

    /// A single-site homogeneous system of `n` identical unloaded disks —
    /// the *basic* retrieval problem setting (paper §II-D).
    pub fn homogeneous(spec: DiskSpec, n: usize) -> SystemConfig {
        SystemConfig::new(vec![Site {
            name: "site 1".to_string(),
            disks: vec![Disk::unloaded(spec); n],
        }])
    }

    /// Total number of disks `N`.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Number of sites.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// All disks in global index order.
    #[inline]
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// The disk with global index `j`.
    #[inline]
    pub fn disk(&self, j: usize) -> &Disk {
        &self.disks[j]
    }

    /// Site index owning disk `j`.
    #[inline]
    pub fn site_of(&self, j: usize) -> usize {
        self.site_of[j]
    }

    /// Sites in declaration order.
    #[inline]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Global index of the first disk of site `i`.
    pub fn site_disk_offset(&self, i: usize) -> usize {
        self.sites[..i].iter().map(|s| s.disks.len()).sum()
    }

    /// Whether all disks share one spec with zero delay and load (i.e. the
    /// basic problem applies and `|Q|/N` is a valid capacity lower bound).
    pub fn is_homogeneous_unloaded(&self) -> bool {
        self.disks.iter().all(|d| {
            d.spec == self.disks[0].spec
                && d.network_delay == Micros::ZERO
                && d.initial_load == Micros::ZERO
        })
    }

    /// The smallest per-bucket cost in the system (`min_speed` of
    /// Algorithm 6, lines 9-10).
    pub fn min_speed(&self) -> Micros {
        self.disks
            .iter()
            .map(|d| d.cost())
            .min()
            .expect("system has no disks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{CHEETAH, RAPTOR, VERTEX};

    fn raptor_loaded() -> Disk {
        Disk {
            spec: RAPTOR,
            network_delay: Micros::from_millis(2),
            initial_load: Micros::from_millis(1),
        }
    }

    #[test]
    fn completion_time_matches_formula() {
        // Table II row "0-6": C=8.3, D=2, X=1. Retrieving 3 buckets:
        // 2 + 1 + 3*8.3 = 27.9 ms.
        let d = raptor_loaded();
        assert_eq!(d.completion_time(3), Micros::from_tenths_ms(279));
        assert_eq!(d.completion_time(0), Micros::from_millis(3));
    }

    #[test]
    fn capacity_within_floors() {
        let d = raptor_loaded();
        // Budget 27.9 ms: exactly 3 buckets.
        assert_eq!(d.capacity_within(Micros::from_tenths_ms(279)), 3);
        // Budget 27.8 ms: only 2.
        assert_eq!(d.capacity_within(Micros::from_tenths_ms(278)), 2);
        // Budget below overhead: zero.
        assert_eq!(d.capacity_within(Micros::from_millis(2)), 0);
    }

    #[test]
    fn capacity_and_completion_are_inverse() {
        let d = raptor_loaded();
        for k in 0..50 {
            let t = d.completion_time(k);
            assert_eq!(d.capacity_within(t), k);
        }
    }

    #[test]
    fn homogeneous_detection() {
        let sys = SystemConfig::homogeneous(CHEETAH, 7);
        assert!(sys.is_homogeneous_unloaded());
        assert_eq!(sys.num_disks(), 7);
        assert_eq!(sys.num_sites(), 1);

        let het = SystemConfig::new(vec![Site {
            name: "s".into(),
            disks: vec![Disk::unloaded(CHEETAH), Disk::unloaded(VERTEX)],
        }]);
        assert!(!het.is_homogeneous_unloaded());
    }

    #[test]
    fn global_disk_indexing_spans_sites() {
        let sys = SystemConfig::new(vec![
            Site {
                name: "site 1".into(),
                disks: vec![Disk::unloaded(CHEETAH); 3],
            },
            Site {
                name: "site 2".into(),
                disks: vec![Disk::unloaded(VERTEX); 2],
            },
        ]);
        assert_eq!(sys.num_disks(), 5);
        assert_eq!(sys.site_of(0), 0);
        assert_eq!(sys.site_of(2), 0);
        assert_eq!(sys.site_of(3), 1);
        assert_eq!(sys.site_disk_offset(0), 0);
        assert_eq!(sys.site_disk_offset(1), 3);
        assert_eq!(sys.disk(3).spec, VERTEX);
    }

    #[test]
    fn min_speed_finds_fastest_disk() {
        let sys = SystemConfig::new(vec![Site {
            name: "s".into(),
            disks: vec![Disk::unloaded(CHEETAH), Disk::unloaded(VERTEX)],
        }]);
        assert_eq!(sys.min_speed(), VERTEX.access_time);
    }

    #[test]
    #[should_panic(expected = "no disks")]
    fn min_speed_panics_on_empty_system() {
        SystemConfig::new(vec![]).min_speed();
    }

    #[test]
    fn builder_matches_manual_construction() {
        let manual = SystemConfig::new(vec![
            Site {
                name: "site 1".into(),
                disks: vec![Disk::unloaded(CHEETAH); 3],
            },
            Site {
                name: "site 2".into(),
                disks: vec![
                    Disk::unloaded(VERTEX),
                    Disk {
                        spec: RAPTOR,
                        network_delay: Micros::from_millis(2),
                        initial_load: Micros::from_millis(1),
                    },
                ],
            },
        ]);
        let built = SystemConfig::builder()
            .site("site 1")
            .disks(CHEETAH, 3)
            .site("site 2")
            .disk(VERTEX)
            .disk_with(RAPTOR, Micros::from_millis(2), Micros::from_millis(1))
            .build();
        assert_eq!(built, manual);
    }

    #[test]
    fn builder_opens_default_site_when_needed() {
        let sys = SystemConfig::builder().disk(CHEETAH).disk(VERTEX).build();
        assert_eq!(sys.num_sites(), 1);
        assert_eq!(sys.sites()[0].name, "site 1");
        assert_eq!(sys.num_disks(), 2);
    }
}
