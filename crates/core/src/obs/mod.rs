//! Observability: solver-phase tracing, query spans, the flight
//! recorder, SLO burn rates and engine metrics.
//!
//! The paper's central claim — integrated solvers win by *conserving flow
//! across binary-search probes* — is invisible in end-of-run counters
//! alone. This module makes the probe timeline, per-query causal
//! timeline, per-phase work and tail latency first-class:
//!
//! * [`trace`] — a lightweight typed event tracer. Solvers, sessions and
//!   the engine emit [`trace::TraceEvent`]s through the [`trace::Tracer`]
//!   embedded in every [`crate::workspace::Workspace`]; a
//!   [`trace::TraceSink`] (such as the ring-buffer [`trace::Recorder`])
//!   receives them. With no sink installed an emit is one branch; with the
//!   `trace` Cargo feature disabled the sink machinery compiles to
//!   nothing.
//! * [`span`] — per-query causal timelines. The serving loop mints a
//!   [`span::QuerySpan`] at admission; the always-compiled span channel
//!   inside the tracer bridges coarse solver events (probes, cache hits,
//!   delta patches, refine passes, budget expiry) into the active span,
//!   so every resolved or rejected submission yields a complete
//!   admission→reply (or admission→rejection) timeline.
//! * [`recorder`] — the always-on [`recorder::FlightRecorder`]: a bounded
//!   per-shard ring of finished spans with trigger-based retention
//!   (deadline misses, shed/failed/budget-expired/degraded spans keep
//!   their full timelines; healthy spans are head-sampled) and recycled
//!   span shells, snapshot via
//!   [`crate::engine::Engine::postmortem`].
//! * [`slo`] — per-priority-class latency/availability objectives
//!   ([`slo::SloPolicy`] on [`crate::spec::SolverSpec`]) with
//!   multi-window error-budget burn rates surfaced through
//!   [`crate::serve::ServeStats`] and `rds_slo_*` metrics.
//! * [`export`] — Chrome `trace_event` JSON and a human-readable
//!   `statusz` text dump for span snapshots.
//! * [`metrics`] — monotonic counters, gauges and fixed-bucket (log2)
//!   latency histograms, with optional `{label="value"}` series and
//!   `# HELP` text, assembled into a [`metrics::MetricsRegistry`] that
//!   snapshots to plain structs and round-trips as Prometheus text or
//!   JSON. The batch [`crate::engine::Engine`] feeds per-query solve
//!   times, probes-per-solve and queue→completion times into histograms
//!   and surfaces p50/p95/p99 through
//!   [`crate::engine::Engine::metrics_snapshot`].
//!
//! ## Overhead contract
//!
//! * `trace` feature **off**: [`trace::Tracer::emit`] still forwards to
//!   the always-compiled span channel — one `Option` branch per event
//!   while no span is armed (the serving loop arms spans only around its
//!   own queries; batch and session solves never pay more than the
//!   branch). The sink machinery is dead code the optimizer removes: no
//!   allocation, no atomic.
//! * `trace` feature **on**, no sink installed (the default): the span
//!   branch plus one `Option` branch per event.
//! * Sink installed: one indirect call per event; the ring-buffer
//!   [`trace::Recorder`] never allocates after construction (old events
//!   are overwritten, per-kind counts stay exact).
//! * Span armed: bridged (coarse) events additionally cost one clock
//!   read and one bounded push into a pre-allocated buffer; hot
//!   per-operation events (augments, relabel passes, capacity
//!   increments) are never bridged. The [`recorder::FlightRecorder`]
//!   recycles span shells, so the serving hot path performs zero span
//!   allocations in steady state, and spans only observe — solve
//!   results are bit-identical with spans on or off.

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod span;
pub mod trace;
