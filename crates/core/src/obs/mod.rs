//! Observability: solver-phase tracing and engine metrics.
//!
//! The paper's central claim — integrated solvers win by *conserving flow
//! across binary-search probes* — is invisible in end-of-run counters
//! alone. This module makes the probe timeline, per-phase work and tail
//! latency first-class:
//!
//! * [`trace`] — a lightweight typed event tracer. Solvers, sessions and
//!   the engine emit [`trace::TraceEvent`]s through the [`trace::Tracer`]
//!   embedded in every [`crate::workspace::Workspace`]; a
//!   [`trace::TraceSink`] (such as the ring-buffer [`trace::Recorder`])
//!   receives them. With no sink installed an emit is one branch; with the
//!   `trace` Cargo feature disabled the whole tracer compiles to nothing.
//! * [`metrics`] — monotonic counters, gauges and fixed-bucket (log2)
//!   latency histograms, assembled into a [`metrics::MetricsRegistry`]
//!   that snapshots to plain structs and exports as Prometheus text or
//!   JSON. The batch [`crate::engine::Engine`] feeds per-query solve
//!   times, probes-per-solve and queue→completion times into histograms
//!   and surfaces p50/p95/p99 through
//!   [`crate::engine::Engine::metrics_snapshot`].
//!
//! ## Overhead contract
//!
//! * `trace` feature **off**: [`trace::Tracer::emit`] is an empty inline
//!   function; event construction is dead code the optimizer removes. No
//!   allocation, no branch, no atomic.
//! * `trace` feature **on**, no sink installed (the default): one
//!   `Option` branch per event.
//! * Sink installed: one indirect call per event; the ring-buffer
//!   [`trace::Recorder`] never allocates after construction (old events
//!   are overwritten, per-kind counts stay exact).

pub mod metrics;
pub mod trace;
