//! Typed solver-phase event tracing.
//!
//! Every [`crate::workspace::Workspace`] carries a [`Tracer`]; the solver
//! drivers, [`crate::session::SessionState`], the fault layer and the
//! batch [`crate::engine::Engine`] emit [`TraceEvent`]s through it at the
//! phase boundaries the paper's algorithms define: binary-search probes
//! (Algorithm 6 lines 12–37), augmenting-path searches (Algorithms 1–3),
//! push-relabel resumes (Algorithms 4–6), `IncrementMinCost` steps
//! (Algorithm 3), plus the serving-layer transitions added by the fault
//! and engine PRs (retries, health changes, shard batches).
//!
//! Events are small `Copy` values. Emission goes through exactly one
//! indirection — [`Tracer::emit`] — which forwards to the always-compiled
//! span channel (one `Option` branch while no
//! [`QuerySpan`] is armed) and then to the
//! feature-gated sink: compiled out entirely when the `trace` Cargo
//! feature is off, a single `Option` branch when it is on but no sink is
//! installed. See the overhead contract in [`crate::obs`].

use crate::obs::span::{PhaseKind, QuerySpan, SpanCollector};
use rds_storage::time::Micros;

/// One solver-phase event.
///
/// Marked `#[non_exhaustive]`: future PRs may add phases, so sinks must
/// tolerate unknown variants (match with a `_` arm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A solve began in some workspace (`query_size` buckets requested).
    /// Emitted by the workspace's solve prologue
    /// (`crate::workspace::Workspace::begin`), so every solver produces
    /// exactly one per solve.
    SolveStart {
        /// Number of buckets in the query.
        query_size: u32,
    },
    /// A binary-search probe of the budget range began (Algorithm 6 /
    /// black-box scaling).
    ProbeStart {
        /// The response-time budget `t_mid` being probed.
        budget: Micros,
    },
    /// The probe finished: `feasible` says whether the full flow fit the
    /// budget (infeasible probes raise `t_min`, feasible ones lower
    /// `t_max`).
    ProbeEnd {
        /// The probed budget.
        budget: Micros,
        /// Whether the probe delivered the full `|Q|` units.
        feasible: bool,
    },
    /// A successful augmenting-path search routed one unit of flow
    /// (Ford-Fulkerson solvers).
    Augment {
        /// Index of the bucket whose unit was routed, in query order.
        bucket: u32,
    },
    /// One flow-conserving push-relabel resume completed, with the
    /// push/relabel operation deltas it performed.
    RelabelPass {
        /// Push operations in this resume.
        pushes: u64,
        /// Relabel operations in this resume.
        relabels: u64,
    },
    /// One `IncrementMinCost` step raised disk-edge capacities.
    CapacityIncrement {
        /// Number of disk edges whose capacity rose (0 = exhausted).
        edges: u32,
    },
    /// The engine scheduled a replanning re-solve for an infeasible query
    /// after observing a health change at a backoff probe.
    RetryScheduled {
        /// Which retry attempt this is (1-based).
        attempt: u32,
        /// The simulated-time health probe that triggered it.
        probe: Micros,
    },
    /// The health map observed by a stream changed since its previous
    /// query (disks failed, degraded or recovered).
    HealthTransition {
        /// Order-independent digest of the new map
        /// ([`crate::fault::HealthMap::fingerprint`]).
        fingerprint: u64,
    },
    /// A best-effort degraded solve served a subset of the query.
    DegradedServe {
        /// Buckets retrieved.
        served: u32,
        /// Buckets dropped (every replica offline).
        dropped: u32,
    },
    /// One shard finished its slice of an engine batch.
    ShardBatch {
        /// Shard index.
        shard: u32,
        /// Queries the shard processed in this batch.
        queries: u32,
    },
    /// A warm workspace was delta-patched from the stream's previous
    /// query instead of rebuilt: `changed` bucket slots swapped identity
    /// and `cancelled` stale flow units were unwound through the residual
    /// network before the resume.
    DeltaPatch {
        /// Bucket slots whose identity changed in the patch.
        changed: u32,
        /// Stale flow units cancelled back to the source.
        cancelled: u32,
    },
    /// A query was answered from the stream's schedule cache without any
    /// solver work.
    CacheHit {
        /// Fingerprint of the cache key (query ⊕ health ⊕ load state).
        fingerprint: u64,
    },
    /// A min-cost refinement pass rebalanced the solved flow at the fixed
    /// optimal response time (see
    /// [`ScheduleObjective`](crate::spec::ScheduleObjective)).
    RefinePass {
        /// Negative residual cycles canceled.
        cycles: u32,
        /// Residual arcs flow was pushed along while canceling.
        moved: u32,
    },
    /// An anytime [`SolveBudget`](crate::spec::SolveBudget) expired
    /// mid-solve; the solver finalized the best feasible schedule known
    /// instead of continuing to the exact optimum.
    BudgetExpired {
        /// Response time of the schedule actually served.
        achieved: Micros,
        /// Tightest known lower bound on the optimal response time at
        /// expiry (`achieved - lower_bound` bounds the optimality gap).
        lower_bound: Micros,
    },
    /// A plane-sharing workspace staged a solve by checking out the
    /// instance's immutable CSR topology plane (Arc-shared) plus a fresh
    /// capacity/flow plane, instead of deep-copying the whole arena.
    /// Emitted only when plane sharing is enabled (the fused batch path).
    PlaneCheckout {
        /// True when the workspace already held this epoch's topology
        /// plane (steady state: the checkout copied only cap/flow values).
        shared: bool,
    },
}

/// Coarse classification of [`TraceEvent`]s, used for per-kind counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum EventKind {
    /// [`TraceEvent::SolveStart`]
    SolveStart = 0,
    /// [`TraceEvent::ProbeStart`]
    ProbeStart,
    /// [`TraceEvent::ProbeEnd`]
    ProbeEnd,
    /// [`TraceEvent::Augment`]
    Augment,
    /// [`TraceEvent::RelabelPass`]
    RelabelPass,
    /// [`TraceEvent::CapacityIncrement`]
    CapacityIncrement,
    /// [`TraceEvent::RetryScheduled`]
    RetryScheduled,
    /// [`TraceEvent::HealthTransition`]
    HealthTransition,
    /// [`TraceEvent::DegradedServe`]
    DegradedServe,
    /// [`TraceEvent::ShardBatch`]
    ShardBatch,
    /// [`TraceEvent::DeltaPatch`]
    DeltaPatch,
    /// [`TraceEvent::CacheHit`]
    CacheHit,
    /// [`TraceEvent::RefinePass`]
    RefinePass,
    /// [`TraceEvent::BudgetExpired`]
    BudgetExpired,
    /// [`TraceEvent::PlaneCheckout`]
    PlaneCheckout,
}

impl EventKind {
    /// Number of kinds (size of a per-kind counter array).
    pub const COUNT: usize = 15;

    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::SolveStart,
        EventKind::ProbeStart,
        EventKind::ProbeEnd,
        EventKind::Augment,
        EventKind::RelabelPass,
        EventKind::CapacityIncrement,
        EventKind::RetryScheduled,
        EventKind::HealthTransition,
        EventKind::DegradedServe,
        EventKind::ShardBatch,
        EventKind::DeltaPatch,
        EventKind::CacheHit,
        EventKind::RefinePass,
        EventKind::BudgetExpired,
        EventKind::PlaneCheckout,
    ];

    /// Stable snake_case name (used in reports and Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SolveStart => "solve_start",
            EventKind::ProbeStart => "probe_start",
            EventKind::ProbeEnd => "probe_end",
            EventKind::Augment => "augment",
            EventKind::RelabelPass => "relabel_pass",
            EventKind::CapacityIncrement => "capacity_increment",
            EventKind::RetryScheduled => "retry_scheduled",
            EventKind::HealthTransition => "health_transition",
            EventKind::DegradedServe => "degraded_serve",
            EventKind::ShardBatch => "shard_batch",
            EventKind::DeltaPatch => "delta_patch",
            EventKind::CacheHit => "cache_hit",
            EventKind::RefinePass => "refine_pass",
            EventKind::BudgetExpired => "budget_expired",
            EventKind::PlaneCheckout => "plane_checkout",
        }
    }
}

impl TraceEvent {
    /// The kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::SolveStart { .. } => EventKind::SolveStart,
            TraceEvent::ProbeStart { .. } => EventKind::ProbeStart,
            TraceEvent::ProbeEnd { .. } => EventKind::ProbeEnd,
            TraceEvent::Augment { .. } => EventKind::Augment,
            TraceEvent::RelabelPass { .. } => EventKind::RelabelPass,
            TraceEvent::CapacityIncrement { .. } => EventKind::CapacityIncrement,
            TraceEvent::RetryScheduled { .. } => EventKind::RetryScheduled,
            TraceEvent::HealthTransition { .. } => EventKind::HealthTransition,
            TraceEvent::DegradedServe { .. } => EventKind::DegradedServe,
            TraceEvent::ShardBatch { .. } => EventKind::ShardBatch,
            TraceEvent::DeltaPatch { .. } => EventKind::DeltaPatch,
            TraceEvent::CacheHit { .. } => EventKind::CacheHit,
            TraceEvent::RefinePass { .. } => EventKind::RefinePass,
            TraceEvent::BudgetExpired { .. } => EventKind::BudgetExpired,
            TraceEvent::PlaneCheckout { .. } => EventKind::PlaneCheckout,
        }
    }
}

/// A consumer of trace events.
///
/// Implementations must be cheap: sinks run inline on the solver hot
/// path. The provided [`Recorder`] is the canonical in-memory sink;
/// custom sinks (a logger, a test probe) implement this trait and are
/// installed with [`crate::workspace::Workspace::set_trace_sink`].
pub trait TraceSink: Send {
    /// Receives one event.
    fn record(&mut self, event: TraceEvent);
}

impl<F: FnMut(TraceEvent) + Send> TraceSink for F {
    fn record(&mut self, event: TraceEvent) {
        self(event)
    }
}

/// Fixed-capacity ring-buffer sink: keeps the most recent `capacity`
/// events and exact per-kind totals for everything ever recorded.
///
/// Never allocates after construction — when the ring is full the oldest
/// event is overwritten and [`Recorder::dropped`] grows, so long solves
/// cannot blow up memory while the per-kind counts stay exact.
#[derive(Clone, Debug)]
pub struct Recorder {
    ring: Vec<TraceEvent>,
    /// Ring capacity (fixed at construction).
    cap: usize,
    /// Index of the next write (wraps).
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Exact totals per [`EventKind`], unaffected by ring overwrites.
    counts: [u64; EventKind::COUNT],
}

impl Recorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Recorder {
        let cap = capacity.max(1);
        Recorder {
            ring: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            counts: [0; EventKind::COUNT],
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.ring.len() < self.cap {
            return self.ring.clone();
        }
        let mut out = Vec::with_capacity(self.cap);
        for i in 0..self.cap {
            out.push(self.ring[(self.head + i) % self.cap]);
        }
        out
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact total of events of `kind` ever recorded (survives ring
    /// overwrites).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Exact totals for all kinds, indexed by `EventKind as usize`.
    pub fn counts(&self) -> &[u64; EventKind::COUNT] {
        &self.counts
    }

    /// Total events ever recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Forgets retained events and totals (capacity is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.counts = [0; EventKind::COUNT];
    }

    /// Adds another recorder's exact per-kind totals into this one
    /// (retained events are not merged — ring order across recorders is
    /// undefined).
    pub fn absorb_counts(&mut self, other: &Recorder) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.dropped += other.dropped;
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        self.counts[event.kind() as usize] += 1;
        if self.ring.len() < self.cap {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// The per-workspace emission point.
///
/// Every tracer carries the always-compiled [`SpanCollector`] — the
/// channel the serving loop uses to capture per-query timelines; while
/// no span is armed it costs one `Option` branch per emit (the path the
/// `engine_speedup` and `span_overhead` benches guard). The sink half is
/// feature-gated: with `trace` on, a tracer additionally holds either
/// nothing (one more branch per emit), a [`Recorder`] (typed access
/// preserved for [`crate::engine::Engine`] scraping), or an arbitrary
/// boxed [`TraceSink`].
#[derive(Debug, Default)]
pub struct Tracer {
    #[cfg(feature = "trace")]
    sink: Sink,
    /// The always-compiled span channel (see [`crate::obs::span`]).
    spans: SpanCollector,
}

#[cfg(feature = "trace")]
#[derive(Debug, Default)]
enum Sink {
    #[default]
    None,
    Ring(Recorder),
    Custom(DynSink),
}

#[cfg(feature = "trace")]
struct DynSink(Box<dyn TraceSink>);

#[cfg(feature = "trace")]
impl std::fmt::Debug for DynSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl Tracer {
    /// A tracer with no sink (emits are branches or, feature-off,
    /// nothing).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Emits one event. The hot-path call: inline, one span-channel
    /// branch while no span is armed, plus (with the `trace` feature)
    /// one branch without a sink.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.spans.observe(&event);
        #[cfg(feature = "trace")]
        match &mut self.sink {
            Sink::None => {}
            Sink::Ring(r) => r.record(event),
            Sink::Custom(s) => s.0.record(event),
        }
        #[cfg(not(feature = "trace"))]
        let _ = event;
    }

    /// Arms `span` as the active query span: subsequent coarse emits
    /// append phases to it until [`Tracer::disarm_span`]. Called by the
    /// serving loop around each query.
    #[inline]
    pub(crate) fn arm_span(&mut self, span: QuerySpan) {
        self.spans.arm(span);
    }

    /// Removes and returns the active span (also safe after a contained
    /// solver panic — the collector survives unwinding).
    #[inline]
    pub(crate) fn disarm_span(&mut self) -> Option<QuerySpan> {
        self.spans.disarm()
    }

    /// Appends one phase to the active span (no-op while disarmed).
    /// Lets the session layer mark reuse-path decisions (rebuild, delta
    /// fallback) that have no dedicated [`TraceEvent`].
    #[inline]
    pub(crate) fn span_mark(&mut self, kind: PhaseKind, a: u64, b: u64) {
        self.spans.mark(kind, a, b);
    }

    /// Records which solver front-end took over the active span and
    /// whether it is a delta resume. Called at every
    /// `solve_in`/`resume_in` entry, so the span names the solver that
    /// actually ran (e.g. after a delta fallback).
    #[inline]
    pub(crate) fn note_solver(&mut self, name: &'static str, delta: bool) {
        self.spans.note_solver(name, delta);
    }

    /// True when events are being consumed (always false with the `trace`
    /// feature off). Use to skip *computing* expensive event payloads;
    /// plain emits don't need the check.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            !matches!(self.sink, Sink::None)
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Installs a ring-buffer [`Recorder`] of `capacity` events,
    /// replacing any existing sink. No-op without the `trace` feature.
    pub fn install_recorder(&mut self, capacity: usize) {
        #[cfg(feature = "trace")]
        {
            self.sink = Sink::Ring(Recorder::new(capacity));
        }
        #[cfg(not(feature = "trace"))]
        let _ = capacity;
    }

    /// Installs an arbitrary sink, replacing any existing one. No-op (the
    /// sink is dropped) without the `trace` feature.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        #[cfg(feature = "trace")]
        {
            self.sink = Sink::Custom(DynSink(sink));
        }
        #[cfg(not(feature = "trace"))]
        let _ = sink;
    }

    /// Removes the sink (further emits become branches/no-ops).
    pub fn disable(&mut self) {
        #[cfg(feature = "trace")]
        {
            self.sink = Sink::None;
        }
    }

    /// The installed ring recorder, if that is the current sink kind.
    pub fn recorder(&self) -> Option<&Recorder> {
        #[cfg(feature = "trace")]
        {
            match &self.sink {
                Sink::Ring(r) => Some(r),
                _ => None,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }

    /// Mutable access to the installed ring recorder.
    pub fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        #[cfg(feature = "trace")]
        {
            match &mut self.sink {
                Sink::Ring(r) => Some(r),
                _ => None,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> TraceEvent {
        TraceEvent::Augment { bucket: i }
    }

    #[test]
    fn recorder_retains_in_order_and_counts_exactly() {
        let mut r = Recorder::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.record(ev(i));
        }
        r.record(TraceEvent::ProbeStart {
            budget: Micros::from_millis(1),
        });
        // Capacity 3: the last three survive, in order.
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.events(),
            vec![
                ev(3),
                ev(4),
                TraceEvent::ProbeStart {
                    budget: Micros::from_millis(1)
                }
            ]
        );
        // Exact totals survive the overwrites.
        assert_eq!(r.count(EventKind::Augment), 5);
        assert_eq!(r.count(EventKind::ProbeStart), 1);
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn recorder_under_capacity_keeps_everything() {
        let mut r = Recorder::new(8);
        for i in 0..4 {
            r.record(ev(i));
        }
        assert_eq!(r.events(), vec![ev(0), ev(1), ev(2), ev(3)]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn absorb_counts_merges_totals() {
        let mut a = Recorder::new(2);
        let mut b = Recorder::new(2);
        a.record(ev(0));
        b.record(ev(1));
        b.record(TraceEvent::CapacityIncrement { edges: 3 });
        a.absorb_counts(&b);
        assert_eq!(a.count(EventKind::Augment), 2);
        assert_eq!(a.count(EventKind::CapacityIncrement), 1);
    }

    #[test]
    fn every_event_maps_to_its_kind() {
        let events = [
            TraceEvent::SolveStart { query_size: 1 },
            TraceEvent::ProbeStart {
                budget: Micros::ZERO,
            },
            TraceEvent::ProbeEnd {
                budget: Micros::ZERO,
                feasible: true,
            },
            TraceEvent::Augment { bucket: 0 },
            TraceEvent::RelabelPass {
                pushes: 0,
                relabels: 0,
            },
            TraceEvent::CapacityIncrement { edges: 0 },
            TraceEvent::RetryScheduled {
                attempt: 1,
                probe: Micros::ZERO,
            },
            TraceEvent::HealthTransition { fingerprint: 0 },
            TraceEvent::DegradedServe {
                served: 0,
                dropped: 0,
            },
            TraceEvent::ShardBatch {
                shard: 0,
                queries: 0,
            },
            TraceEvent::DeltaPatch {
                changed: 0,
                cancelled: 0,
            },
            TraceEvent::CacheHit { fingerprint: 0 },
            TraceEvent::RefinePass {
                cycles: 0,
                moved: 0,
            },
            TraceEvent::BudgetExpired {
                achieved: Micros::ZERO,
                lower_bound: Micros::ZERO,
            },
            TraceEvent::PlaneCheckout { shared: true },
        ];
        for (e, k) in events.iter().zip(EventKind::ALL) {
            assert_eq!(e.kind(), k);
            assert!(!k.name().is_empty());
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn tracer_routes_to_installed_sinks() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(ev(0)); // goes nowhere, must not panic
        t.install_recorder(4);
        assert!(t.enabled());
        t.emit(ev(1));
        assert_eq!(t.recorder().unwrap().len(), 1);
        t.recorder_mut().unwrap().clear();
        assert!(t.recorder().unwrap().is_empty());

        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        t.set_sink(Box::new(move |e: TraceEvent| {
            sink_seen.lock().unwrap().push(e);
        }));
        assert!(t.recorder().is_none());
        t.emit(ev(2));
        assert_eq!(seen.lock().unwrap().as_slice(), &[ev(2)]);
        t.disable();
        t.emit(ev(3));
        assert_eq!(seen.lock().unwrap().len(), 1);
    }
}
