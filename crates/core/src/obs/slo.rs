//! Per-priority-class service-level objectives and error-budget burn
//! rates.
//!
//! An [`SloPolicy`] attaches one [`SloTarget`] per
//! [`PriorityClass`] to a
//! [`SolverSpec`](crate::spec::SolverSpec): a turnaround objective with
//! a latency error budget (the tolerated fraction of responses slower
//! than the objective) and an availability error budget (the tolerated
//! fraction of submissions that fail or are rejected). Budgets are
//! parts-per-million integers so the whole policy stays `Copy + Eq +
//! Hash` like the spec that carries it.
//!
//! Burn rate is the standard multi-window SRE measure: the observed bad
//! fraction divided by the budgeted bad fraction, so `1.0` means the
//! error budget is being consumed exactly at the sustainable rate and
//! `14.4` means a 30-day budget dies in ~2 days. Each serve worker
//! records events into an [`SloTrackerSet`] of fixed absolute-time
//! buckets (no allocation, mergeable bucket-wise across workers), and
//! the serve epilogue merges them into the
//! [`SloReport`] on [`ServeStats`](crate::serve::ServeStats), exported
//! as `rds_slo_*` metrics in both the Prometheus and JSON registries.
//! Times come from the serve clock, so the math is identical under
//! [`ServeClock::Virtual`](crate::serve::ServeClock::Virtual).

use crate::serve::PriorityClass;
use rds_storage::time::Micros;

/// Objectives for one priority class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SloTarget {
    /// Turnaround objective: a response slower than this consumes
    /// latency error budget. [`Micros::ZERO`] disables latency tracking.
    pub latency: Micros,
    /// Latency error budget in parts per million of responses (0
    /// disables latency tracking).
    pub latency_budget_ppm: u32,
    /// Availability error budget in parts per million of submissions (0
    /// disables availability tracking).
    pub availability_budget_ppm: u32,
}

impl SloTarget {
    /// No objectives: the class is not tracked.
    pub const DISABLED: SloTarget = SloTarget {
        latency: Micros::ZERO,
        latency_budget_ppm: 0,
        availability_budget_ppm: 0,
    };

    /// A target with both objectives set.
    pub const fn new(
        latency: Micros,
        latency_budget_ppm: u32,
        availability_budget_ppm: u32,
    ) -> SloTarget {
        SloTarget {
            latency,
            latency_budget_ppm,
            availability_budget_ppm,
        }
    }

    /// True when the latency objective is tracked.
    pub fn tracks_latency(&self) -> bool {
        self.latency > Micros::ZERO && self.latency_budget_ppm > 0
    }

    /// True when the availability objective is tracked.
    pub fn tracks_availability(&self) -> bool {
        self.availability_budget_ppm > 0
    }

    /// True when either objective is tracked.
    pub fn enabled(&self) -> bool {
        self.tracks_latency() || self.tracks_availability()
    }
}

/// One [`SloTarget`] per priority class plus the two burn-rate windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SloPolicy {
    /// Targets indexed by `PriorityClass as usize`.
    pub targets: [SloTarget; PriorityClass::COUNT],
    /// Fast burn window (paging signal: catches sudden budget burn).
    pub fast_window: Micros,
    /// Slow burn window (ticket signal: catches slow sustained burn).
    /// Also fixes the tracker's bucket width at `slow_window / 64`.
    pub slow_window: Micros,
}

impl Default for SloPolicy {
    /// The serving defaults: Interactive 50 ms at 1% latency / 0.1%
    /// availability budget, Standard 250 ms at 5% / 1%, Batch untracked.
    fn default() -> SloPolicy {
        let mut targets = [SloTarget::DISABLED; PriorityClass::COUNT];
        targets[PriorityClass::Interactive as usize] =
            SloTarget::new(Micros::from_millis(50), 10_000, 1_000);
        targets[PriorityClass::Standard as usize] =
            SloTarget::new(Micros::from_millis(250), 50_000, 10_000);
        SloPolicy {
            targets,
            fast_window: Micros::from_millis(5 * 60 * 1000),
            slow_window: Micros::from_millis(60 * 60 * 1000),
        }
    }
}

impl SloPolicy {
    /// A policy tracking nothing (no `rds_slo_*` series are emitted).
    pub fn disabled() -> SloPolicy {
        SloPolicy {
            targets: [SloTarget::DISABLED; PriorityClass::COUNT],
            ..SloPolicy::default()
        }
    }

    /// Replaces one class's target (chainable).
    pub fn with_target(mut self, class: PriorityClass, target: SloTarget) -> SloPolicy {
        self.targets[class as usize] = target;
        self
    }

    /// Sets the two burn windows (chainable). The slow window also
    /// fixes the bucket width; keep `fast <= slow`.
    pub fn with_windows(mut self, fast: Micros, slow: Micros) -> SloPolicy {
        self.fast_window = fast;
        self.slow_window = slow;
        self
    }

    /// The target for `class`.
    pub fn target(&self, class: PriorityClass) -> SloTarget {
        self.targets[class as usize]
    }

    /// True when any class is tracked.
    pub fn enabled(&self) -> bool {
        self.targets.iter().any(|t| t.enabled())
    }
}

/// Buckets per burn tracker — the slow window's resolution.
const BUCKETS: usize = 64;

/// Fixed ring of absolute-time buckets counting (events, bad) pairs.
///
/// Bucket `i` covers absolute times `[i*width, (i+1)*width)`; a slot is
/// lazily reset when a newer absolute bucket index wraps onto it.
/// Recording and querying never allocate, and two trackers over the
/// same policy merge bucket-wise (the serve epilogue folds every
/// worker's tracker plus the rejection log into one).
#[derive(Clone, Debug)]
struct BurnTracker {
    width_us: u64,
    /// Absolute bucket index + 1 per slot (0 = never used).
    epoch: [u64; BUCKETS],
    events: [u64; BUCKETS],
    bad: [u64; BUCKETS],
}

impl BurnTracker {
    fn new(slow_window: Micros) -> BurnTracker {
        BurnTracker {
            width_us: (slow_window.0 / BUCKETS as u64).max(1),
            epoch: [0; BUCKETS],
            events: [0; BUCKETS],
            bad: [0; BUCKETS],
        }
    }

    fn record(&mut self, now: Micros, bad: bool) {
        let abs = now.0 / self.width_us + 1;
        let slot = (abs as usize) % BUCKETS;
        if self.epoch[slot] != abs {
            self.epoch[slot] = abs;
            self.events[slot] = 0;
            self.bad[slot] = 0;
        }
        self.events[slot] += 1;
        self.bad[slot] += bad as u64;
    }

    fn merge(&mut self, other: &BurnTracker) {
        for slot in 0..BUCKETS {
            if other.epoch[slot] == 0 {
                continue;
            }
            if self.epoch[slot] == other.epoch[slot] {
                self.events[slot] += other.events[slot];
                self.bad[slot] += other.bad[slot];
            } else if other.epoch[slot] > self.epoch[slot] {
                self.epoch[slot] = other.epoch[slot];
                self.events[slot] = other.events[slot];
                self.bad[slot] = other.bad[slot];
            }
        }
    }

    /// (events, bad) over the last `window` ending at `now`.
    fn window(&self, now: Micros, window: Micros) -> (u64, u64) {
        let horizon = now.0.saturating_sub(window.0) / self.width_us + 1;
        let mut events = 0;
        let mut bad = 0;
        for slot in 0..BUCKETS {
            if self.epoch[slot] >= horizon && self.epoch[slot] != 0 {
                events += self.events[slot];
                bad += self.bad[slot];
            }
        }
        (events, bad)
    }

    /// (events, bad) over every live bucket.
    fn totals(&self) -> (u64, u64) {
        let mut events = 0;
        let mut bad = 0;
        for slot in 0..BUCKETS {
            if self.epoch[slot] != 0 {
                events += self.events[slot];
                bad += self.bad[slot];
            }
        }
        (events, bad)
    }
}

/// Per-class latency + availability burn trackers for one worker (or
/// the admission-rejection log). Created from the engine's policy,
/// merged at the serve epilogue.
#[derive(Clone, Debug)]
pub struct SloTrackerSet {
    policy: SloPolicy,
    latency: [BurnTracker; PriorityClass::COUNT],
    availability: [BurnTracker; PriorityClass::COUNT],
    last_now: Micros,
}

impl Default for SloTrackerSet {
    fn default() -> SloTrackerSet {
        SloTrackerSet::new(SloPolicy::default())
    }
}

impl SloTrackerSet {
    /// An empty tracker set over `policy`.
    pub fn new(policy: SloPolicy) -> SloTrackerSet {
        let mk = || BurnTracker::new(policy.slow_window);
        SloTrackerSet {
            policy,
            latency: [mk(), mk(), mk()],
            availability: [mk(), mk(), mk()],
            last_now: Micros::ZERO,
        }
    }

    /// The policy this set tracks.
    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    /// Records one completed response: a latency event (bad when slower
    /// than the class objective) and a good availability event.
    pub fn record_response(&mut self, class: PriorityClass, now: Micros, turnaround: Micros) {
        let target = self.policy.target(class);
        if !target.enabled() {
            return;
        }
        self.last_now = self.last_now.max(now);
        let i = class as usize;
        if target.tracks_latency() {
            self.latency[i].record(now, turnaround > target.latency);
        }
        if target.tracks_availability() {
            self.availability[i].record(now, false);
        }
    }

    /// Records one failed or rejected submission: a bad availability
    /// event (latency budget is not charged — there is no response to
    /// time).
    pub fn record_unavailable(&mut self, class: PriorityClass, now: Micros) {
        let target = self.policy.target(class);
        if !target.tracks_availability() {
            return;
        }
        self.last_now = self.last_now.max(now);
        self.availability[class as usize].record(now, true);
    }

    /// Folds another tracker set (same policy) into this one. A set
    /// that recorded nothing merges as a no-op, whatever its policy —
    /// so default-constructed sets from dead workers are harmless.
    pub fn merge(&mut self, other: &SloTrackerSet) {
        if other.last_now == Micros::ZERO {
            let empty = other
                .latency
                .iter()
                .chain(other.availability.iter())
                .all(|t| t.totals().0 == 0);
            if empty {
                return;
            }
        }
        self.last_now = self.last_now.max(other.last_now);
        for i in 0..PriorityClass::COUNT {
            self.latency[i].merge(&other.latency[i]);
            self.availability[i].merge(&other.availability[i]);
        }
    }

    /// Computes the report: totals plus fast/slow-window burn rates as
    /// of the latest recorded event time.
    pub fn report(&self) -> SloReport {
        let now = self.last_now;
        let mut report = SloReport {
            policy: self.policy,
            ..SloReport::default()
        };
        for class in PriorityClass::ALL {
            let i = class as usize;
            let target = self.policy.target(class);
            let c = &mut report.classes[i];
            c.enabled = target.enabled();
            if !c.enabled {
                continue;
            }
            (c.latency_events, c.latency_violations) = self.latency[i].totals();
            (c.availability_events, c.availability_violations) = self.availability[i].totals();
            let (le_f, lb_f) = self.latency[i].window(now, self.policy.fast_window);
            let (le_s, lb_s) = self.latency[i].window(now, self.policy.slow_window);
            let (ae_f, ab_f) = self.availability[i].window(now, self.policy.fast_window);
            let (ae_s, ab_s) = self.availability[i].window(now, self.policy.slow_window);
            c.latency_burn_fast_milli = burn_milli(le_f, lb_f, target.latency_budget_ppm);
            c.latency_burn_slow_milli = burn_milli(le_s, lb_s, target.latency_budget_ppm);
            c.availability_burn_fast_milli = burn_milli(ae_f, ab_f, target.availability_budget_ppm);
            c.availability_burn_slow_milli = burn_milli(ae_s, ab_s, target.availability_budget_ppm);
        }
        report
    }
}

/// Burn rate in thousandths: `(bad/events) / (budget_ppm/1e6) * 1000`.
/// 1000 means the budget burns exactly at the sustainable rate.
fn burn_milli(events: u64, bad: u64, budget_ppm: u32) -> u64 {
    if events == 0 || budget_ppm == 0 {
        return 0;
    }
    ((bad as u128 * 1_000_000_000) / (events as u128 * budget_ppm as u128)) as u64
}

/// Error-budget state for one class (see [`SloReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassSloReport {
    /// Whether this class has an enabled target.
    pub enabled: bool,
    /// Responses measured against the latency objective.
    pub latency_events: u64,
    /// Responses slower than the objective.
    pub latency_violations: u64,
    /// Submissions measured for availability (responses + failures +
    /// rejections).
    pub availability_events: u64,
    /// Failed or rejected submissions.
    pub availability_violations: u64,
    /// Fast-window latency burn rate, in thousandths (1000 = budget
    /// burning at exactly the sustainable rate).
    pub latency_burn_fast_milli: u64,
    /// Slow-window latency burn rate, in thousandths.
    pub latency_burn_slow_milli: u64,
    /// Fast-window availability burn rate, in thousandths.
    pub availability_burn_fast_milli: u64,
    /// Slow-window availability burn rate, in thousandths.
    pub availability_burn_slow_milli: u64,
}

/// The merged SLO view carried by [`ServeStats`](crate::serve::ServeStats)
/// and exported as `rds_slo_*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloReport {
    /// The policy the run was tracked under.
    pub policy: SloPolicy,
    /// Per-class budgets and burn rates, indexed by
    /// `PriorityClass as usize`.
    pub classes: [ClassSloReport; PriorityClass::COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_bad_fraction_over_budget_fraction() {
        // 10% bad against a 1% budget: burning 10x too fast.
        assert_eq!(burn_milli(100, 10, 10_000), 10_000);
        // Exactly on budget.
        assert_eq!(burn_milli(1_000_000, 10_000, 10_000), 1_000);
        // No events or no budget: quiet zero.
        assert_eq!(burn_milli(0, 0, 10_000), 0);
        assert_eq!(burn_milli(10, 10, 0), 0);
    }

    #[test]
    fn tracker_windows_and_merge() {
        let policy = SloPolicy::default().with_windows(Micros(6_400), Micros(64_000));
        // Bucket width = 64_000 / 64 = 1_000 us.
        let mut a = SloTrackerSet::new(policy);
        let mut b = SloTrackerSet::new(policy);
        let class = PriorityClass::Interactive;
        let slow = policy.target(class).latency + Micros(1);
        // Old bad events land outside the fast window...
        for k in 0..10 {
            a.record_response(class, Micros(1_000 + k), slow);
        }
        // ...recent good events (half in each worker) inside it.
        for k in 0..5 {
            a.record_response(class, Micros(50_000 + k), Micros(1));
            b.record_response(class, Micros(50_000 + 100 + k), Micros(1));
        }
        a.merge(&b);
        let report = a.report();
        let c = report.classes[class as usize];
        assert!(c.enabled);
        assert_eq!(c.latency_events, 20);
        assert_eq!(c.latency_violations, 10);
        // Fast window (6.4ms ending at 50.1ms) sees only the 10 good
        // recent events; slow window sees everything.
        assert_eq!(c.latency_burn_fast_milli, 0);
        assert!(c.latency_burn_slow_milli > 0);
        // Batch is untracked by default.
        assert!(!report.classes[PriorityClass::Batch as usize].enabled);
    }

    #[test]
    fn unavailability_burns_availability_budget_only() {
        let mut t = SloTrackerSet::new(SloPolicy::default());
        let class = PriorityClass::Standard;
        t.record_unavailable(class, Micros(10));
        t.record_response(class, Micros(20), Micros(1));
        let c = t.report().classes[class as usize];
        assert_eq!(c.availability_events, 2);
        assert_eq!(c.availability_violations, 1);
        assert_eq!(c.latency_events, 1);
        assert_eq!(c.latency_violations, 0);
        // Default-constructed (empty) sets merge as no-ops.
        let snapshot = t.report();
        t.merge(&SloTrackerSet::default());
        assert_eq!(t.report(), snapshot);
    }
}
