//! Counters, gauges and log2 latency histograms with Prometheus/JSON
//! export.
//!
//! Flow-scheduling evaluations (e.g. Jahanjou et al., arXiv:2005.09724)
//! compare schedulers on response-time *distributions*, not means; this
//! module provides the distribution substrate. A [`Histogram`] buckets
//! values by `floor(log2(v))` — 64 fixed buckets covering the whole `u64`
//! range with ≤2x relative error, mergeable across shards by addition,
//! and quantile-queryable without storing samples. A [`MetricsRegistry`]
//! names counters, gauges and histograms, snapshots to plain data, and
//! round-trips through Prometheus text exposition format and JSON (both
//! emitted and parsed here, dependency-free).
//!
//! Everything is plain owned data: no atomics, no globals. The engine
//! merges per-shard histograms after each batch, so recording stays
//! uncontended on the hot path.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets: one per possible `floor(log2(v))` for `v ≥ 1`,
/// with `v = 0` sharing bucket 0.
pub const NUM_BUCKETS: usize = 64;

/// Bucket index of a value: 0 for 0 and 1, otherwise `floor(log2(v))`.
/// Bucket `i ≥ 1` therefore covers `[2^i, 2^(i+1))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: `2^(i+1) - 1` (saturating at
/// `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (typically
/// microseconds).
///
/// Recording is O(1) with no allocation; merging is bucket-wise addition,
/// so shards can record independently and combine afterwards. Quantiles
/// report the inclusive upper bound of the bucket containing the target
/// rank — an overestimate by at most 2x, consistent across merges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    /// Smallest sample recorded (`u64::MAX` when empty), used to clamp
    /// quantile estimates: a bucket's upper bound can exceed every sample
    /// in it (e.g. a single sample of 100 lands in bucket [64,128), whose
    /// bound 127 would otherwise be reported as the p50).
    min: u64,
    /// Largest sample recorded (0 when empty), the matching upper clamp.
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Smallest sample recorded, `None` when empty.
    pub fn min_sample(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample recorded, `None` when empty.
    pub fn max_sample(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// `(upper_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as the inclusive upper bound of
    /// the bucket holding the sample of that rank; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket bound into the observed sample range:
                // without it the bucket holding the smallest sample would
                // report its upper edge, overstating even the minimum.
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1).clamp(self.min, self.max)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Zeroes all buckets.
    pub fn clear(&mut self) {
        *self = Histogram::new();
    }

    /// The p50/p95/p99 summary used by
    /// [`crate::engine::Engine::metrics_snapshot`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Plain quantile summary of one histogram (units are the histogram's —
/// microseconds for the engine's latency series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// A named collection of monotonic counters, gauges and histograms.
///
/// Names must match `[a-zA-Z_][a-zA-Z0-9_]*` (Prometheus metric-name
/// rules); this is debug-asserted on insertion. Counters and gauges may
/// additionally carry a label set (`name{k="v",...}`, labels sorted by
/// key — see [`MetricsRegistry::inc_counter_labeled`]); the full series
/// key is stored verbatim. Iteration order is the key order (`BTreeMap`),
/// so exports are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    /// `# HELP` text by base metric name (no labels).
    help: BTreeMap<String, String>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validates a series key: a bare metric name, or `name{k="v",...}` with
/// valid label names and values free of `"` and `\`.
fn valid_series(key: &str) -> bool {
    let Some((name, labels)) = key.split_once('{') else {
        return valid_name(key);
    };
    let Some(labels) = labels.strip_suffix('}') else {
        return false;
    };
    valid_name(name)
        && !labels.is_empty()
        && labels.split(',').all(|pair| {
            pair.split_once("=\"").is_some_and(|(k, v)| {
                valid_name(k) && v.ends_with('"') && !v[..v.len() - 1].contains(['"', '\\'])
            })
        })
}

/// The base metric name of a series key (`a{b="c"}` → `a`).
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Builds the canonical series key: labels sorted by label name.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to the counter `name` (created at 0). `name` may be a
    /// bare metric name or a full series key (`name{k="v"}`).
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        debug_assert!(valid_series(name), "invalid metric name {name:?}");
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Adds `by` to the counter `name` with the given label set. Labels
    /// are sorted by name, so `[("a","1"),("b","2")]` and its permutation
    /// address the same series.
    pub fn inc_counter_labeled(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.inc_counter(&series_key(name, labels), by);
    }

    /// Sets the gauge `name` (bare name or full series key).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        debug_assert!(valid_series(name), "invalid metric name {name:?}");
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets the gauge `name` with the given label set (sorted by name).
    pub fn set_gauge_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.set_gauge(&series_key(name, labels), value);
    }

    /// Sets the `# HELP` text of the base metric `name`. Attached to the
    /// metric's series on Prometheus export; help for a name with no
    /// series is still emitted (as a bare `# HELP` line).
    pub fn set_help(&mut self, name: &str, text: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.help.insert(name.to_string(), text.to_string());
    }

    /// The `# HELP` text of `name`, if set.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.help.get(name).map(String::as_str)
    }

    /// The histogram `name`, created empty on first use.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Counter value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Labeled counter value, if present (labels in any order).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&series_key(name, labels)).copied()
    }

    /// Labeled gauge value, if present (labels in any order).
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges.get(&series_key(name, labels)).copied()
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counter names and values, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauge names and values, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histogram names and values, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the registry in Prometheus text exposition format
    /// (version 0.0.4): counters as `<name> <v>` (labeled series grouped
    /// under one `# TYPE` header per base name), gauges likewise,
    /// histograms as cumulative `<name>_bucket{le="..."}` series plus
    /// `_sum` and `_count`. `# HELP` lines precede the `# TYPE` of any
    /// base name given help text via [`MetricsRegistry::set_help`];
    /// help for names with no series is appended at the end.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut helped: Vec<String> = Vec::new();
        let mut header = |out: &mut String, base: &str, ty: &str| {
            if let Some(text) = self.help.get(base) {
                let _ = writeln!(out, "# HELP {base} {text}");
                helped.push(base.to_string());
            }
            let _ = writeln!(out, "# TYPE {base} {ty}");
        };
        // Group labeled series under one header per base name (plain
        // BTreeMap order would interleave `a_b` between `a` and `a{...}`).
        let mut counter_groups: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for (key, &v) in &self.counters {
            counter_groups
                .entry(base_name(key))
                .or_default()
                .push((key, v));
        }
        for (base, series) in counter_groups {
            header(&mut out, base, "counter");
            for (key, v) in series {
                let _ = writeln!(out, "{key} {v}");
            }
        }
        let mut gauge_groups: BTreeMap<&str, Vec<(&str, i64)>> = BTreeMap::new();
        for (key, &v) in &self.gauges {
            gauge_groups
                .entry(base_name(key))
                .or_default()
                .push((key, v));
        }
        for (base, series) in gauge_groups {
            header(&mut out, base, "gauge");
            for (key, v) in series {
                let _ = writeln!(out, "{key} {v}");
            }
        }
        for (name, h) in &self.histograms {
            header(&mut out, name, "histogram");
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            // min/max exist only once a sample was recorded; the empty
            // sentinel (min = u64::MAX) is never serialized.
            if h.count > 0 {
                let _ = writeln!(out, "{name}_min {}", h.min);
                let _ = writeln!(out, "{name}_max {}", h.max);
            }
        }
        for (name, text) in &self.help {
            if !helped.iter().any(|h| h == name) {
                let _ = writeln!(out, "# HELP {name} {text}");
            }
        }
        out
    }

    /// Parses text produced by [`MetricsRegistry::to_prometheus`] back
    /// into a registry. Supports exactly the subset emitted there (which
    /// is valid Prometheus exposition format); returns a description of
    /// the first malformed line otherwise.
    pub fn parse_prometheus(text: &str) -> Result<MetricsRegistry, String> {
        let mut reg = MetricsRegistry::new();
        // name -> declared type, from the # TYPE comments.
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        // Histogram reassembly state: cumulative counts per bucket bound.
        let mut hist_prev: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let (Some(name), Some(ty)) = (it.next(), it.next()) else {
                    return Err(format!("malformed TYPE line: {line}"));
                };
                types.insert(name.to_string(), ty.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, text) = rest.split_once(' ').unwrap_or((rest, ""));
                reg.set_help(name, text);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed sample line: {line}"))?;
            if let Some((name, label)) = key.split_once('{') {
                // Histogram bucket sample: <base>_bucket{le="<bound>"}.
                if let Some(base) = name.strip_suffix("_bucket") {
                    if types.get(base).map(String::as_str) == Some("histogram") {
                        let bound = label
                            .strip_prefix("le=\"")
                            .and_then(|l| l.strip_suffix("\"}"))
                            .ok_or_else(|| format!("unsupported label set: {line}"))?;
                        if bound == "+Inf" {
                            continue; // redundant with _count
                        }
                        let bound: u64 =
                            bound.parse().map_err(|_| format!("bad le bound: {line}"))?;
                        let cum: u64 = value.parse().map_err(|_| format!("bad value: {line}"))?;
                        let prev = hist_prev.entry(base.to_string()).or_insert(0);
                        let delta = cum
                            .checked_sub(*prev)
                            .ok_or_else(|| format!("non-cumulative bucket: {line}"))?;
                        *prev = cum;
                        reg.histogram_mut(base).buckets[bucket_index(bound)] += delta;
                        continue;
                    }
                }
                // Labeled counter/gauge sample: store the full series key.
                if !valid_series(key) {
                    return Err(format!("unsupported labeled sample: {line}"));
                }
                match types.get(name).map(String::as_str) {
                    Some("counter") => {
                        let v: u64 = value.parse().map_err(|_| format!("bad value: {line}"))?;
                        reg.inc_counter(key, v);
                    }
                    Some("gauge") => {
                        let v: i64 = value.parse().map_err(|_| format!("bad value: {line}"))?;
                        reg.set_gauge(key, v);
                    }
                    _ => return Err(format!("unsupported labeled sample: {line}")),
                }
                continue;
            }
            let value_u = || {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad value: {line}"))
            };
            if let Some(base) = key.strip_suffix("_sum") {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    reg.histogram_mut(base).sum = value_u()?;
                    continue;
                }
            }
            if let Some(base) = key.strip_suffix("_count") {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    reg.histogram_mut(base).count = value_u()?;
                    continue;
                }
            }
            if let Some(base) = key.strip_suffix("_min") {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    reg.histogram_mut(base).min = value_u()?;
                    continue;
                }
            }
            if let Some(base) = key.strip_suffix("_max") {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    reg.histogram_mut(base).max = value_u()?;
                    continue;
                }
            }
            match types.get(key).map(String::as_str) {
                Some("counter") => {
                    let v = value_u()?;
                    reg.inc_counter(key, v);
                }
                Some("gauge") => {
                    let v: i64 = value.parse().map_err(|_| format!("bad value: {line}"))?;
                    reg.set_gauge(key, v);
                }
                other => {
                    return Err(format!(
                        "sample {key} has no/unknown TYPE declaration ({other:?})"
                    ))
                }
            }
        }
        Ok(reg)
    }

    /// Renders the registry as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name:
    /// {"count": n, "sum": s, "buckets": [[index, count], ..]}}}`, plus a
    /// `"help"` section when any `# HELP` text was set. Series keys and
    /// help text have `"` and `\` escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":{{\"count\":{},\"sum\":{},", h.count, h.sum);
            if h.count > 0 {
                // Skipped when empty: the min sentinel (u64::MAX) has no
                // JSON integer representation the parser accepts.
                let _ = write!(out, "\"min\":{},\"max\":{},", h.min, h.max);
            }
            out.push_str("\"buckets\":[");
            let mut first_b = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first_b {
                    out.push(',');
                }
                first_b = false;
                let _ = write!(out, "[{i},{c}]");
            }
            out.push_str("]}");
        }
        out.push('}');
        if !self.help.is_empty() {
            out.push_str(",\"help\":{");
            let mut first = true;
            for (name, text) in &self.help {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(name), escape_json(text));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses JSON produced by [`MetricsRegistry::to_json`] back into a
    /// registry (supports exactly that shape, whitespace-tolerant).
    pub fn parse_json(text: &str) -> Result<MetricsRegistry, String> {
        let mut p = JsonParser::new(text);
        let mut reg = MetricsRegistry::new();
        p.expect('{')?;
        loop {
            let section = p.string()?;
            if !matches!(
                section.as_str(),
                "counters" | "gauges" | "histograms" | "help"
            ) {
                return Err(format!("unknown section {section:?}"));
            }
            p.expect(':')?;
            p.expect('{')?;
            if !p.peek_is('}') {
                loop {
                    let name = p.string()?;
                    p.expect(':')?;
                    match section.as_str() {
                        "counters" => {
                            let v = p.integer()?;
                            reg.inc_counter(&name, v as u64);
                        }
                        "gauges" => {
                            let v = p.integer()?;
                            reg.set_gauge(&name, v);
                        }
                        "help" => {
                            let text = p.string()?;
                            reg.set_help(&name, &text);
                        }
                        "histograms" => {
                            p.expect('{')?;
                            let h = reg.histogram_mut(&name);
                            loop {
                                let field = p.string()?;
                                p.expect(':')?;
                                match field.as_str() {
                                    "count" => h.count = p.integer()? as u64,
                                    "sum" => h.sum = p.integer()? as u64,
                                    "min" => h.min = p.integer()? as u64,
                                    "max" => h.max = p.integer()? as u64,
                                    "buckets" => {
                                        p.expect('[')?;
                                        if !p.peek_is(']') {
                                            loop {
                                                p.expect('[')?;
                                                let i = p.integer()? as usize;
                                                p.expect(',')?;
                                                let c = p.integer()? as u64;
                                                p.expect(']')?;
                                                if i >= NUM_BUCKETS {
                                                    return Err(format!("bucket index {i}"));
                                                }
                                                h.buckets[i] += c;
                                                if !p.comma_or(']')? {
                                                    break;
                                                }
                                            }
                                        } else {
                                            p.expect(']')?;
                                        }
                                    }
                                    other => return Err(format!("unknown field {other:?}")),
                                }
                                if !p.comma_or('}')? {
                                    break;
                                }
                            }
                        }
                        other => return Err(format!("unknown section {other:?}")),
                    }
                    if !p.comma_or('}')? {
                        break;
                    }
                }
            } else {
                p.expect('}')?;
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        p.end()?;
        Ok(reg)
    }
}

/// Escapes `"` and `\` for embedding in a JSON string literal (the only
/// escapes this module's emitters produce and its parser accepts).
fn escape_json(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains(['"', '\\']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    std::borrow::Cow::Owned(out)
}

/// Validates that `text` is one well-formed JSON value in the dialect
/// this module emits and parses: objects, arrays, strings (with `\"` and
/// `\\` escapes) and integers, with arbitrary whitespace. Other exporters
/// (e.g. the Chrome trace writer in [`crate::obs::export`]) use this to
/// assert they stay inside the parseable subset.
pub fn parse_json_value(text: &str) -> Result<(), String> {
    let mut p = JsonParser::new(text);
    p.value()?;
    p.end()
}

/// Minimal JSON tokenizer for [`MetricsRegistry::parse_json`]: supports
/// the object/array/string/integer subset that `to_json` emits.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at byte {}, found {:?}",
                self.pos,
                self.bytes.get(self.pos).map(|&b| b as char)
            ))
        }
    }

    /// Consumes `,` (returning true) or `close` (returning false).
    fn comma_or(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(format!(
                "expected ',' or {close:?} at byte {}, found {:?}",
                self.pos,
                other.map(|&b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        let mut escaped = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let raw =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                self.pos += 1;
                return Ok(if escaped {
                    // Undo the `\"` / `\\` escapes escape_json produced.
                    let mut s = String::with_capacity(raw.len());
                    let mut chars = raw.chars();
                    while let Some(c) = chars.next() {
                        s.push(if c == '\\' {
                            chars.next().ok_or("dangling escape")?
                        } else {
                            c
                        });
                    }
                    s
                } else {
                    raw.to_string()
                });
            }
            if b == b'\\' {
                match self.bytes.get(self.pos + 1) {
                    Some(b'"') | Some(b'\\') => {
                        escaped = true;
                        self.pos += 1;
                    }
                    _ => return Err("unsupported escape sequence".to_string()),
                }
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    /// Consumes one JSON value of the supported dialect (object, array,
    /// string, integer), discarding its content.
    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                if self.peek_is('}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.string()?;
                    self.expect(':')?;
                    self.value()?;
                    if !self.comma_or('}')? {
                        return Ok(());
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                if self.peek_is(']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    if !self.comma_or(']')? {
                        return Ok(());
                    }
                }
            }
            Some(b'"') => self.string().map(|_| ()),
            _ => self.integer().map(|_| ()),
        }
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected integer at byte {start}"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // v = 0 and v = 1 share bucket 0; 2^i is the first value of
        // bucket i; 2^(i+1) - 1 the last.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 1..63 {
            let lo = 1u64 << i;
            assert_eq!(bucket_index(lo), i, "2^{i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "2^{i}-1");
            assert_eq!(bucket_index(2 * lo - 1), i, "2^{}-1", i + 1);
            assert_eq!(bucket_upper_bound(i), 2 * lo - 1);
        }
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 1);
    }

    #[test]
    fn histogram_records_counts_and_means() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.mean(), 26);
        assert_eq!(h.bucket(0), 1); // 1
        assert_eq!(h.bucket(1), 2); // 2, 3
        assert_eq!(h.bucket(6), 1); // 100 in [64,128)
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (3, 2), (127, 1)]);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = Histogram::new();
        // 90 fast samples (bucket of 100 = [64,128)), 10 slow (bucket of
        // 10_000 = [8192,16384)).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127);
        // Upper tail clamps to the largest recorded sample rather than
        // reporting the slow bucket's upper edge (16_383).
        assert_eq!(h.quantile(0.95), 10_000);
        assert_eq!(h.quantile(0.99), 10_000);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.quantile(0.0), 127); // rank clamps to the 1st sample
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!((s.p50, s.p95, s.p99), (127, 10_000, 10_000));
        assert_eq!(h.min_sample(), Some(100));
        assert_eq!(h.max_sample(), Some(10_000));
    }

    #[test]
    fn quantiles_never_undershoot_the_minimum_sample() {
        // A lone sample of 100 lands in bucket [64,128); every quantile
        // must report the sample itself, not the bucket edge 127.
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.summary().p50, 100);
        assert_eq!(Histogram::new().min_sample(), None);
        assert_eq!(Histogram::new().max_sample(), None);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1_010);
        assert_eq!(a.bucket(bucket_index(5)), 2);
        assert_eq!(a.bucket(bucket_index(1_000)), 1);
        a.clear();
        assert_eq!(a, Histogram::new());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.bucket(63), 2);
        assert_eq!(h.quantile(0.99), u64::MAX);
    }

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("rds_queries_total", 42);
        reg.inc_counter("rds_errors_total", 3);
        reg.set_gauge("rds_shards", 4);
        let h = reg.histogram_mut("rds_solve_latency_us");
        for v in [9u64, 11, 80, 1_500, 1_501, 90_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_round_trips() {
        let reg = sample_registry();
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE rds_queries_total counter"));
        assert!(text.contains("rds_queries_total 42"));
        assert!(text.contains("# TYPE rds_solve_latency_us histogram"));
        assert!(text.contains("rds_solve_latency_us_bucket{le=\"+Inf\"} 6"));
        let parsed = MetricsRegistry::parse_prometheus(&text).unwrap();
        assert_eq!(parsed, reg);
    }

    #[test]
    fn json_round_trips() {
        let reg = sample_registry();
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        let parsed = MetricsRegistry::parse_json(&json).unwrap();
        assert_eq!(parsed, reg);
        // Whitespace tolerance.
        let spaced = json.replace(':', ": ").replace(',', ",\n");
        assert_eq!(MetricsRegistry::parse_json(&spaced).unwrap(), reg);
    }

    #[test]
    fn empty_registry_round_trips() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            MetricsRegistry::parse_prometheus(&reg.to_prometheus()).unwrap(),
            reg
        );
        assert_eq!(MetricsRegistry::parse_json(&reg.to_json()).unwrap(), reg);
    }

    fn labeled_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_help("rds_serve_rejected_total", "Rejections by reason and class");
        reg.inc_counter_labeled(
            "rds_serve_rejected_total",
            &[("reason", "queue_full"), ("class", "batch")],
            7,
        );
        reg.inc_counter_labeled(
            "rds_serve_rejected_total",
            &[("class", "standard"), ("reason", "shed_low_priority")],
            2,
        );
        // A plain counter that sorts between the base name and its
        // labeled series, to exercise export grouping.
        reg.inc_counter("rds_serve_rejected_total_audits", 1);
        reg.set_gauge_labeled(
            "rds_slo_latency_burn_milli",
            &[("class", "interactive"), ("window", "fast")],
            1500,
        );
        reg
    }

    #[test]
    fn labels_are_sorted_and_round_trip_prometheus() {
        let reg = labeled_registry();
        // Label order at insertion is irrelevant.
        assert_eq!(
            reg.counter_labeled(
                "rds_serve_rejected_total",
                &[("class", "batch"), ("reason", "queue_full")]
            ),
            Some(7)
        );
        let text = reg.to_prometheus();
        assert!(text.contains("# HELP rds_serve_rejected_total Rejections by reason and class"));
        assert!(text.contains("rds_serve_rejected_total{class=\"batch\",reason=\"queue_full\"} 7"));
        // One TYPE header per base name, even with multiple series.
        assert_eq!(
            text.matches("# TYPE rds_serve_rejected_total counter")
                .count(),
            1
        );
        let parsed = MetricsRegistry::parse_prometheus(&text).unwrap();
        assert_eq!(parsed, reg);
    }

    #[test]
    fn labels_and_help_round_trip_json() {
        let mut reg = labeled_registry();
        reg.set_help("rds_quote", "contains \"quotes\" and a \\ backslash");
        let json = reg.to_json();
        let parsed = MetricsRegistry::parse_json(&json).unwrap();
        assert_eq!(parsed, reg);
        assert_eq!(
            parsed.help("rds_quote"),
            Some("contains \"quotes\" and a \\ backslash")
        );
    }

    #[test]
    fn dangling_help_survives_prometheus_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.set_help("rds_future_metric", "declared but never sampled");
        let text = reg.to_prometheus();
        assert!(text.contains("# HELP rds_future_metric declared but never sampled"));
        assert_eq!(MetricsRegistry::parse_prometheus(&text).unwrap(), reg);
    }

    #[test]
    fn parse_json_value_accepts_the_emitted_dialect() {
        parse_json_value("{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": -5}").unwrap();
        parse_json_value("  [ ]  ").unwrap();
        parse_json_value("\"with \\\"escape\\\"\"").unwrap();
        assert!(parse_json_value("{\"a\":}").is_err());
        assert!(parse_json_value("[1,]").is_err());
        assert!(parse_json_value("true").is_err());
        assert!(parse_json_value("{} trailing").is_err());
    }

    #[test]
    fn invalid_series_keys_are_rejected() {
        assert!(valid_series("rds_ok"));
        assert!(valid_series("rds_ok{a=\"1\",b=\"x y\"}"));
        assert!(!valid_series("rds_ok{"));
        assert!(!valid_series("rds_ok{a=1}"));
        assert!(!valid_series("rds_ok{a=\"quote\\\"inside\"}"));
        assert!(!valid_series("{a=\"1\"}"));
    }

    #[test]
    fn parsers_reject_garbage() {
        assert!(MetricsRegistry::parse_prometheus("oops 1").is_err());
        assert!(MetricsRegistry::parse_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(MetricsRegistry::parse_json("{").is_err());
        assert!(MetricsRegistry::parse_json("{\"bogus\":{}}").is_err());
        assert!(MetricsRegistry::parse_json("").is_err());
    }
}
