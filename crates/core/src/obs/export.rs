//! Structured span export: Chrome `trace_event` JSON and a
//! human-readable `statusz` text dump.
//!
//! Both exporters are dependency-free string builders over a
//! [`Postmortem`] snapshot, the span-level counterpart of the metric
//! exporters in [`crate::obs::metrics`]:
//!
//! * [`Postmortem::to_chrome_trace`] emits the JSON object format of the
//!   Chrome Trace Event spec (`{"traceEvents": [...]}`): one complete
//!   (`"ph":"X"`) event per span — `pid` = shard, `tid` = stream, so the
//!   viewer lays shards out as processes and streams as threads — plus
//!   one instant (`"ph":"i"`) event per recorded phase. Load the file in
//!   `chrome://tracing` or Perfetto.
//! * [`Postmortem::to_statusz`] renders the plain-text status page:
//!   a retention summary followed by one indented timeline per span,
//!   worst spans first readable straight off a terminal.

use crate::obs::recorder::Postmortem;
use crate::obs::span::{PhaseKind, QuerySpan};
use crate::serve::PriorityClass;

fn class_name(index: usize) -> &'static str {
    PriorityClass::ALL
        .get(index)
        .map(|c| c.name())
        .unwrap_or("unknown")
}

/// Appends one Chrome trace event object. All string payloads here are
/// static identifiers (phase/solver/class names), so no JSON escaping is
/// needed.
#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: &str,
    ts: u64,
    dur: Option<u64>,
    pid: usize,
    tid: usize,
    args: &[(&str, String)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "    {{\"name\": \"{name}\", \"cat\": \"rds\", \"ph\": \"{ph}\", \"ts\": {ts}"
    ));
    if let Some(dur) = dur {
        out.push_str(&format!(", \"dur\": {dur}"));
    }
    out.push_str(&format!(", \"pid\": {pid}, \"tid\": {tid}"));
    if ph == "i" {
        out.push_str(", \"s\": \"t\"");
    }
    if !args.is_empty() {
        out.push_str(", \"args\": {");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push('}');
    }
    out.push('}');
}

fn span_events(out: &mut String, first: &mut bool, span: &QuerySpan) {
    // Anchor the span on its arrival time; phase instants offset from it
    // by their wall-clock capture offsets so intra-span ordering is
    // visible even under the virtual clock (where arrival steps are the
    // meaningful axis and offsets are sub-microsecond).
    let ts = span.arrival.0;
    let dur = span.turnaround_us.max(1);
    let args = [
        ("ticket", span.id.0.to_string()),
        ("class", format!("\"{}\"", class_name(span.class))),
        ("outcome", format!("\"{}\"", span.outcome.name())),
        ("solver", format!("\"{}\"", span.solver)),
        ("delta", (span.delta as u64).to_string()),
        ("queued_us", span.queued_us.to_string()),
        ("deadline_missed", (span.deadline_missed as u64).to_string()),
        ("anytime_gap_us", span.anytime_gap.0.to_string()),
    ];
    push_event(
        out,
        first,
        span.outcome.name(),
        "X",
        ts,
        Some(dur),
        span.shard,
        span.stream,
        &args,
    );
    for p in span.phases() {
        let args = [("a", p.a.to_string()), ("b", p.b.to_string())];
        push_event(
            out,
            first,
            p.kind.name(),
            "i",
            ts + p.t_us,
            None,
            span.shard,
            span.stream,
            &args,
        );
    }
}

impl Postmortem {
    /// Renders the snapshot in Chrome Trace Event JSON (object format).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        let mut first = true;
        for span in self.all_spans() {
            span_events(&mut out, &mut first, span);
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
        out
    }

    /// Renders the snapshot as a human-readable status page: retention
    /// summary, then one indented timeline per span (triggered spans
    /// first).
    pub fn to_statusz(&self) -> String {
        let mut out = String::new();
        out.push_str("=== flight recorder ===\n");
        out.push_str(&format!(
            "retained {} (served {}, rejected {})  evicted {}  healthy_recycled {}  dropped_phases {}  shell_allocations {}\n",
            self.spans.len() + self.rejections.len(),
            self.spans.len(),
            self.rejections.len(),
            self.stats.evicted,
            self.stats.recycled,
            self.stats.dropped_phases,
            self.stats.allocation_events,
        ));
        let mut ordered: Vec<&QuerySpan> = self.all_spans().collect();
        ordered.sort_by_key(|s| (!s.is_triggered(), s.arrival, s.id));
        for span in ordered {
            out.push('\n');
            statusz_span(&mut out, span);
        }
        out
    }
}

fn statusz_span(out: &mut String, span: &QuerySpan) {
    let mut flags = String::new();
    if span.deadline_missed {
        flags.push_str(" DEADLINE-MISSED");
    }
    if span.budget_expired {
        flags.push_str(" BUDGET-EXPIRED");
    }
    if span.degraded {
        flags.push_str(" DEGRADED");
    }
    out.push_str(&format!(
        "span ticket={} stream={} shard={} class={} outcome={}{}\n",
        span.id.0,
        span.stream,
        span.shard,
        class_name(span.class),
        span.outcome.name(),
        flags,
    ));
    out.push_str(&format!(
        "  arrival={}us completion={}us turnaround={}us queued={}us solver={}{}\n",
        span.arrival.0,
        span.completion.0,
        span.turnaround_us,
        span.queued_us,
        if span.solver.is_empty() {
            "-"
        } else {
            span.solver
        },
        if span.delta { " (delta resume)" } else { "" },
    ));
    if span.anytime_gap > rds_storage::time::Micros::ZERO {
        out.push_str(&format!("  anytime_gap={}us\n", span.anytime_gap.0));
    }
    for p in span.phases() {
        out.push_str(&format!(
            "  +{:>8}us  {:<18} {}\n",
            p.t_us,
            p.kind.name(),
            phase_detail(p.kind, p.a, p.b),
        ));
    }
    if span.dropped_phases > 0 {
        out.push_str(&format!(
            "  ... {} more phases dropped (bounded buffer)\n",
            span.dropped_phases
        ));
    }
}

/// Human reading of a phase's attribute slots.
fn phase_detail(kind: PhaseKind, a: u64, b: u64) -> String {
    match kind {
        PhaseKind::Admitted => format!("arrival={a}us class={}", class_name(b as usize)),
        PhaseKind::Coalesced => format!("batch={a} queued={b}us"),
        PhaseKind::SolveStart => format!("query_size={a}"),
        PhaseKind::Solver => format!("delta={}", a != 0),
        PhaseKind::CacheHit => format!("fingerprint={a:#018x}"),
        PhaseKind::DeltaPatch => format!("changed={a} cancelled={b}"),
        PhaseKind::DeltaFallback => format!("solver_declined={}", a != 0),
        PhaseKind::Rebuild => String::new(),
        PhaseKind::Probe => format!("budget={a}us feasible={}", b != 0),
        PhaseKind::Refine => format!("cycles={a} moved={b}"),
        PhaseKind::BudgetExpired => format!("achieved={a}us lower_bound={b}us"),
        PhaseKind::Degraded => format!("served={a} dropped={b}"),
        PhaseKind::Retry => format!("attempt={a} probe={b}us"),
        PhaseKind::HealthTransition => format!("fingerprint={a:#018x}"),
        PhaseKind::Reply => format!("deadline_missed={}", a != 0),
        PhaseKind::Rejected => format!(
            "reason={}",
            crate::obs::span::RejectReason::ALL
                .get(a as usize)
                .map(|r| r.name())
                .unwrap_or("unknown")
        ),
        PhaseKind::Failed => format!("panic={}", a != 0),
        PhaseKind::PlaneCheckout => format!("shared={}", a != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::span::{RejectReason, SpanId, SpanOutcome};
    use rds_storage::time::Micros;

    fn sample() -> Postmortem {
        let mut served = QuerySpan::with_capacity(8);
        served.id = SpanId(3);
        served.stream = 1;
        served.shard = 0;
        served.class = PriorityClass::Interactive as usize;
        served.arrival = Micros(1_000);
        served.completion = Micros(7_100);
        served.turnaround_us = 6_100;
        served.solver = "PR-binary";
        served.outcome = SpanOutcome::Resolved;
        served.deadline_missed = true;
        served.record(PhaseKind::Admitted, 0, 1_000, 0);
        served.record(PhaseKind::SolveStart, 2, 6, 0);
        served.record(PhaseKind::Probe, 5, 500, 1);
        served.record(PhaseKind::Reply, 9, 1, 0);
        let mut rejected = QuerySpan::with_capacity(4);
        rejected.class = PriorityClass::Batch as usize;
        rejected.outcome = SpanOutcome::Rejected(RejectReason::ShedLowPriority);
        rejected.record(PhaseKind::Admitted, 0, 0, 2);
        rejected.record(
            PhaseKind::Rejected,
            0,
            RejectReason::ShedLowPriority as u64,
            0,
        );
        Postmortem {
            spans: vec![served],
            rejections: vec![rejected],
            ..Postmortem::default()
        }
    }

    #[test]
    fn chrome_trace_is_parseable_json_with_all_events() {
        let trace = sample().to_chrome_trace();
        // One complete event per span plus one instant per phase.
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 2);
        assert_eq!(trace.matches("\"ph\": \"i\"").count(), 6);
        assert!(trace.contains("\"pid\": 0"));
        assert!(trace.contains("\"solver\": \"PR-binary\""));
        // Must parse with the registry's own JSON parser (objects,
        // arrays, strings, integers — the exporter stays inside that
        // dialect).
        crate::obs::metrics::parse_json_value(&trace).expect("chrome trace parses");
    }

    #[test]
    fn statusz_orders_triggered_spans_first() {
        let mut pm = sample();
        pm.spans[0].deadline_missed = false; // now healthy
        let text = pm.to_statusz();
        let healthy_at = text.find("outcome=resolved").unwrap();
        let rejected_at = text.find("outcome=rejected").unwrap();
        assert!(rejected_at < healthy_at, "triggered span listed first");
        assert!(text.contains("reason=shed_low_priority"));
        assert!(text.contains("feasible=true"));
    }
}
