//! Always-on flight recorder for finished query spans.
//!
//! Each engine shard owns a [`FlightRecorder`]: a bounded ring of
//! retained [`QuerySpan`]s with **trigger-based retention**. Spans that
//! ended badly — deadline miss, expired anytime budget, degraded serve,
//! typed failure, contained panic, rejection — always keep their full
//! timeline; healthy spans are head-sampled (the first
//! [`FlightRecorderConfig::healthy_head`] are kept, the rest recycled)
//! so a long healthy run costs nothing but the ring itself.
//!
//! Span shells circulate between the ring and a free list: a retired
//! span that is not retained (or that the full ring evicts) goes back to
//! the free list with its phase buffer intact, and the next
//! [`FlightRecorder::checkout`] reuses it. After warm-up the serve hot
//! path therefore performs **zero** span allocations —
//! [`FlightRecorder::allocation_events`] counts every fresh shell the
//! same way `GraphArena::allocation_events` pins the solver arena
//! contract, and a regression test holds it flat across serve runs.
//!
//! [`Engine::postmortem`](crate::engine::Engine::postmortem) snapshots
//! every shard's recorder (plus the admission-rejection log) into a
//! [`Postmortem`] for export.

use crate::obs::span::QuerySpan;
use std::collections::VecDeque;

/// Retention knobs for one [`FlightRecorder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecorderConfig {
    /// Maximum retained spans; the oldest is evicted (and its shell
    /// recycled) when a newly retained span overflows the ring.
    pub capacity: usize,
    /// Healthy (non-triggered) spans retained from the start of the run
    /// before head-sampling kicks in and healthy spans are recycled
    /// without retention.
    pub healthy_head: usize,
    /// Phase-buffer capacity pre-allocated per span shell; phases past
    /// this count are dropped (counted), never reallocated.
    pub max_phases: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> FlightRecorderConfig {
        FlightRecorderConfig {
            capacity: 128,
            healthy_head: 32,
            max_phases: 64,
        }
    }
}

/// Counters describing a recorder's retention behaviour, mergeable
/// across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Spans retained in the ring (triggered or head-sampled).
    pub retained: u64,
    /// Retained spans later evicted by ring overflow.
    pub evicted: u64,
    /// Healthy spans recycled without retention (past the head sample).
    pub recycled: u64,
    /// Phases dropped because a span's bounded buffer was full.
    pub dropped_phases: u64,
    /// Fresh span shells allocated (checkouts the free list could not
    /// serve). Flat in steady state.
    pub allocation_events: u64,
}

impl RecorderStats {
    /// Adds another recorder's counters into this one.
    pub fn merge(&mut self, other: &RecorderStats) {
        self.retained += other.retained;
        self.evicted += other.evicted;
        self.recycled += other.recycled;
        self.dropped_phases += other.dropped_phases;
        self.allocation_events += other.allocation_events;
    }
}

/// Bounded ring of finished spans with trigger-based retention and
/// shell recycling. See the module docs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    config: FlightRecorderConfig,
    ring: VecDeque<QuerySpan>,
    free: Vec<QuerySpan>,
    healthy_seen: u64,
    stats: RecorderStats,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FlightRecorderConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given retention knobs.
    pub fn new(config: FlightRecorderConfig) -> FlightRecorder {
        FlightRecorder {
            config,
            ring: VecDeque::with_capacity(config.capacity),
            free: Vec::new(),
            healthy_seen: 0,
            stats: RecorderStats::default(),
        }
    }

    /// The retention knobs.
    pub fn config(&self) -> FlightRecorderConfig {
        self.config
    }

    /// Takes a reset span shell — recycled when the free list has one,
    /// freshly allocated (counted) otherwise.
    pub fn checkout(&mut self) -> QuerySpan {
        match self.free.pop() {
            Some(span) => span,
            None => {
                self.stats.allocation_events += 1;
                QuerySpan::with_capacity(self.config.max_phases)
            }
        }
    }

    /// Retires a finished span: retains it when triggered (or within the
    /// healthy head sample), recycles its shell otherwise. A retained
    /// span that overflows the ring evicts (and recycles) the oldest.
    pub fn retire(&mut self, span: QuerySpan) {
        self.stats.dropped_phases += span.dropped_phases as u64;
        if !span.is_triggered() {
            self.healthy_seen += 1;
            if self.healthy_seen > self.config.healthy_head as u64 {
                self.stats.recycled += 1;
                self.recycle(span);
                return;
            }
        }
        self.stats.retained += 1;
        if self.config.capacity == 0 {
            self.recycle(span);
            return;
        }
        if self.ring.len() >= self.config.capacity {
            if let Some(old) = self.ring.pop_front() {
                self.stats.evicted += 1;
                self.recycle(old);
            }
        }
        self.ring.push_back(span);
    }

    fn recycle(&mut self, mut span: QuerySpan) {
        span.reset();
        if self.free.len() <= self.config.capacity {
            self.free.push(span);
        }
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &QuerySpan> {
        self.ring.iter()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retention counters.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// Fresh span shells ever allocated — the steady-state zero-alloc
    /// contract counter.
    pub fn allocation_events(&self) -> u64 {
        self.stats.allocation_events
    }

    /// Drops retained spans and resets counters; the free list (and its
    /// pre-allocated shells) is kept so steady state survives a clear.
    pub fn clear(&mut self) {
        while let Some(span) = self.ring.pop_front() {
            self.recycle(span);
        }
        self.healthy_seen = 0;
        self.stats = RecorderStats {
            allocation_events: self.stats.allocation_events,
            ..RecorderStats::default()
        };
    }
}

/// A point-in-time snapshot of every retained span, produced by
/// [`Engine::postmortem`](crate::engine::Engine::postmortem).
///
/// Export with [`Postmortem::to_chrome_trace`] (load the JSON into
/// `chrome://tracing` / Perfetto) or [`Postmortem::to_statusz`] (plain
/// text, one indented timeline per span); both live in
/// [`crate::obs::export`].
#[derive(Clone, Debug, Default)]
pub struct Postmortem {
    /// Served spans from every shard's recorder, ordered by shard then
    /// age.
    pub spans: Vec<QuerySpan>,
    /// Admission-rejection spans (no ticket, no shard).
    pub rejections: Vec<QuerySpan>,
    /// Merged retention counters across all recorders.
    pub stats: RecorderStats,
}

impl Postmortem {
    /// Served and rejected spans chained, served first.
    pub fn all_spans(&self) -> impl Iterator<Item = &QuerySpan> {
        self.spans.iter().chain(self.rejections.iter())
    }

    /// Spans retained because they ended badly (deadline miss, budget
    /// expiry, degraded serve, failure or rejection).
    pub fn triggered(&self) -> impl Iterator<Item = &QuerySpan> {
        self.all_spans().filter(|s| s.is_triggered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::span::{PhaseKind, SpanOutcome};

    fn healthy(r: &mut FlightRecorder) -> QuerySpan {
        let mut s = r.checkout();
        s.outcome = SpanOutcome::Resolved;
        s.record(PhaseKind::Reply, 0, 0, 0);
        s
    }

    #[test]
    fn triggered_spans_survive_head_sampling() {
        let mut r = FlightRecorder::new(FlightRecorderConfig {
            capacity: 8,
            healthy_head: 2,
            max_phases: 4,
        });
        for _ in 0..5 {
            let s = healthy(&mut r);
            r.retire(s);
        }
        // Head sample keeps 2 healthy spans, 3 are recycled.
        assert_eq!(r.len(), 2);
        assert_eq!(r.stats().recycled, 3);
        let mut bad = r.checkout();
        bad.outcome = SpanOutcome::Failed;
        r.retire(bad);
        assert_eq!(r.len(), 3);
        assert!(r.spans().any(|s| s.is_triggered()));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_recycles_shells() {
        let mut r = FlightRecorder::new(FlightRecorderConfig {
            capacity: 2,
            healthy_head: 0,
            max_phases: 4,
        });
        for i in 0..4 {
            let mut s = r.checkout();
            s.outcome = SpanOutcome::Failed;
            s.id = crate::obs::span::SpanId(i);
            r.retire(s);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.stats().evicted, 2);
        let ids: Vec<u64> = r.spans().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn steady_state_checkout_never_allocates() {
        let mut r = FlightRecorder::new(FlightRecorderConfig {
            capacity: 4,
            healthy_head: 0,
            max_phases: 8,
        });
        // One span in flight at a time, all healthy past the (empty)
        // head sample: exactly one shell is ever allocated.
        for _ in 0..100 {
            let s = healthy(&mut r);
            r.retire(s);
        }
        assert_eq!(r.allocation_events(), 1);
        assert_eq!(r.stats().recycled, 100);
    }
}
