//! Per-query causal timelines.
//!
//! A [`QuerySpan`] is minted when a submission enters
//! [`Engine::serve`](crate::engine::Engine::serve) admission and follows
//! the query through the shard queue, batch-window coalescing, the
//! cache/delta/rebuild reuse decision, every solver probe, refinement and
//! the reply (or the rejection), recording one [`PhaseRecord`] per
//! boundary. Spans answer the question aggregate histograms cannot:
//! *why* did this particular query miss its deadline — queue wait,
//! coalescing delay, a cold solve, or a refine pass?
//!
//! Spans are captured by the always-compiled span channel inside
//! [`Tracer`](crate::obs::trace::Tracer): the solver drivers keep
//! emitting their ordinary [`TraceEvent`]s
//! and the channel bridges the coarse ones (probes, cache hits, delta
//! patches, refine passes, budget expiry) into the active span. Hot
//! per-operation events (augments, relabel passes, capacity increments)
//! are deliberately **not** bridged — their aggregate counts already live
//! in [`SolveStats`](crate::schedule::SolveStats) — so arming a span
//! costs a handful of phase pushes per solve, not per operation.
//!
//! Phase storage is a bounded, pre-allocated `Vec` recycled by the
//! [`FlightRecorder`](crate::obs::recorder::FlightRecorder): in steady
//! state no span ever allocates. Spans only *observe* — solve results
//! are bit-identical with the span channel armed or disarmed.

use crate::obs::trace::TraceEvent;
use rds_storage::time::Micros;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Identity of one span: the serve [`Ticket`](crate::serve::Ticket)
/// number for admitted submissions, `0` for rejection spans (which never
/// received a ticket).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Why a submission was rejected at admission.
///
/// Mirrors the payload-carrying [`Rejected`](crate::serve::Rejected)
/// enum as plain label data for spans and per-class metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum RejectReason {
    /// [`Rejected::QueueFull`](crate::serve::Rejected::QueueFull)
    QueueFull = 0,
    /// [`Rejected::DeadlineUnmeetable`](crate::serve::Rejected::DeadlineUnmeetable)
    DeadlineUnmeetable,
    /// [`Rejected::ShedLowPriority`](crate::serve::Rejected::ShedLowPriority)
    ShedLowPriority,
    /// [`Rejected::ShuttingDown`](crate::serve::Rejected::ShuttingDown)
    ShuttingDown,
}

impl RejectReason {
    /// Number of reasons (size of a per-reason counter array).
    pub const COUNT: usize = 4;

    /// Every reason, in discriminant order.
    pub const ALL: [RejectReason; RejectReason::COUNT] = [
        RejectReason::QueueFull,
        RejectReason::DeadlineUnmeetable,
        RejectReason::ShedLowPriority,
        RejectReason::ShuttingDown,
    ];

    /// Stable snake_case name (used as the `reason` metrics label).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineUnmeetable => "deadline_unmeetable",
            RejectReason::ShedLowPriority => "shed_low_priority",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }
}

/// One kind of span phase boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum PhaseKind {
    /// Admission accepted the submission (`a` = arrival µs, `b` = class).
    Admitted = 0,
    /// The shard worker drained the query from its queue (`a` = queries
    /// coalesced in the same drain, `b` = queue wait µs). Wall-clock
    /// shaped: excluded from [`QuerySpan::phase_digest`].
    Coalesced,
    /// A solve began in the workspace (`a` = query size).
    SolveStart,
    /// A solver front-end took over (`a` = 1 for a delta resume, 0 for a
    /// cold solve); the solver's name is stored on the span itself.
    Solver,
    /// The query was answered from the schedule cache (`a` = key
    /// fingerprint).
    CacheHit,
    /// The warm workspace was delta-patched instead of rebuilt
    /// (`a` = changed slots, `b` = cancelled units).
    DeltaPatch,
    /// A delta resume was attempted but fell back to a cold solve
    /// (`a` = 1 when the solver declined, 0 when the patch itself
    /// failed).
    DeltaFallback,
    /// The instance network was (re)built from scratch.
    Rebuild,
    /// One binary-search probe finished (`a` = probed budget µs,
    /// `b` = feasible).
    Probe,
    /// A min-cost refinement pass ran (`a` = cycles canceled, `b` = flow
    /// units moved).
    Refine,
    /// The anytime budget expired mid-solve (`a` = achieved µs,
    /// `b` = lower bound µs).
    BudgetExpired,
    /// A degraded serve dropped buckets (`a` = served, `b` = dropped).
    Degraded,
    /// A replanning retry was scheduled (`a` = attempt; the wall-shaped
    /// probe time is excluded from the digest).
    Retry,
    /// The stream observed a health transition (`a` = fingerprint).
    HealthTransition,
    /// The response was sent (`a` = 1 when the deadline was missed).
    Reply,
    /// The submission was rejected at admission (`a` = reason index).
    Rejected,
    /// The solve failed with a typed error or a contained panic (`a` = 1
    /// for a shard panic, 0 for a session error).
    Failed,
    /// A plane-sharing workspace checked out the instance's topology
    /// plane (`a` = 1 when the epoch plane was already shared). Plane
    /// residency depends on shard count and the fused-vs-serial drain
    /// path, so both attributes are excluded from
    /// [`QuerySpan::phase_digest`].
    PlaneCheckout,
}

impl PhaseKind {
    /// Number of kinds.
    pub const COUNT: usize = 18;

    /// Every kind, in discriminant order.
    pub const ALL: [PhaseKind; PhaseKind::COUNT] = [
        PhaseKind::Admitted,
        PhaseKind::Coalesced,
        PhaseKind::SolveStart,
        PhaseKind::Solver,
        PhaseKind::CacheHit,
        PhaseKind::DeltaPatch,
        PhaseKind::DeltaFallback,
        PhaseKind::Rebuild,
        PhaseKind::Probe,
        PhaseKind::Refine,
        PhaseKind::BudgetExpired,
        PhaseKind::Degraded,
        PhaseKind::Retry,
        PhaseKind::HealthTransition,
        PhaseKind::Reply,
        PhaseKind::Rejected,
        PhaseKind::Failed,
        PhaseKind::PlaneCheckout,
    ];

    /// Stable snake_case name (trace export and `statusz`).
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Admitted => "admitted",
            PhaseKind::Coalesced => "coalesced",
            PhaseKind::SolveStart => "solve_start",
            PhaseKind::Solver => "solver",
            PhaseKind::CacheHit => "cache_hit",
            PhaseKind::DeltaPatch => "delta_patch",
            PhaseKind::DeltaFallback => "delta_fallback",
            PhaseKind::Rebuild => "rebuild",
            PhaseKind::Probe => "probe",
            PhaseKind::Refine => "refine",
            PhaseKind::BudgetExpired => "budget_expired",
            PhaseKind::Degraded => "degraded",
            PhaseKind::Retry => "retry",
            PhaseKind::HealthTransition => "health_transition",
            PhaseKind::Reply => "reply",
            PhaseKind::Rejected => "rejected",
            PhaseKind::Failed => "failed",
            PhaseKind::PlaneCheckout => "plane_checkout",
        }
    }

    /// Which of the two attribute slots are deterministic — reproducible
    /// across shard counts under
    /// [`ServeClock::Virtual`](crate::serve::ServeClock::Virtual) — and
    /// therefore folded into [`QuerySpan::phase_digest`]. Wall-clock
    /// shaped attributes (queue wait, coalesced batch size, retry probe
    /// instants) are excluded.
    pub fn digest_mask(self) -> (bool, bool) {
        match self {
            PhaseKind::Coalesced | PhaseKind::PlaneCheckout => (false, false),
            PhaseKind::Retry => (true, false),
            _ => (true, true),
        }
    }
}

/// One recorded phase boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRecord {
    /// What happened.
    pub kind: PhaseKind,
    /// Wall-clock offset from span arming, in microseconds. Diagnostic
    /// only — never part of the deterministic digest.
    pub t_us: u64,
    /// First attribute slot (meaning per [`PhaseKind`]).
    pub a: u64,
    /// Second attribute slot.
    pub b: u64,
}

/// Terminal state of a span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SpanOutcome {
    /// Still being served (only visible in a snapshot taken mid-run).
    #[default]
    InFlight,
    /// Resolved with a schedule (possibly degraded or past deadline —
    /// see the span flags).
    Resolved,
    /// Failed with a typed error or a contained shard panic.
    Failed,
    /// Rejected at admission.
    Rejected(RejectReason),
}

impl SpanOutcome {
    /// Stable name for exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::InFlight => "in_flight",
            SpanOutcome::Resolved => "resolved",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Rejected(_) => "rejected",
        }
    }

    fn digest_code(self) -> u64 {
        match self {
            SpanOutcome::InFlight => 0,
            SpanOutcome::Resolved => 1,
            SpanOutcome::Failed => 2,
            SpanOutcome::Rejected(r) => 3 + r as u64,
        }
    }
}

/// The complete causal timeline of one serve submission.
///
/// Storage is bounded: the phase buffer is pre-allocated by the
/// [`FlightRecorder`](crate::obs::recorder::FlightRecorder) and never
/// grows — past capacity, further phases are counted in
/// [`QuerySpan::dropped_phases`] instead of recorded.
#[derive(Clone, Debug, Default)]
pub struct QuerySpan {
    /// Serve ticket (0 for rejection spans).
    pub id: SpanId,
    /// Submitting stream.
    pub stream: usize,
    /// Shard that served the query (0 for rejection spans).
    pub shard: usize,
    /// [`PriorityClass`](crate::serve::PriorityClass) index.
    pub class: usize,
    /// Submission arrival time.
    pub arrival: Micros,
    /// Schedule completion time ([`Micros::ZERO`] unless resolved).
    pub completion: Micros,
    /// Wall time spent queued before the shard worker picked the query
    /// up (0 under the virtual clock).
    pub queued_us: u64,
    /// End-to-end turnaround (wall under the real clock, simulated under
    /// the virtual clock).
    pub turnaround_us: u64,
    /// Name of the solver front-end that ran ("" for cache hits and
    /// rejections).
    pub solver: &'static str,
    /// Whether the solve was a warm delta resume.
    pub delta: bool,
    /// Terminal state.
    pub outcome: SpanOutcome,
    /// Achieved-vs-optimal gap when the anytime budget expired.
    pub anytime_gap: Micros,
    /// Whether the anytime budget expired mid-solve.
    pub budget_expired: bool,
    /// Whether the serve was degraded (buckets dropped).
    pub degraded: bool,
    /// Whether the reply missed the submission's deadline.
    pub deadline_missed: bool,
    /// Phases that did not fit the bounded buffer.
    pub dropped_phases: u32,
    phases: Vec<PhaseRecord>,
}

impl QuerySpan {
    /// A span whose phase buffer holds up to `max_phases` records.
    pub fn with_capacity(max_phases: usize) -> QuerySpan {
        QuerySpan {
            phases: Vec::with_capacity(max_phases),
            ..QuerySpan::default()
        }
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Records one phase; counts it as dropped when the bounded buffer
    /// is full (never reallocates).
    pub(crate) fn record(&mut self, kind: PhaseKind, t_us: u64, a: u64, b: u64) {
        if self.phases.len() < self.phases.capacity() {
            self.phases.push(PhaseRecord { kind, t_us, a, b });
        } else {
            self.dropped_phases += 1;
        }
    }

    /// Clears everything except the phase buffer's allocation, readying
    /// the span shell for recycling.
    pub(crate) fn reset(&mut self) {
        let mut phases = std::mem::take(&mut self.phases);
        phases.clear();
        *self = QuerySpan {
            phases,
            ..QuerySpan::default()
        };
    }

    /// True when this span should survive head-sampling: a deadline
    /// miss, an expired anytime budget, a degraded serve, a failure or a
    /// rejection all keep the full timeline for postmortems.
    pub fn is_triggered(&self) -> bool {
        self.deadline_missed
            || self.budget_expired
            || self.degraded
            || matches!(self.outcome, SpanOutcome::Failed | SpanOutcome::Rejected(_))
    }

    /// Order-independent-of-wall-clock digest of the timeline: folds the
    /// phase kinds, their deterministic attributes
    /// ([`PhaseKind::digest_mask`]) and the span's deterministic fields.
    /// Under [`ServeClock::Virtual`](crate::serve::ServeClock::Virtual)
    /// the same submissions produce the same digests regardless of shard
    /// count.
    pub fn phase_digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.stream.hash(&mut h);
        self.class.hash(&mut h);
        self.arrival.hash(&mut h);
        self.completion.hash(&mut h);
        self.solver.hash(&mut h);
        self.delta.hash(&mut h);
        self.outcome.digest_code().hash(&mut h);
        self.anytime_gap.hash(&mut h);
        (self.budget_expired, self.degraded, self.deadline_missed).hash(&mut h);
        for p in &self.phases {
            let (use_a, use_b) = p.kind.digest_mask();
            // Fully masked kinds are skipped outright: not only their
            // attributes but their *presence* is shaped by the drain path
            // (a fused drain records a PlaneCheckout, a serial one does
            // not), so hashing the kind would leak shard count.
            if !use_a && !use_b {
                continue;
            }
            (p.kind as usize).hash(&mut h);
            if use_a {
                p.a.hash(&mut h);
            }
            if use_b {
                p.b.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// The always-compiled span channel inside
/// [`Tracer`](crate::obs::trace::Tracer).
///
/// Holds at most one active span (each shard worker serves one query at
/// a time). While disarmed, observing an event is a single `Option`
/// branch; while armed, the bridged kinds cost one `Instant::now()` and
/// one bounded push each.
#[derive(Debug, Default)]
pub struct SpanCollector {
    active: Option<QuerySpan>,
    epoch: Option<Instant>,
}

impl SpanCollector {
    /// Installs `span` as the active span; subsequent observed events
    /// append phases to it. Phase timestamps are relative to this call.
    pub(crate) fn arm(&mut self, span: QuerySpan) {
        self.epoch = Some(Instant::now());
        self.active = Some(span);
    }

    /// Removes and returns the active span, if any.
    pub(crate) fn disarm(&mut self) -> Option<QuerySpan> {
        self.epoch = None;
        self.active.take()
    }

    #[inline]
    fn now_us(&self) -> u64 {
        self.epoch
            .map(|e| e.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// Appends one phase to the active span (no-op while disarmed).
    #[inline]
    pub(crate) fn mark(&mut self, kind: PhaseKind, a: u64, b: u64) {
        if self.active.is_some() {
            let t = self.now_us();
            if let Some(span) = self.active.as_mut() {
                span.record(kind, t, a, b);
            }
        }
    }

    /// Records the solver front-end that took over the active span.
    #[inline]
    pub(crate) fn note_solver(&mut self, name: &'static str, delta: bool) {
        if self.active.is_some() {
            let t = self.now_us();
            if let Some(span) = self.active.as_mut() {
                span.solver = name;
                span.delta = delta;
                span.record(PhaseKind::Solver, t, delta as u64, 0);
            }
        }
    }

    /// Bridges one coarse [`TraceEvent`] into the active span. Hot
    /// per-operation events (augments, relabel passes, capacity
    /// increments, shard batches) are ignored — their aggregate counts
    /// live in [`SolveStats`](crate::schedule::SolveStats).
    #[inline]
    pub(crate) fn observe(&mut self, event: &TraceEvent) {
        if self.active.is_none() {
            return;
        }
        match *event {
            TraceEvent::SolveStart { query_size } => {
                self.mark(PhaseKind::SolveStart, query_size as u64, 0)
            }
            TraceEvent::ProbeEnd { budget, feasible } => {
                self.mark(PhaseKind::Probe, budget.0, feasible as u64)
            }
            TraceEvent::CacheHit { fingerprint } => self.mark(PhaseKind::CacheHit, fingerprint, 0),
            TraceEvent::DeltaPatch { changed, cancelled } => {
                self.mark(PhaseKind::DeltaPatch, changed as u64, cancelled as u64)
            }
            TraceEvent::RefinePass { cycles, moved } => {
                self.mark(PhaseKind::Refine, cycles as u64, moved as u64)
            }
            TraceEvent::BudgetExpired {
                achieved,
                lower_bound,
            } => {
                if let Some(span) = self.active.as_mut() {
                    span.budget_expired = true;
                    span.anytime_gap = achieved - lower_bound;
                }
                self.mark(PhaseKind::BudgetExpired, achieved.0, lower_bound.0)
            }
            TraceEvent::DegradedServe { served, dropped } => {
                if let Some(span) = self.active.as_mut() {
                    span.degraded = true;
                }
                self.mark(PhaseKind::Degraded, served as u64, dropped as u64)
            }
            TraceEvent::RetryScheduled { attempt, probe } => {
                self.mark(PhaseKind::Retry, attempt as u64, probe.0)
            }
            TraceEvent::HealthTransition { fingerprint } => {
                self.mark(PhaseKind::HealthTransition, fingerprint, 0)
            }
            TraceEvent::PlaneCheckout { shared } => {
                self.mark(PhaseKind::PlaneCheckout, shared as u64, 0)
            }
            TraceEvent::ProbeStart { .. }
            | TraceEvent::Augment { .. }
            | TraceEvent::RelabelPass { .. }
            | TraceEvent::CapacityIncrement { .. }
            | TraceEvent::ShardBatch { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_phase_buffer_drops_instead_of_growing() {
        let mut span = QuerySpan::with_capacity(2);
        let cap = span.phases.capacity();
        for i in 0..5 {
            span.record(PhaseKind::Probe, i, i, 0);
        }
        assert_eq!(span.phases().len(), cap);
        assert_eq!(span.dropped_phases as usize, 5 - cap);
        span.reset();
        assert!(span.phases().is_empty());
        assert_eq!(span.phases.capacity(), cap);
        assert_eq!(span.dropped_phases, 0);
    }

    #[test]
    fn digest_ignores_wall_clock_but_not_attributes() {
        let mut a = QuerySpan::with_capacity(8);
        let mut b = QuerySpan::with_capacity(8);
        a.record(PhaseKind::Probe, 10, 100, 1);
        b.record(PhaseKind::Probe, 9999, 100, 1); // same attrs, different wall time
        a.record(PhaseKind::Coalesced, 0, 4, 55);
        b.record(PhaseKind::Coalesced, 1, 7, 99); // coalesce attrs are wall-shaped
        assert_eq!(a.phase_digest(), b.phase_digest());
        b.record(PhaseKind::Probe, 0, 200, 0);
        assert_ne!(a.phase_digest(), b.phase_digest());
    }

    #[test]
    fn collector_bridges_coarse_events_only() {
        let mut c = SpanCollector::default();
        c.observe(&TraceEvent::CacheHit { fingerprint: 1 }); // disarmed: no-op
        c.arm(QuerySpan::with_capacity(8));
        c.observe(&TraceEvent::SolveStart { query_size: 6 });
        c.observe(&TraceEvent::Augment { bucket: 0 }); // hot: not bridged
        c.observe(&TraceEvent::ProbeEnd {
            budget: Micros(500),
            feasible: true,
        });
        c.observe(&TraceEvent::BudgetExpired {
            achieved: Micros(700),
            lower_bound: Micros(600),
        });
        c.note_solver("PR-binary", true);
        let span = c.disarm().unwrap();
        assert!(c.disarm().is_none());
        let kinds: Vec<PhaseKind> = span.phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::SolveStart,
                PhaseKind::Probe,
                PhaseKind::BudgetExpired,
                PhaseKind::Solver
            ]
        );
        assert!(span.budget_expired);
        assert_eq!(span.anytime_gap, Micros(100));
        assert_eq!(span.solver, "PR-binary");
        assert!(span.delta);
        assert!(span.is_triggered());
    }

    #[test]
    fn every_phase_kind_has_a_name() {
        for (i, k) in PhaseKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert!(!k.name().is_empty());
        }
        for r in RejectReason::ALL {
            assert!(!r.name().is_empty());
            assert_eq!(SpanOutcome::Rejected(r).name(), "rejected");
        }
    }
}
