//! Min-cost schedule refinement at the fixed optimal response time.
//!
//! The binary search of Algorithm 6 fixes the optimal response time
//! `t*`, but any maximum flow within budget `t*` is an acceptable
//! answer — and the first feasible flow a solver happens to find can
//! spread per-disk load very unevenly. When a
//! [`ScheduleObjective`](crate::spec::ScheduleObjective) other than
//! `FirstFeasible` is selected, [`refine_in`] runs a negative-cycle
//! canceling pass ([`rds_flow::mincost`]) over the *solved* residual
//! network, rebalancing which disks carry the flow while provably
//! keeping the response time at `t*`:
//!
//! 1. Disk capacities are re-clamped to budget `t*`
//!    ([`RetrievalInstance::set_caps_for_budget`]). The solved flow
//!    stays feasible — a disk serving `k` buckets completes at
//!    `overhead + k·cost ≤ t*`, hence `k ≤ capacity_within(t*)` — and
//!    from then on *every* complete flow the refiner can reach has
//!    response time `≤ t*`.
//! 2. Residual cycles carry no source-sink excess, so canceling them
//!    never changes the flow value: the schedule stays complete.
//! 3. `t*` is optimal, so no complete schedule has response time
//!    `< t*`. Together with (1) and (2) the refined schedule's response
//!    time is exactly `t*`.
//!
//! Costs live only on the disk→sink arcs and are derived from the
//! instance's *effective* disk costs (degraded disks already carry
//! their scaled access time), so the fault-degraded paths refine
//! correctly without extra plumbing.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::obs::trace::TraceEvent;
use crate::schedule::RetrievalOutcome;
use crate::spec::ScheduleObjective;
use crate::workspace::{on_graph, Workspace};
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_flow::mincost::{AffineCosts, CycleCanceler};

/// Reusable refinement scratch owned by every [`Workspace`]: the
/// canceler's Bellman-Ford arrays plus the per-edge-slot cost vectors.
/// Buffers grow to the largest instance seen and are then reused, so
/// steady-state refinement allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct RefineScratch {
    canceler: CycleCanceler,
    base: Vec<i64>,
    slope: Vec<i64>,
    arcs: Vec<u32>,
}

/// Direct relocation pass: repeatedly moves one bucket from its
/// current disk `a` to a spare replica disk `b` whenever the ladder
/// price of `a`'s last unit exceeds the price of `b`'s next unit —
/// i.e. cancels every negative *length-4* residual cycle by local
/// search, with no shortest-path machinery at all. Under the convex
/// ladder costs this is where almost all of the rebalancing happens;
/// the general canceler afterwards handles the rare longer cycles
/// (chained relocations through full disks) and certifies optimality.
///
/// Every move strictly decreases the integer total ladder cost, so the
/// pass terminates without an explicit bound. Returns the move count.
fn relocate_pass<W: ArenaIndex>(
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    base: &[i64],
    slope: &[i64],
    arcs: &mut Vec<u32>,
) -> u64 {
    let mut moves = 0u64;
    loop {
        let mut progress = false;
        for i in 0..inst.query_size() {
            let v = inst.bucket_vertex(i);
            arcs.clear();
            arcs.extend_from_slice(g.out_edges(v));
            let Some((e_cur, a)) = arcs.iter().find_map(|&slot| {
                let e = slot as usize;
                (e.is_multiple_of(2) && g.flow(e) > 0)
                    .then(|| (e, inst.disk_of_vertex(g.target(e))))
            }) else {
                continue;
            };
            let ea = inst.disk_edges[a];
            for &slot in arcs.iter() {
                let e = slot as usize;
                if !e.is_multiple_of(2) || e == e_cur || g.residual(e) <= 0 {
                    continue;
                }
                let b = inst.disk_of_vertex(g.target(e));
                let eb = inst.disk_edges[b];
                if g.residual(eb) <= 0 {
                    continue;
                }
                let out_price = base[ea] + g.flow(ea) * slope[ea];
                let in_price = base[eb] + (g.flow(eb) + 1) * slope[eb];
                if out_price > in_price {
                    g.push(e_cur ^ 1, 1);
                    g.push(e, 1);
                    g.push(ea ^ 1, 1);
                    g.push(eb, 1);
                    moves += 1;
                    progress = true;
                    break;
                }
            }
        }
        if !progress {
            return moves;
        }
    }
}

/// Runs `objective`'s refinement pass over the solved flow in
/// `ws.graph`, updating `outcome` in place (schedule, stats, trace).
/// No-op for [`ScheduleObjective::FirstFeasible`] and empty queries.
pub(crate) fn refine_in(
    objective: ScheduleObjective,
    inst: &RetrievalInstance,
    ws: &mut Workspace,
    outcome: &mut RetrievalOutcome,
) -> Result<(), SolveError> {
    if !objective.refines() || inst.query_size() == 0 {
        return Ok(());
    }
    let t_star = outcome.response_time;
    let stats = on_graph!(ws, |g| {
        inst.set_caps_for_budget(&mut *g, t_star);

        let slots = g.num_edge_slots();
        let q = inst.query_size() as i64;
        let scratch = &mut ws.refine;
        scratch.base.clear();
        scratch.base.resize(slots, 0);
        scratch.slope.clear();
        scratch.slope.resize(slots, 0);
        match objective {
            ScheduleObjective::MinTotalLoad => {
                // Lexicographic affine costs: the primary term prices the
                // k-th unit on disk j at cost(j) * SCALE, so cycle signs are
                // decided by the total weighted load Σ k_j·cost(j) first.
                // The +1-per-extra-unit slope breaks ties toward even
                // per-disk counts among equal-cost disks. A vertex-simple
                // residual cycle traverses at most two disk→sink slots, so
                // any SCALE > 2q keeps the tiebreak strictly subordinate.
                let scale = 2 * q + 2;
                for (j, &e) in inst.disk_edges.iter().enumerate() {
                    scratch.base[e] = inst.disks[j].cost().as_micros() as i64 * scale;
                    scratch.slope[e] = 1;
                }
            }
            ScheduleObjective::MinMaxLoad => {
                // Piecewise-convex completion penalty: the k-th unit on disk
                // j costs completion_time(k) = overhead(j) + k·cost(j) — the
                // disk's actual finish time once it serves k buckets. At a
                // cycle-optimal flow the *last* unit on any loaded disk is no
                // costlier than the *next* unit anywhere else, which evens
                // out completion times (overheads included) instead of raw
                // bucket counts.
                for (j, &e) in inst.disk_edges.iter().enumerate() {
                    let d = &inst.disks[j];
                    let c = d.cost().as_micros() as i64;
                    scratch.base[e] = d.overhead().as_micros() as i64 + c;
                    scratch.slope[e] = c;
                }
            }
            _ => return Ok(()),
        }

        // Fast local rebalance first: single-bucket relocations are the
        // length-4 negative cycles, and in practice nearly all of them.
        let relocations = relocate_pass(
            inst,
            &mut *g,
            &scratch.base,
            &scratch.slope,
            &mut scratch.arcs,
        );

        let costs = AffineCosts {
            base: &scratch.base,
            slope: &scratch.slope,
        };
        // Every cancellation strictly decreases an integer cost bounded by
        // O(q² · scale); the explicit bound is a belt-and-braces guard.
        // Costs live only on the disk→sink arcs, so the hub-structured
        // canceler applies with the sink as hub.
        let bound = 1_000 + 8 * (q as u64) * (q as u64);
        let mut stats = scratch
            .canceler
            .refine_via_hub(&mut *g, &costs, inst.sink(), bound);
        stats.cycles += relocations;
        stats.moved += 4 * relocations;

        if stats.cycles > 0 {
            // Cycle cancellations change which disks carry the flow but not
            // the flow value (complete) or the response time (pinned at t*
            // by the re-clamped caps), so only the assignments need refresh.
            outcome.schedule.refresh_from_flow(inst, &*g)?;
            debug_assert_eq!(
                outcome.schedule.response_time(&inst.disks),
                t_star,
                "refinement must preserve the optimal response time"
            );
        }
        stats
    });

    let mut total = outcome.stats;
    total.refine_passes += 1;
    total.refine_cycles += stats.cycles;
    total.refine_moved += stats.moved;
    total.refine_searches += stats.searches;
    outcome.stats = total;
    ws.tracer.emit(TraceEvent::RefinePass {
        cycles: stats.cycles as u32,
        moved: stats.moved as u32,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RetrievalSolver;
    use crate::spec::{SolverKind, SolverSpec};
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    #[test]
    fn refinement_preserves_response_time_and_flow_value() {
        let system = SystemConfig::homogeneous(CHEETAH, 14);
        let alloc = OrthogonalAllocation::paper_7x7();
        let inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 5, 4).buckets(7));
        let plain = SolverSpec::new(SolverKind::PushRelabelBinary)
            .build()
            .solve(&inst)
            .unwrap();
        for objective in [
            ScheduleObjective::MinTotalLoad,
            ScheduleObjective::MinMaxLoad,
        ] {
            let refined = SolverSpec::new(SolverKind::PushRelabelBinary)
                .objective(objective)
                .solve(&inst)
                .unwrap();
            assert_eq!(refined.response_time, plain.response_time);
            assert_eq!(refined.flow_value, plain.flow_value);
            assert_eq!(refined.stats.refine_passes, 1);
            assert!(
                refined.schedule.total_weighted_load(&inst.disks)
                    <= plain.schedule.total_weighted_load(&inst.disks)
                    || objective == ScheduleObjective::MinMaxLoad
            );
        }
    }

    #[test]
    fn first_feasible_skips_refinement() {
        let system = SystemConfig::homogeneous(CHEETAH, 14);
        let alloc = OrthogonalAllocation::paper_7x7();
        let inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 3, 2).buckets(7));
        let outcome = SolverSpec::new(SolverKind::PushRelabelBinary)
            .solve(&inst)
            .unwrap();
        assert_eq!(outcome.stats.refine_passes, 0);
        assert_eq!(outcome.stats.refine_cycles, 0);
    }
}
