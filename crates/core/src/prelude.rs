//! One-stop import for the common surface of `rds-core`.
//!
//! ```
//! use rds_core::prelude::*;
//! use rds_decluster::orthogonal::OrthogonalAllocation;
//! use rds_decluster::query::{Query, RangeQuery};
//! use rds_storage::experiments::paper_example;
//!
//! let system = paper_example();
//! let alloc = OrthogonalAllocation::paper_7x7();
//! let inst = RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 3, 2).buckets(7));
//! let outcome = SolverSpec::new(SolverKind::PushRelabelBinary)
//!     .build()
//!     .solve(&inst)
//!     .unwrap();
//! assert_eq!(outcome.schedule.len(), 6);
//! ```

pub use crate::engine::{
    BatchQuery, Engine, EngineBuilder, EngineMetrics, EngineStats, MetricsSnapshot, RetryPolicy,
};
pub use crate::error::{EngineError, SessionError, SolveError};
pub use crate::fault::{DiskHealth, FaultInjector, HealthMap};
pub use crate::network::RetrievalInstance;
pub use crate::obs::metrics::{Histogram, LatencySummary, MetricsRegistry};
pub use crate::obs::recorder::{FlightRecorder, FlightRecorderConfig, Postmortem, RecorderStats};
pub use crate::obs::slo::{SloPolicy, SloReport, SloTarget};
pub use crate::obs::span::{PhaseKind, QuerySpan, RejectReason, SpanId, SpanOutcome};
pub use crate::obs::trace::{EventKind, Recorder, TraceEvent, Tracer};
pub use crate::schedule::{RetrievalOutcome, Schedule, SolveStats};
pub use crate::serve::{
    PriorityClass, QueryRequest, Rejected, ServeClock, ServeConfig, ServeError, ServeHandle,
    ServeReport, ServeResponse, ServeStats, Ticket,
};
pub use crate::session::{
    RetrievalSession, ReuseCounters, ReusePolicy, SessionOutcome, SessionState,
};
pub use crate::solver::RetrievalSolver;
pub use crate::spec::{
    AnySolver, ArenaLayout, ScheduleObjective, SolveBudget, SolverKind, SolverSpec,
};
pub use crate::workspace::{PoisonedWorkspace, Workspace};
