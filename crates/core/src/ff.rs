//! Ford-Fulkerson based integrated retrieval (paper Algorithms 1-3).
//!
//! Both solvers route one unit of flow per bucket with a residual DFS from
//! the bucket's vertex to the sink (the source is excluded from the search,
//! matching the paper's pre-assigned source flows). When no augmenting path
//! exists, disk-edge capacities are raised:
//!
//! * [`FordFulkersonBasic`] (Algorithm 1) — basic problem only: capacities
//!   start at `⌈|Q|/N⌉` and are incremented *all together*.
//! * [`FordFulkersonIncremental`] (Algorithms 2+3) — generalized problem:
//!   capacities start at 0 and only the minimum-next-cost edges are
//!   incremented ([`crate::increment::MinCostIncrementer`]).
//!
//! The residual-graph representation makes the paper's explicit
//! `reverse_edge` / `fixReversedEdges` bookkeeping unnecessary: augmenting
//! along a path that traverses a reverse edge *is* the re-decision of a
//! previously assigned bucket.

use crate::error::SolveError;
use crate::increment::MinCostIncrementer;
use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, Tracer};
use crate::pr::{budget_work, outcome_with_budget};
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use crate::workspace::{on_graph, ArmedBudget, Workspace};
use rds_flow::ford_fulkerson::AugmentingPath;
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_storage::time::Micros;

/// Anytime bail-out shared by both Ford-Fulkerson solvers: raises every
/// disk-edge capacity to `capacity_within(t_max)` of the greedy feasible
/// upper bound (never lowering a capacity), after which every remaining
/// per-bucket augment succeeds without further increments. Returns the
/// lower bound to report the optimality gap against.
fn ff_bail_caps<W: ArenaIndex>(inst: &RetrievalInstance, g: &mut FlowGraph<W>) -> Micros {
    let (t_lo, t_hi, _) = inst.tightened_bounds(&mut Vec::new());
    for (j, &e) in inst.disk_edges.iter().enumerate() {
        let cap = inst.disks[j].capacity_within(t_hi) as i64;
        if cap > g.cap(e) {
            g.set_cap(e, cap);
        }
    }
    t_lo
}

/// Algorithm 1: integrated Ford-Fulkerson for the **basic** retrieval
/// problem (homogeneous unloaded disks).
#[derive(Clone, Copy, Debug, Default)]
pub struct FordFulkersonBasic;

impl RetrievalSolver for FordFulkersonBasic {
    fn name(&self) -> &'static str {
        "FF-basic"
    }

    /// Returns [`SolveError::UnsupportedSystem`] if the system is not
    /// homogeneous and unloaded — Algorithm 1's uniform capacity
    /// increments are only optimal in that setting; use
    /// [`FordFulkersonIncremental`] otherwise.
    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        let homogeneous = inst.disks.windows(2).all(|w| w[0] == w[1])
            && inst
                .disks
                .first()
                .map(|d| d.overhead() == rds_storage::time::Micros::ZERO)
                .unwrap_or(true);
        if !homogeneous {
            return Err(SolveError::UnsupportedSystem {
                reason: "FordFulkersonBasic requires homogeneous unloaded disks",
            });
        }

        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let result = on_graph!(ws, |g| ff_basic_body(
            inst,
            g,
            &mut ws.search,
            &mut ws.tracer,
            budget
        ));
        ws.complete();
        result
    }
}

/// The width-generic body of Algorithm 1.
fn ff_basic_body<W: ArenaIndex>(
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    search: &mut AugmentingPath,
    tracer: &mut Tracer,
    budget: ArmedBudget,
) -> Result<RetrievalOutcome, SolveError> {
    let mut stats = SolveStats::default();
    let q = inst.query_size();
    let n = inst.num_disks();
    if q == 0 {
        return RetrievalOutcome::try_from_flow(inst, g, stats);
    }

    // Lines 1-2: caps ← ⌈|Q|/N⌉ (the theoretical lower bound; the
    // paper's 6-bucket example on 7 disks uses capacity 1).
    let lower = (q.div_ceil(n)) as i64;
    for &e in &inst.disk_edges {
        g.set_cap(e, lower);
    }

    let s = inst.source();
    let t = inst.sink();
    let mut bailed: Option<Micros> = None;
    for i in 0..q {
        // The source edge of bucket i is pre-assigned flow 1.
        g.push(inst.bucket_edges[i], 1);
        let from = inst.bucket_vertex(i);
        loop {
            if bailed.is_none() && budget.expired(budget_work(&stats)) {
                bailed = Some(ff_bail_caps(inst, g));
            }
            stats.dfs_calls += 1;
            if search.dfs_augment_avoiding(g, from, t, Some(s)) > 0 {
                tracer.emit(TraceEvent::Augment { bucket: i as u32 });
                break;
            }
            // Lines 5-8: raise every disk-edge capacity by one.
            for &e in &inst.disk_edges {
                g.set_cap(e, g.cap(e) + 1);
            }
            stats.increments += 1;
            tracer.emit(TraceEvent::CapacityIncrement {
                edges: inst.disk_edges.len() as u32,
            });
        }
    }
    debug_assert_eq!(g.net_inflow(t) as usize, q);
    outcome_with_budget(inst, g, stats, bailed, tracer)
}

/// Algorithms 2+3: integrated Ford-Fulkerson for the **generalized**
/// retrieval problem.
#[derive(Clone, Copy, Debug, Default)]
pub struct FordFulkersonIncremental;

impl RetrievalSolver for FordFulkersonIncremental {
    fn name(&self) -> &'static str {
        "FF-incremental"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let result = on_graph!(ws, |g| ff_incremental_body(
            inst,
            g,
            &mut ws.search,
            &mut ws.tracer,
            budget
        ));
        ws.complete();
        result
    }
}

/// The width-generic body of Algorithms 2+3.
fn ff_incremental_body<W: ArenaIndex>(
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    search: &mut AugmentingPath,
    tracer: &mut Tracer,
    budget: ArmedBudget,
) -> Result<RetrievalOutcome, SolveError> {
    let mut stats = SolveStats::default();
    let q = inst.query_size();
    if q == 0 {
        return RetrievalOutcome::try_from_flow(inst, g, stats);
    }

    // Lines 1-2: capacities start at zero — no closed-form lower bound
    // exists for heterogeneous disks.
    let s = inst.source();
    let t = inst.sink();
    let mut inc = MinCostIncrementer::new(inst);
    let mut bailed: Option<Micros> = None;
    for i in 0..q {
        g.push(inst.bucket_edges[i], 1);
        let from = inst.bucket_vertex(i);
        loop {
            if bailed.is_none() && budget.expired(budget_work(&stats)) {
                bailed = Some(ff_bail_caps(inst, g));
            }
            stats.dfs_calls += 1;
            if search.dfs_augment_avoiding(g, from, t, Some(s)) > 0 {
                tracer.emit(TraceEvent::Augment { bucket: i as u32 });
                break;
            }
            // Line 6: raise only the minimum-cost edge(s).
            let raised = inc.increment(inst, g);
            stats.increments += 1;
            tracer.emit(TraceEvent::CapacityIncrement {
                edges: raised as u32,
            });
            if raised == 0 {
                return Err(SolveError::Infeasible {
                    bucket: None,
                    delivered: i as i64,
                    required: q as i64,
                });
            }
        }
    }
    debug_assert_eq!(g.net_inflow(t) as usize, q);
    outcome_with_budget(inst, g, stats, bailed, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_outcome_valid, oracle_optimal_response};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::experiments::paper_example;
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;
    use rds_storage::time::Micros;

    fn basic_instance() -> RetrievalInstance {
        let system = SystemConfig::homogeneous(CHEETAH, 7);
        let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
        let q1 = RangeQuery::new(0, 0, 3, 2);
        RetrievalInstance::build(&system, &alloc, &q1.buckets(7))
    }

    #[test]
    fn basic_solves_paper_q1_in_one_access_per_disk() {
        // q1 has 6 buckets on 7 disks with replication: optimal is one
        // bucket per disk, 6.1 ms.
        let inst = basic_instance();
        let outcome = FordFulkersonBasic.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 6);
        assert_eq!(outcome.response_time, Micros::from_tenths_ms(61));
        assert_outcome_valid(&inst, &outcome);
    }

    #[test]
    fn incremental_matches_basic_on_basic_problem() {
        let inst = basic_instance();
        let a = FordFulkersonBasic.solve(&inst).unwrap();
        let b = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(a.response_time, b.response_time);
        assert_outcome_valid(&inst, &b);
    }

    #[test]
    fn incremental_solves_generalized_paper_example() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q1 = RangeQuery::new(0, 0, 3, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
        let outcome = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 6);
        assert_outcome_valid(&inst, &outcome);
        assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    }

    #[test]
    fn incremental_is_optimal_on_random_instances() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(31);
        for _ in 0..10 {
            let n = rng.gen_range(3..8);
            let system = rds_storage::experiments::experiment(
                rds_storage::experiments::ExperimentId::Exp5,
                n,
                rng.gen_u64(),
            );
            let alloc = OrthogonalAllocation::new(n, Placement::PerSite);
            let r = rng.gen_range(1..=n);
            let c = rng.gen_range(1..=n);
            let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let outcome = FordFulkersonIncremental.solve(&inst).unwrap();
            assert_outcome_valid(&inst, &outcome);
            assert_eq!(
                outcome.response_time,
                oracle_optimal_response(&inst),
                "n={n} q={:?}",
                q
            );
        }
    }

    #[test]
    fn empty_query_is_trivial() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let a = FordFulkersonBasic.solve(&inst).unwrap();
        let b = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(a.flow_value, 0);
        assert_eq!(b.response_time, Micros::ZERO);
    }

    #[test]
    fn basic_rejects_heterogeneous_system() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q1 = RangeQuery::new(0, 0, 2, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
        match FordFulkersonBasic.solve(&inst) {
            Err(SolveError::UnsupportedSystem { reason }) => {
                assert!(reason.contains("homogeneous"));
            }
            other => panic!("expected UnsupportedSystem, got {other:?}"),
        }
    }

    #[test]
    fn worst_case_all_buckets_on_one_disk() {
        // Degenerate allocation: every bucket only on disk 0 → the disk
        // serves everything; increments scale O(|Q|).
        use rds_decluster::allocation::{ReplicaSource, Replicas};
        struct OneDisk;
        impl ReplicaSource for OneDisk {
            fn grid_size(&self) -> usize {
                4
            }
            fn num_disks(&self) -> usize {
                4
            }
            fn replicas(&self, _b: rds_decluster::query::Bucket) -> Replicas {
                Replicas::from_slice(&[0])
            }
        }
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let q = RangeQuery::new(0, 0, 2, 2);
        let inst = RetrievalInstance::build(&system, &OneDisk, &q.buckets(4));
        let outcome = FordFulkersonIncremental.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 4);
        // All four buckets from disk 0: 4 * 6.1ms.
        assert_eq!(outcome.response_time, Micros::from_tenths_ms(244));
        assert_outcome_valid(&inst, &outcome);
    }
}
