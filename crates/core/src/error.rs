//! Error types of the fallible solver and session APIs.
//!
//! Every solver entry point ([`crate::solver::RetrievalSolver::solve_in`]
//! and the `solve` convenience wrapper) returns `Result<_, SolveError>`
//! instead of panicking on malformed or unsolvable inputs;
//! [`crate::session::SessionState::submit_with`] wraps those plus the
//! session-level protocol violations in [`SessionError`].

use rds_decluster::query::Bucket;
use rds_storage::time::Micros;

/// Why a solve could not produce a complete retrieval schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The query cannot be completed at any budget: some bucket has no
    /// retrievable replica (all of them offline, or no replica path at
    /// all), so no budget — however large — retrieves the whole query.
    Infeasible {
        /// The first bucket with no surviving replica, when the failure
        /// was detected up front from the health map; `None` when the
        /// capacity increments simply ran out mid-solve.
        bucket: Option<Bucket>,
        /// Flow delivered (or deliverable) when infeasibility was
        /// established.
        delivered: i64,
        /// The query size `|Q|` the flow had to reach.
        required: i64,
    },
    /// The final flow claimed completion but left `bucket` without a
    /// saturated edge to a disk — a solver-internal invariant violation
    /// surfaced as an error instead of a panic.
    IncompleteFlow {
        /// The bucket no disk serves in the extracted schedule.
        bucket: Bucket,
    },
    /// The algorithm's preconditions exclude this system (e.g.
    /// `FordFulkersonBasic` on a heterogeneous or loaded system, where
    /// its uniform capacity increments are not optimal).
    UnsupportedSystem {
        /// Human-readable precondition that failed.
        reason: &'static str,
    },
    /// The solver cannot resume from a warm delta-patched workspace
    /// (Ford-Fulkerson and blackbox solvers rebuild per query). Callers
    /// fall back to a cold [`crate::solver::RetrievalSolver::solve_in`];
    /// the [`crate::session::SessionState`] delta path does this
    /// transparently.
    DeltaUnsupported {
        /// `RetrievalSolver::name()` of the refusing solver.
        solver: &'static str,
    },
    /// The instance does not fit the requested compact (`i32`) arena:
    /// some capacity or cached flow exceeds the narrow width's range.
    /// Raised only under [`ArenaLayout::Compact`](crate::spec::ArenaLayout)
    /// — `Auto` measures the instance and widens instead — or when a
    /// delta-patched stream grows past the compact bound mid-session
    /// (the session drops the warm state and re-solves wide).
    ArenaOverflow {
        /// Edge slot whose value overflowed the narrow width.
        edge: usize,
        /// The offending capacity or flow value.
        value: i64,
        /// Name of the width that could not hold it (`"i32"`).
        width: &'static str,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible {
                bucket,
                delivered,
                required,
            } => match bucket {
                Some(b) => write!(
                    f,
                    "retrieval instance is infeasible: bucket {b} has no surviving replica \
                     ({delivered} of {required} units deliverable)"
                ),
                None => write!(
                    f,
                    "retrieval instance is infeasible: {delivered} of {required} units delivered"
                ),
            },
            SolveError::IncompleteFlow { bucket } => {
                write!(f, "bucket {bucket} is not retrieved by the flow")
            }
            SolveError::UnsupportedSystem { reason } => {
                write!(f, "unsupported system: {reason}")
            }
            SolveError::DeltaUnsupported { solver } => {
                write!(f, "solver {solver} does not support warm delta re-solves")
            }
            SolveError::ArenaOverflow { edge, value, width } => {
                write!(
                    f,
                    "instance does not fit the compact arena: edge {edge} holds {value}, \
                     which overflows {width}"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<rds_flow::WidthOverflow> for SolveError {
    fn from(e: rds_flow::WidthOverflow) -> Self {
        SolveError::ArenaOverflow {
            edge: e.edge,
            value: e.value,
            width: e.width,
        }
    }
}

/// Why a session refused or failed a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// The query's arrival time precedes the previous query's arrival;
    /// session time is virtual and must be monotone non-decreasing.
    NonMonotoneArrival {
        /// The offending arrival time.
        arrival: Micros,
        /// The session's current virtual time.
        now: Micros,
    },
    /// The underlying solve failed.
    Solve(SolveError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NonMonotoneArrival { arrival, now } => write!(
                f,
                "query arrivals must be monotone: {arrival} precedes current time {now}"
            ),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

/// Why the batch engine could not produce a result for one query.
///
/// Per-query session failures pass through as [`EngineError::Session`];
/// [`EngineError::ShardFailed`] is the engine's fault-containment
/// boundary — a worker panic is caught per shard and surfaced here
/// instead of crossing `submit_batch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The query's own session submit failed (bad arrival, infeasible or
    /// rejected solve). The rest of the batch is unaffected.
    Session(SessionError),
    /// The worker owning this query's shard panicked before this query
    /// produced a result. Queries of the same shard that completed before
    /// the panic keep their results; other shards are unaffected.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Session(e) => write!(f, "{e}"),
            EngineError::ShardFailed { shard } => {
                write!(
                    f,
                    "shard {shard} worker panicked; its remaining queries were dropped"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for EngineError {
    fn from(e: SessionError) -> Self {
        EngineError::Session(e)
    }
}

impl From<SolveError> for EngineError {
    fn from(e: SolveError) -> Self {
        EngineError::Session(SessionError::Solve(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        let e = SolveError::Infeasible {
            bucket: None,
            delivered: 3,
            required: 5,
        };
        assert!(e.to_string().contains("infeasible"));
        let e = SolveError::Infeasible {
            bucket: Some(Bucket::new(2, 3)),
            delivered: 3,
            required: 5,
        };
        assert!(e.to_string().contains("no surviving replica"));
        let e = SolveError::IncompleteFlow {
            bucket: Bucket::new(1, 2),
        };
        assert!(e.to_string().contains("not retrieved"));
        let e = SolveError::UnsupportedSystem {
            reason: "homogeneous unloaded disks required",
        };
        assert!(e.to_string().contains("homogeneous"));
        let e = SolveError::DeltaUnsupported { solver: "BB-PR" };
        assert!(e.to_string().contains("delta"));
        let e = SolveError::from(rds_flow::WidthOverflow {
            edge: 7,
            value: 1 << 40,
            width: "i32",
        });
        assert!(matches!(e, SolveError::ArenaOverflow { edge: 7, .. }));
        assert!(e.to_string().contains("overflows i32"));
    }

    #[test]
    fn session_error_wraps_solve_error() {
        let inner = SolveError::Infeasible {
            bucket: None,
            delivered: 0,
            required: 1,
        };
        let e = SessionError::from(inner);
        assert_eq!(e, SessionError::Solve(inner));
        assert!(std::error::Error::source(&e).is_some());
        let m = SessionError::NonMonotoneArrival {
            arrival: Micros(5),
            now: Micros(10),
        };
        assert!(m.to_string().contains("monotone"));
        assert!(std::error::Error::source(&m).is_none());
    }

    #[test]
    fn engine_error_wraps_and_reports() {
        let inner = SessionError::NonMonotoneArrival {
            arrival: Micros(5),
            now: Micros(10),
        };
        let e = EngineError::from(inner);
        assert_eq!(e, EngineError::Session(inner));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("monotone"));

        let s = EngineError::ShardFailed { shard: 3 };
        assert!(s.to_string().contains("shard 3"));
        assert!(std::error::Error::source(&s).is_none());

        let via_solve = EngineError::from(SolveError::UnsupportedSystem { reason: "x" });
        assert!(matches!(
            via_solve,
            EngineError::Session(SessionError::Solve(SolveError::UnsupportedSystem { .. }))
        ));
    }
}
