//! Error types of the fallible solver and session APIs.
//!
//! Every solver entry point ([`crate::solver::RetrievalSolver::solve_in`]
//! and the `solve` convenience wrapper) returns `Result<_, SolveError>`
//! instead of panicking on malformed or unsolvable inputs;
//! [`crate::session::SessionState::submit_with`] wraps those plus the
//! session-level protocol violations in [`SessionError`].

use rds_decluster::query::Bucket;
use rds_storage::time::Micros;

/// Why a solve could not produce a complete retrieval schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// Capacity increments ran out before the sink received `required`
    /// units: some bucket has no replica path, so no budget — however
    /// large — retrieves the whole query.
    Infeasible {
        /// Flow delivered when the increment set went empty.
        delivered: i64,
        /// The query size `|Q|` the flow had to reach.
        required: i64,
    },
    /// The final flow claimed completion but left `bucket` without a
    /// saturated edge to a disk — a solver-internal invariant violation
    /// surfaced as an error instead of a panic.
    IncompleteFlow {
        /// The bucket no disk serves in the extracted schedule.
        bucket: Bucket,
    },
    /// The algorithm's preconditions exclude this system (e.g.
    /// `FordFulkersonBasic` on a heterogeneous or loaded system, where
    /// its uniform capacity increments are not optimal).
    UnsupportedSystem {
        /// Human-readable precondition that failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible {
                delivered,
                required,
            } => write!(
                f,
                "retrieval instance is infeasible: {delivered} of {required} units delivered"
            ),
            SolveError::IncompleteFlow { bucket } => {
                write!(f, "bucket {bucket} is not retrieved by the flow")
            }
            SolveError::UnsupportedSystem { reason } => {
                write!(f, "unsupported system: {reason}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Why a session refused or failed a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// The query's arrival time precedes the previous query's arrival;
    /// session time is virtual and must be monotone non-decreasing.
    NonMonotoneArrival {
        /// The offending arrival time.
        arrival: Micros,
        /// The session's current virtual time.
        now: Micros,
    },
    /// The underlying solve failed.
    Solve(SolveError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NonMonotoneArrival { arrival, now } => write!(
                f,
                "query arrivals must be monotone: {arrival} precedes current time {now}"
            ),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        let e = SolveError::Infeasible {
            delivered: 3,
            required: 5,
        };
        assert!(e.to_string().contains("infeasible"));
        let e = SolveError::IncompleteFlow {
            bucket: Bucket::new(1, 2),
        };
        assert!(e.to_string().contains("not retrieved"));
        let e = SolveError::UnsupportedSystem {
            reason: "homogeneous unloaded disks required",
        };
        assert!(e.to_string().contains("homogeneous"));
    }

    #[test]
    fn session_error_wraps_solve_error() {
        let inner = SolveError::Infeasible {
            delivered: 0,
            required: 1,
        };
        let e = SessionError::from(inner);
        assert_eq!(e, SessionError::Solve(inner));
        assert!(std::error::Error::source(&e).is_some());
        let m = SessionError::NonMonotoneArrival {
            arrival: Micros(5),
            now: Micros(10),
        };
        assert!(m.to_string().contains("monotone"));
        assert!(std::error::Error::source(&m).is_none());
    }
}
