//! Disk fault model: health states, deterministic fault injection, and
//! best-effort degraded retrieval.
//!
//! The paper's model assumes every replica disk listed by the allocation
//! is alive and serves at its nominal `(D_j, X_j, C_j)` spec. Real
//! deployments lose disks outright and — more insidiously — keep "gray"
//! disks that answer, just several times slower than their spec. This
//! module makes both first-class:
//!
//! * [`DiskHealth`] / [`HealthMap`] — per-disk health: `Healthy`,
//!   `Degraded { load_factor }` (inflates `C_j` and `X_j`), or `Offline`.
//!   [`crate::network::RetrievalInstance::rebuild_with_health`] prunes
//!   offline replicas and scales degraded disk parameters, so **every**
//!   solver transparently plans around faults.
//! * [`solve_degraded`] / [`PartialSchedule`] — when a requested bucket
//!   has lost all of its replicas, a strict solve reports
//!   [`crate::error::SolveError::Infeasible`] naming the bucket; the
//!   degraded path instead retrieves the servable subset optimally and
//!   returns the unservable buckets alongside.
//! * [`FaultInjector`] — a deterministic outage/recovery schedule in
//!   simulated time (seeded through [`rds_util::SplitMix64`] for random
//!   schedules). Health at time `t` is a pure function of the schedule,
//!   so chaos runs are reproducible for any shard count or thread
//!   interleaving.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::solver::RetrievalSolver;
use crate::workspace::Workspace;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_storage::model::{Disk, SystemConfig};
use rds_storage::time::Micros;
use rds_util::SplitMix64;

/// Health of one disk, as seen by the planner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DiskHealth {
    /// Serving at nominal spec.
    #[default]
    Healthy,
    /// Alive but slow (a "gray" disk): per-bucket cost `C_j` and initial
    /// load `X_j` are multiplied by `load_factor`/100.
    Degraded {
        /// Slowdown in percent; values below 100 are treated as 100
        /// (degradation never speeds a disk up).
        load_factor: u32,
    },
    /// Down: no replica on this disk is retrievable.
    Offline,
}

impl DiskHealth {
    /// True when the disk cannot serve any request.
    #[inline]
    pub fn is_offline(self) -> bool {
        matches!(self, DiskHealth::Offline)
    }

    /// True when the disk serves at nominal spec.
    #[inline]
    pub fn is_healthy(self) -> bool {
        matches!(self, DiskHealth::Healthy)
    }

    /// The effective slowdown multiplier in percent (100 for healthy
    /// disks; offline disks report 100 too — they are pruned, not
    /// slowed).
    #[inline]
    pub fn load_factor_percent(self) -> u64 {
        match self {
            DiskHealth::Degraded { load_factor } => load_factor.max(100) as u64,
            DiskHealth::Healthy | DiskHealth::Offline => 100,
        }
    }
}

/// Per-disk health of a whole storage system.
///
/// Sparse-friendly: disks beyond the recorded prefix are implicitly
/// [`DiskHealth::Healthy`], so `HealthMap::default()` means "everything
/// up" regardless of system size and costs nothing to construct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthMap {
    states: Vec<DiskHealth>,
}

impl HealthMap {
    /// All disks healthy.
    pub fn all_healthy() -> HealthMap {
        HealthMap::default()
    }

    /// A map with the given disks offline (everything else healthy).
    pub fn with_offline(offline: &[usize]) -> HealthMap {
        let mut map = HealthMap::default();
        for &j in offline {
            map.set(j, DiskHealth::Offline);
        }
        map
    }

    /// Sets disk `j`'s health, growing the map as needed.
    pub fn set(&mut self, j: usize, health: DiskHealth) {
        if j >= self.states.len() {
            if health.is_healthy() {
                return; // implicit state already
            }
            self.states.resize(j + 1, DiskHealth::Healthy);
        }
        self.states[j] = health;
    }

    /// Health of disk `j` (disks never touched are healthy).
    #[inline]
    pub fn health(&self, j: usize) -> DiskHealth {
        self.states.get(j).copied().unwrap_or_default()
    }

    /// True when disk `j` is offline.
    #[inline]
    pub fn is_offline(&self, j: usize) -> bool {
        self.health(j).is_offline()
    }

    /// True when no disk is marked offline or degraded.
    pub fn all_up(&self) -> bool {
        self.states.iter().all(|h| h.is_healthy())
    }

    /// True when at least one disk is offline.
    pub fn any_offline(&self) -> bool {
        self.states.iter().any(|h| h.is_offline())
    }

    /// Offline disk indices, ascending.
    pub fn offline_disks(&self) -> impl Iterator<Item = usize> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_offline())
            .map(|(j, _)| j)
    }

    /// Resets every disk to healthy (keeps the allocation).
    pub fn reset(&mut self) {
        self.states.clear();
    }

    /// The disk parameters disk `j` effectively presents under this map:
    /// degraded disks have `C_j` and `X_j` inflated by their load factor;
    /// healthy and offline disks are returned unchanged (offline disks
    /// are pruned from the network, never planned for).
    pub fn apply(&self, j: usize, d: &Disk) -> Disk {
        match self.health(j) {
            DiskHealth::Degraded { load_factor } => {
                let f = load_factor.max(100) as u64;
                let scale = |m: Micros| Micros::from_micros(m.as_micros() * f / 100);
                let mut spec = d.spec;
                spec.access_time = scale(spec.access_time);
                Disk {
                    spec,
                    network_delay: d.network_delay,
                    initial_load: scale(d.initial_load),
                }
            }
            DiskHealth::Healthy | DiskHealth::Offline => *d,
        }
    }

    /// An order-independent digest of the non-healthy entries, used by
    /// [`crate::session::SessionState`] to detect health changes between
    /// submits (a changed digest forces an instance rebuild). All-healthy
    /// maps of any size share the digest [`HealthMap::HEALTHY_FINGERPRINT`].
    pub fn fingerprint(&self) -> u64 {
        let mut acc = Self::HEALTHY_FINGERPRINT;
        for (j, h) in self.states.iter().enumerate() {
            let code = match *h {
                DiskHealth::Healthy => continue,
                DiskHealth::Degraded { load_factor } => 0x1_0000_0000u64 | load_factor as u64,
                DiskHealth::Offline => 0x2_0000_0000u64,
            };
            // FNV-style per-entry hash, XOR-combined so order never matters.
            let mut x = (j as u64) ^ code.rotate_left(17);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            acc ^= x ^ (x >> 31);
        }
        acc
    }

    /// Fingerprint of an all-healthy map.
    pub const HEALTHY_FINGERPRINT: u64 = 0xcbf2_9ce4_8422_2325;

    /// Length of the explicitly recorded prefix (every disk at or beyond
    /// this index is implicitly healthy).
    pub fn states_len(&self) -> usize {
        self.states.len()
    }
}

/// A best-effort retrieval result under faults: the optimal schedule over
/// the buckets that still have a live replica, plus the buckets that have
/// none.
#[must_use]
#[derive(Clone, Debug)]
pub struct PartialSchedule {
    /// Solver outcome over the servable subset (empty schedule when no
    /// bucket is servable). Optimal *for that subset*.
    pub outcome: crate::schedule::RetrievalOutcome,
    /// Requested buckets whose every replica is offline, in request
    /// order.
    pub unservable: Vec<Bucket>,
}

impl PartialSchedule {
    /// True when every requested bucket was retrieved.
    pub fn is_complete(&self) -> bool {
        self.unservable.is_empty()
    }

    /// Number of buckets retrieved.
    pub fn served(&self) -> usize {
        self.outcome.schedule.len()
    }

    /// Number of buckets dropped for lack of a live replica.
    pub fn dropped(&self) -> usize {
        self.unservable.len()
    }
}

/// Splits `buckets` into (servable, unservable) under `health`: a bucket
/// is unservable when every one of its replicas sits on an offline disk.
/// Both output buffers are cleared first; request order is preserved.
pub fn partition_by_health<A: ReplicaSource + ?Sized>(
    alloc: &A,
    buckets: &[Bucket],
    health: &HealthMap,
    servable: &mut Vec<Bucket>,
    unservable: &mut Vec<Bucket>,
) {
    servable.clear();
    unservable.clear();
    if !health.any_offline() {
        servable.extend_from_slice(buckets);
        return;
    }
    for &b in buckets {
        if alloc.replicas(b).iter().any(|d| !health.is_offline(d)) {
            servable.push(b);
        } else {
            unservable.push(b);
        }
    }
}

/// Best-effort retrieval under faults: solves the servable subset of
/// `buckets` optimally (offline replicas pruned, degraded disks scaled)
/// and reports the unservable remainder instead of failing the whole
/// query.
///
/// Returns `Err` only for solver-internal failures on the servable
/// subset; losing buckets to outages is *not* an error here — that is the
/// point of the degraded path.
pub fn solve_degraded<S: RetrievalSolver + ?Sized, A: ReplicaSource + ?Sized>(
    solver: &S,
    system: &SystemConfig,
    alloc: &A,
    buckets: &[Bucket],
    health: &HealthMap,
    ws: &mut Workspace,
) -> Result<PartialSchedule, SolveError> {
    let mut servable = Vec::new();
    let mut unservable = Vec::new();
    partition_by_health(alloc, buckets, health, &mut servable, &mut unservable);
    let inst =
        RetrievalInstance::build_with_health(system, alloc, &servable, health).map_err(|u| {
            SolveError::Infeasible {
                bucket: Some(u.bucket),
                delivered: 0,
                required: buckets.len() as i64,
            }
        })?;
    let outcome = solver.solve_in(&inst, ws)?;
    if !unservable.is_empty() {
        ws.tracer
            .emit(crate::obs::trace::TraceEvent::DegradedServe {
                served: outcome.schedule.len() as u32,
                dropped: unservable.len() as u32,
            });
    }
    Ok(PartialSchedule {
        outcome,
        unservable,
    })
}

/// One scheduled health transition in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time at which the transition takes effect.
    pub at: Micros,
    /// Affected disk (global index).
    pub disk: usize,
    /// The disk's health from `at` onward (until a later event).
    pub health: DiskHealth,
}

/// A deterministic fault schedule over simulated time.
///
/// The injector is *stateless at evaluation time*: [`FaultInjector::health_at`]
/// replays every event up to `t` onto an all-healthy baseline, so the
/// health observed at a given instant is a pure function of the schedule
/// — independent of evaluation order, shard count, or how often the map
/// is refreshed. Random schedules are generated up front from a
/// [`SplitMix64`] seed and are therefore just as reproducible.
#[must_use]
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    /// Events sorted by time (ties broken by insertion order, which the
    /// stable sort preserves).
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An empty schedule (all disks healthy forever).
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Builds an injector from explicit events (sorted internally).
    pub fn with_events(mut events: Vec<FaultEvent>) -> FaultInjector {
        events.sort_by_key(|e| e.at);
        FaultInjector { events }
    }

    /// An injector that pins the given health map from time zero onward —
    /// the static-outage special case.
    pub fn pinned(health: &HealthMap) -> FaultInjector {
        let events = (0..health.states_len())
            .filter_map(|disk| {
                let h = health.health(disk);
                (!h.is_healthy()).then_some(FaultEvent {
                    at: Micros::ZERO,
                    disk,
                    health: h,
                })
            })
            .collect();
        FaultInjector { events }
    }

    /// Adds one transition, keeping the schedule sorted.
    pub fn schedule(&mut self, at: Micros, disk: usize, health: DiskHealth) -> &mut Self {
        self.events.push(FaultEvent { at, disk, health });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// A seeded random outage wave: `round(fraction · num_disks)` distinct
    /// disks (chosen by a [`SplitMix64`] partial shuffle of `seed`) go
    /// offline at `fail_at`; with `recover_after` set, each comes back
    /// healthy that long after failing.
    pub fn random_outages(
        seed: u64,
        num_disks: usize,
        fraction: f64,
        fail_at: Micros,
        recover_after: Option<Micros>,
    ) -> FaultInjector {
        let count = ((num_disks as f64 * fraction.clamp(0.0, 1.0)).round() as usize).min(num_disks);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut disks: Vec<usize> = (0..num_disks).collect();
        // Partial Fisher-Yates: the first `count` entries are a uniform
        // sample without replacement.
        for i in 0..count {
            let k = rng.gen_range(i..num_disks);
            disks.swap(i, k);
        }
        let mut events = Vec::with_capacity(count * 2);
        for &disk in &disks[..count] {
            events.push(FaultEvent {
                at: fail_at,
                disk,
                health: DiskHealth::Offline,
            });
            if let Some(dt) = recover_after {
                events.push(FaultEvent {
                    at: fail_at + dt,
                    disk,
                    health: DiskHealth::Healthy,
                });
            }
        }
        FaultInjector::with_events(events)
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the schedule is empty (health is always all-healthy).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Materializes the health of every disk at simulated time `now` into
    /// `out` (cleared first): the last event at or before `now` wins per
    /// disk.
    pub fn health_at(&self, now: Micros, out: &mut HealthMap) {
        out.reset();
        for e in &self.events {
            if e.at > now {
                break;
            }
            out.set(e.disk, e.health);
        }
    }

    /// The time of the first scheduled transition strictly after `now`,
    /// if any — the soonest instant at which re-probing health can
    /// observe something new.
    pub fn next_change_after(&self, now: Micros) -> Option<Micros> {
        self.events.iter().map(|e| e.at).find(|&at| at > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PushRelabelBinary;
    use crate::verify::assert_partial_outcome_valid;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::experiments::paper_example;
    use rds_storage::specs::CHEETAH;

    #[test]
    fn health_map_defaults_to_healthy() {
        let map = HealthMap::all_healthy();
        assert!(map.all_up());
        assert!(!map.any_offline());
        assert!(map.health(1000).is_healthy());
        assert_eq!(map.fingerprint(), HealthMap::HEALTHY_FINGERPRINT);
    }

    #[test]
    fn set_and_reset_round_trip() {
        let mut map = HealthMap::all_healthy();
        map.set(3, DiskHealth::Offline);
        map.set(1, DiskHealth::Degraded { load_factor: 250 });
        assert!(map.is_offline(3));
        assert!(!map.is_offline(1));
        assert!(!map.all_up());
        assert_eq!(map.offline_disks().collect::<Vec<_>>(), vec![3]);
        map.set(3, DiskHealth::Healthy);
        assert!(!map.any_offline());
        map.reset();
        assert!(map.all_up());
        assert_eq!(map.fingerprint(), HealthMap::HEALTHY_FINGERPRINT);
        // Setting Healthy beyond the prefix stays implicit.
        map.set(99, DiskHealth::Healthy);
        assert_eq!(map.states_len(), 0);
    }

    #[test]
    fn fingerprint_is_order_independent_and_state_sensitive() {
        let mut a = HealthMap::all_healthy();
        a.set(2, DiskHealth::Offline);
        a.set(5, DiskHealth::Degraded { load_factor: 300 });
        let mut b = HealthMap::all_healthy();
        b.set(5, DiskHealth::Degraded { load_factor: 300 });
        b.set(2, DiskHealth::Offline);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set(5, DiskHealth::Degraded { load_factor: 200 });
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.set(5, DiskHealth::Healthy);
        b.set(2, DiskHealth::Healthy);
        assert_eq!(b.fingerprint(), HealthMap::HEALTHY_FINGERPRINT);
    }

    #[test]
    fn degraded_apply_scales_cost_and_load() {
        let d = Disk {
            spec: CHEETAH, // 6.1 ms access
            network_delay: Micros::from_millis(2),
            initial_load: Micros::from_millis(4),
        };
        let mut map = HealthMap::all_healthy();
        map.set(0, DiskHealth::Degraded { load_factor: 200 });
        let scaled = map.apply(0, &d);
        assert_eq!(scaled.cost(), Micros::from_tenths_ms(122));
        assert_eq!(scaled.initial_load, Micros::from_millis(8));
        // Network delay is a property of the path, not the disk.
        assert_eq!(scaled.network_delay, d.network_delay);
        // Healthy and offline disks pass through unchanged.
        assert_eq!(map.apply(1, &d), d);
        map.set(2, DiskHealth::Offline);
        assert_eq!(map.apply(2, &d), d);
        // Factors below 100 never speed a disk up.
        map.set(3, DiskHealth::Degraded { load_factor: 10 });
        assert_eq!(map.apply(3, &d).cost(), d.cost());
    }

    #[test]
    fn injector_replays_outage_and_recovery() {
        let mut inj = FaultInjector::new();
        inj.schedule(Micros::from_millis(10), 2, DiskHealth::Offline);
        inj.schedule(Micros::from_millis(30), 2, DiskHealth::Healthy);
        inj.schedule(
            Micros::from_millis(20),
            0,
            DiskHealth::Degraded { load_factor: 400 },
        );
        let mut map = HealthMap::all_healthy();
        inj.health_at(Micros::from_millis(5), &mut map);
        assert!(map.all_up());
        inj.health_at(Micros::from_millis(10), &mut map);
        assert!(map.is_offline(2));
        inj.health_at(Micros::from_millis(25), &mut map);
        assert!(map.is_offline(2));
        assert_eq!(map.health(0), DiskHealth::Degraded { load_factor: 400 });
        inj.health_at(Micros::from_millis(31), &mut map);
        assert!(!map.is_offline(2));
        assert_eq!(
            inj.next_change_after(Micros::from_millis(10)),
            Some(Micros::from_millis(20))
        );
        assert_eq!(inj.next_change_after(Micros::from_millis(30)), None);
    }

    #[test]
    fn random_outages_are_seeded_and_sized() {
        let a = FaultInjector::random_outages(7, 20, 0.25, Micros::from_millis(5), None);
        let b = FaultInjector::random_outages(7, 20, 0.25, Micros::from_millis(5), None);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 5);
        let disks: std::collections::BTreeSet<usize> = a.events().iter().map(|e| e.disk).collect();
        assert_eq!(disks.len(), 5, "distinct disks");
        let c = FaultInjector::random_outages(8, 20, 0.25, Micros::from_millis(5), None);
        assert_ne!(a.events(), c.events(), "different seed, different wave");
        // With recovery, each failed disk gets a paired heal event.
        let r = FaultInjector::random_outages(
            7,
            20,
            0.25,
            Micros::from_millis(5),
            Some(Micros::from_millis(10)),
        );
        assert_eq!(r.events().len(), 10);
        let mut map = HealthMap::all_healthy();
        r.health_at(Micros::from_millis(20), &mut map);
        assert!(map.all_up(), "everyone recovered by 15ms");
    }

    #[test]
    fn pinned_injector_reproduces_the_map_at_any_time() {
        let mut health = HealthMap::all_healthy();
        health.set(1, DiskHealth::Offline);
        health.set(4, DiskHealth::Degraded { load_factor: 150 });
        let inj = FaultInjector::pinned(&health);
        let mut out = HealthMap::all_healthy();
        for ms in [0u64, 7, 1000] {
            inj.health_at(Micros::from_millis(ms), &mut out);
            assert_eq!(out.fingerprint(), health.fingerprint(), "t={ms}ms");
        }
    }

    #[test]
    fn solve_degraded_serves_what_it_can() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let buckets = RangeQuery::new(0, 0, 3, 2).buckets(7);
        // Take both replicas of bucket (0,0) down; the other five buckets
        // keep at least one live copy.
        let b = Bucket::new(0, 0);
        let dead: Vec<usize> = alloc.replicas(b).iter().collect();
        let health = HealthMap::with_offline(&dead);
        let partial = solve_degraded(
            &PushRelabelBinary,
            &system,
            &alloc,
            &buckets,
            &health,
            &mut Workspace::new(),
        )
        .unwrap();
        assert!(!partial.is_complete());
        assert_eq!(partial.unservable, vec![b]);
        assert_eq!(partial.served() + partial.dropped(), buckets.len());
        assert_partial_outcome_valid(&system, &alloc, &health, &buckets, &partial);
    }

    #[test]
    fn solve_degraded_with_all_disks_down_serves_nothing() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let buckets = RangeQuery::new(0, 0, 2, 2).buckets(7);
        let health = HealthMap::with_offline(&(0..14).collect::<Vec<_>>());
        let partial = solve_degraded(
            &PushRelabelBinary,
            &system,
            &alloc,
            &buckets,
            &health,
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(partial.served(), 0);
        assert_eq!(partial.dropped(), buckets.len());
        assert_eq!(partial.outcome.response_time, Micros::ZERO);
        assert_partial_outcome_valid(&system, &alloc, &health, &buckets, &partial);
    }

    #[test]
    fn solve_degraded_with_no_faults_is_a_full_solve() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let buckets = RangeQuery::new(0, 0, 3, 2).buckets(7);
        let health = HealthMap::all_healthy();
        let mut ws = Workspace::new();
        let partial = solve_degraded(
            &PushRelabelBinary,
            &system,
            &alloc,
            &buckets,
            &health,
            &mut ws,
        )
        .unwrap();
        assert!(partial.is_complete());
        let full = crate::solver::RetrievalSolver::solve(
            &PushRelabelBinary,
            &RetrievalInstance::build(&system, &alloc, &buckets),
        )
        .unwrap();
        assert_eq!(partial.outcome.response_time, full.response_time);
    }
}
